import pytest

from repro.core import PipelineConfig
from repro.exceptions import ValidationError


class TestDefaults:
    def test_paper_recommended_defaults(self):
        config = PipelineConfig()
        assert config.selection_strategy == "RFE LogReg"
        assert config.top_k == 7
        assert config.representation == "hist"
        assert config.measure == "L2,1"
        assert config.scaling_strategy == "SVM"
        assert config.scaling_context == "pairwise"

    def test_frozen(self):
        config = PipelineConfig()
        with pytest.raises(AttributeError):
            config.top_k = 3


class TestValidation:
    def test_invalid_top_k(self):
        with pytest.raises(ValidationError):
            PipelineConfig(top_k=0)

    def test_invalid_scope(self):
        with pytest.raises(ValidationError):
            PipelineConfig(feature_scope="network")

    def test_invalid_representation(self):
        with pytest.raises(ValidationError):
            PipelineConfig(representation="wavelet")

    def test_invalid_strategy(self):
        with pytest.raises(ValidationError):
            PipelineConfig(scaling_strategy="XGB")

    def test_invalid_context(self):
        with pytest.raises(ValidationError):
            PipelineConfig(scaling_context="global")

    def test_plan_scope_accepted(self):
        assert PipelineConfig(feature_scope="plan").feature_scope == "plan"
