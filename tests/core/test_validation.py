import numpy as np
import pytest

from repro.core.validation import (
    QualityIssue,
    validate_corpus,
    validate_distance_matrix,
    validate_experiment,
)
from repro.exceptions import ValidationError
from repro.workloads import ExperimentRepository
from repro.workloads.features import RESOURCE_FEATURES
from repro.workloads.runner import clone_with
from repro.workloads.sampling import systematic_subexperiments


class TestValidateExperiment:
    def test_clean_simulated_run_passes(self, tpcc_run):
        report = validate_experiment(tpcc_run)
        assert report.ok
        assert report.errors() == []

    def test_nan_flagged_as_error(self, tpcc_run):
        broken = tpcc_run.resource_series.copy()
        broken[3, 2] = np.nan
        report = validate_experiment(
            clone_with(tpcc_run, resource_series=broken)
        )
        assert not report.ok
        assert any("non-finite" in i.message for i in report.errors())

    def test_negative_values_flagged(self, tpcc_run):
        broken = tpcc_run.resource_series.copy()
        broken[0, 0] = -5.0
        report = validate_experiment(
            clone_with(tpcc_run, resource_series=broken)
        )
        assert any("negative" in i.message for i in report.errors())

    def test_overfull_utilization_flagged(self, tpcc_run):
        broken = tpcc_run.resource_series.copy()
        broken[:, RESOURCE_FEATURES.index("CPU_UTILIZATION")] = 140.0
        report = validate_experiment(
            clone_with(tpcc_run, resource_series=broken)
        )
        assert any("100%" in i.message for i in report.errors())

    def test_flat_channel_warned(self, tpcc_run):
        flat = tpcc_run.resource_series.copy()
        flat[:, RESOURCE_FEATURES.index("IOPS_TOTAL")] = 42.0
        report = validate_experiment(clone_with(tpcc_run, resource_series=flat))
        assert report.ok  # warnings only
        assert any("flat" in i.message for i in report.warnings())

    def test_truncated_collection_warned(self, tpcc_run):
        report = validate_experiment(tpcc_run, expected_samples=2 * 360)
        assert any("expected samples" in i.message for i in report.warnings())

    def test_latency_throughput_mismatch_warned(self, tpcc_run):
        report = validate_experiment(
            clone_with(tpcc_run, latency_ms=tpcc_run.latency_ms * 10)
        )
        assert any(
            "response-time law" in i.message for i in report.warnings()
        )

    def test_summary_renders(self, tpcc_run):
        report = validate_experiment(tpcc_run)
        assert report.summary() == "no issues found"
        issue = QualityIssue("error", "x", "boom")
        assert "[error] x: boom" in str(issue)


class TestValidateCorpus:
    def test_clean_corpus_passes(self, small_corpus):
        subset = small_corpus.filter(lambda r: r.subsample_index in (0, 1))
        report = validate_corpus(subset)
        assert report.ok

    def test_duplicate_identity_is_error(self, tpcc_run):
        subs = systematic_subexperiments(tpcc_run)[:2]
        report = validate_corpus([subs[0], subs[0], subs[1]])
        assert not report.ok
        assert any("duplicate" in i.message for i in report.errors())

    def test_lonely_workload_warned(self, tpcc_run):
        report = validate_corpus([tpcc_run])
        assert any("neighbours" in i.message for i in report.warnings())

    def test_constant_feature_warned(self, tpcc_run):
        subs = systematic_subexperiments(tpcc_run)[:3]
        flattened = []
        for sub in subs:
            resource = sub.resource_series.copy()
            resource[:, 0] = 7.0  # identical across all experiments
            flattened.append(clone_with(sub, resource_series=resource))
        report = validate_corpus(flattened)
        assert any(
            i.scope == "CPU_UTILIZATION" and "constant" in i.message
            for i in report.warnings()
        )

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            validate_corpus(ExperimentRepository())


class TestValidateDistanceMatrix:
    def test_healthy_matrix_passes(self):
        D = np.array(
            [
                [0.0, 0.1, 0.9],
                [0.1, 0.0, 0.8],
                [0.9, 0.8, 0.0],
            ]
        )
        report = validate_distance_matrix(D, ["a", "a", "b"])
        assert report.ok
        assert report.warnings() == []

    def test_asymmetry_is_error(self):
        D = np.array([[0.0, 1.0], [2.0, 0.0]])
        report = validate_distance_matrix(D, ["a", "b"])
        assert any("symmetric" in i.message for i in report.errors())

    def test_nonzero_diagonal_is_error(self):
        D = np.array([[1.0, 1.0], [1.0, 0.0]])
        report = validate_distance_matrix(D, ["a", "b"])
        assert any("diagonal" in i.message for i in report.errors())

    def test_non_finite_short_circuits(self):
        D = np.array([[0.0, np.inf], [np.inf, 0.0]])
        report = validate_distance_matrix(D, ["a", "b"])
        assert len(report.issues) == 1
        assert "non-finite" in report.issues[0].message

    def test_uninformative_feature_set_warned(self):
        # Same-label distances exceed cross-label ones for "a".
        D = np.array(
            [
                [0.0, 0.9, 0.1],
                [0.9, 0.0, 0.1],
                [0.1, 0.1, 0.0],
            ]
        )
        report = validate_distance_matrix(D, ["a", "a", "b"])
        assert any(i.scope == "a" for i in report.warnings())

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            validate_distance_matrix(np.zeros((2, 3)), ["a", "b"])
        with pytest.raises(ValidationError):
            validate_distance_matrix(np.zeros((2, 2)), ["a"])
