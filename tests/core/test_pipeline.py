import numpy as np
import pytest

from repro.core import PipelineConfig, WorkloadPredictionPipeline
from repro.exceptions import PipelineError, ValidationError
from repro.workloads import SKU, run_experiments, workload_by_name
from repro.workloads.corpus import expand_subexperiments
from repro.workloads.features import PLAN_FEATURES


SOURCE = SKU(cpus=2, memory_gb=32.0)
TARGET = SKU(cpus=8, memory_gb=32.0)


@pytest.fixture(scope="module")
def ycsb_source():
    return run_experiments(
        [workload_by_name("ycsb")],
        [SOURCE],
        terminals_for=lambda w: (32,),
        duration_s=1800.0,
        random_state=77,
    )


@pytest.fixture(scope="module")
def ycsb_target():
    return run_experiments(
        [workload_by_name("ycsb")],
        [TARGET],
        terminals_for=lambda w: (32,),
        duration_s=1800.0,
        random_state=78,
    )


class TestFeatureSelectionStage:
    def test_top_k_names_returned(self, two_sku_references):
        pipeline = WorkloadPredictionPipeline()
        subexp = expand_subexperiments(two_sku_references.by_sku(SOURCE))
        features = pipeline.select_features(subexp)
        assert len(features) == 7
        assert len(set(features)) == 7

    def test_plan_scope_restricts(self, two_sku_references):
        config = PipelineConfig(feature_scope="plan")
        pipeline = WorkloadPredictionPipeline(config)
        subexp = expand_subexperiments(two_sku_references.by_sku(SOURCE))
        features = pipeline.select_features(subexp)
        assert all(name in PLAN_FEATURES for name in features)

    def test_unknown_strategy_fails_cleanly(self, two_sku_references):
        # Bypass config validation to exercise the pipeline-level error.
        config = PipelineConfig()
        object.__setattr__(config, "selection_strategy", "Made Up")
        pipeline = WorkloadPredictionPipeline(config)
        subexp = expand_subexperiments(two_sku_references.by_sku(SOURCE))
        with pytest.raises(PipelineError, match="unknown selection"):
            pipeline.select_features(subexp)


class TestSimilarityStage:
    def test_ycsb_nearest_is_tpcc(self, two_sku_references, ycsb_source):
        """Figure 10: YCSB -> TPC-C, then Twitter, with TPC-H far away."""
        pipeline = WorkloadPredictionPipeline()
        refs = expand_subexperiments(two_sku_references.by_sku(SOURCE))
        target = expand_subexperiments(ycsb_source)
        features = pipeline.select_features(refs)
        ranking = pipeline.rank_similarity(refs, target, features)
        ordered = [name for name, _ in ranking.ordered]
        assert ordered[0] == "tpcc"
        assert ordered[-1] == "tpch"

    def test_target_must_be_single_workload(self, two_sku_references):
        pipeline = WorkloadPredictionPipeline()
        refs = expand_subexperiments(two_sku_references.by_sku(SOURCE))
        with pytest.raises(ValidationError, match="one workload"):
            pipeline.rank_similarity(refs, refs, ("AvgRowSize",))

    def test_unknown_feature_named_in_error(
        self, two_sku_references, ycsb_source
    ):
        pipeline = WorkloadPredictionPipeline()
        refs = expand_subexperiments(two_sku_references.by_sku(SOURCE))
        target = expand_subexperiments(ycsb_source)
        with pytest.raises(ValidationError, match="'NotAFeature'"):
            pipeline.rank_similarity(
                refs, target, ("AvgRowSize", "NotAFeature")
            )

    def test_empty_feature_selection_rejected(
        self, two_sku_references, ycsb_source
    ):
        pipeline = WorkloadPredictionPipeline()
        refs = expand_subexperiments(two_sku_references.by_sku(SOURCE))
        target = expand_subexperiments(ycsb_source)
        with pytest.raises(ValidationError, match="at least one feature"):
            pipeline.rank_similarity(refs, target, ())


class TestEndToEnd:
    def test_full_prediction_report(
        self, two_sku_references, ycsb_source, ycsb_target
    ):
        pipeline = WorkloadPredictionPipeline()
        report = pipeline.predict_scaling(
            two_sku_references,
            ycsb_source,
            SOURCE,
            TARGET,
            target_validation=ycsb_target,
        )
        assert report.target_workload == "ycsb"
        assert report.reference_workload == "tpcc"
        assert len(report.selected_features) == 7
        # The transferred TPC-C scaling model lands within ~30% of truth.
        assert report.mape() < 0.3
        # And predicts an improvement from 2 to 8 CPUs.
        source_mean = float(
            np.mean([r.throughput for r in ycsb_source])
        )
        assert report.predicted_mean > source_mean

    def test_prediction_without_validation(
        self, two_sku_references, ycsb_source
    ):
        pipeline = WorkloadPredictionPipeline()
        report = pipeline.predict_scaling(
            two_sku_references, ycsb_source, SOURCE, TARGET
        )
        assert report.actual_throughput is None
        assert report.predicted_mean > 0

    def test_single_context_pipeline(
        self, two_sku_references, ycsb_source, ycsb_target
    ):
        config = PipelineConfig(scaling_context="single")
        pipeline = WorkloadPredictionPipeline(config)
        report = pipeline.predict_scaling(
            two_sku_references,
            ycsb_source,
            SOURCE,
            TARGET,
            target_validation=ycsb_target,
        )
        assert report.mape() < 0.5

    def test_missing_source_runs_rejected(self, two_sku_references, ycsb_source):
        pipeline = WorkloadPredictionPipeline()
        with pytest.raises(PipelineError, match="source SKU"):
            pipeline.predict_scaling(
                two_sku_references,
                ycsb_source,
                SKU(cpus=64, memory_gb=32.0),
                TARGET,
            )


class TestProvenance:
    def test_report_carries_manifest(self, two_sku_references, ycsb_source):
        pipeline = WorkloadPredictionPipeline()
        report = pipeline.predict_scaling(
            two_sku_references, ycsb_source, SOURCE, TARGET
        )
        manifest = report.manifest
        assert manifest is not None
        assert manifest.selected_features == report.selected_features
        assert manifest.reference_workload == report.reference_workload
        assert manifest.similarity_ranking == report.similarity.distances
        assert set(manifest.stage_timings_s) == {
            "prepare", "select_features", "rank_similarity",
            "predict_scaling", "total",
        }
        assert all(t >= 0.0 for t in manifest.stage_timings_s.values())
        assert manifest.random_seed == pipeline.config.random_state
        assert manifest.pipeline_config["selection_strategy"] == "RFE LogReg"
        assert manifest.versions["repro"]
        assert manifest.extra["source_sku"] == SOURCE.name
        # Simulator provenance flows through into the manifest.
        assert all(
            meta["engine_version"]
            for meta in manifest.extra["experiment_metadata"]
        )

    def test_manifest_round_trips(self, two_sku_references, ycsb_source):
        from repro.obs import RunManifest

        pipeline = WorkloadPredictionPipeline()
        report = pipeline.predict_scaling(
            two_sku_references, ycsb_source, SOURCE, TARGET
        )
        restored = RunManifest.from_json(report.manifest.to_json())
        assert restored == report.manifest

    def test_pipeline_spans_nest_under_predict(
        self, two_sku_references, ycsb_source
    ):
        from repro.obs import Tracer, set_tracer

        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            WorkloadPredictionPipeline().predict_scaling(
                two_sku_references, ycsb_source, SOURCE, TARGET
            )
        finally:
            set_tracer(previous)
        (root,) = tracer.roots
        assert root.name == "pipeline.predict"
        stages = [child.name for child in root.children]
        assert stages == [
            "pipeline.stage.prepare",
            "pipeline.stage.select_features",
            "pipeline.stage.rank_similarity",
            "pipeline.stage.predict_scaling",
        ]
        assert root.wall_ms >= max(c.wall_ms for c in root.children)
