import numpy as np
import pytest

from repro.core.report import PredictionReport, SimilarityRanking
from repro.exceptions import ValidationError


@pytest.fixture
def ranking():
    return SimilarityRanking(
        target="ycsb",
        distances={"tpcc": 0.4, "twitter": 0.6, "tpch": 0.95},
    )


@pytest.fixture
def report(ranking):
    return PredictionReport(
        target_workload="ycsb",
        source_sku="2cpu-32gb",
        target_sku="8cpu-32gb",
        selected_features=("AvgRowSize", "IOPS_TOTAL"),
        similarity=ranking,
        reference_workload="tpcc",
        predicted_throughput=np.array([1000.0, 1100.0]),
        actual_throughput=np.array([1200.0, 1300.0]),
    )


class TestSimilarityRanking:
    def test_ordered(self, ranking):
        assert [name for name, _ in ranking.ordered] == [
            "tpcc",
            "twitter",
            "tpch",
        ]

    def test_nearest(self, ranking):
        assert ranking.nearest == "tpcc"

    def test_empty_ranking_raises(self):
        with pytest.raises(ValidationError):
            SimilarityRanking(target="x", distances={}).nearest


class TestPredictionReport:
    def test_means(self, report):
        assert report.predicted_mean == 1050.0
        assert report.actual_mean == 1250.0

    def test_mape(self, report):
        assert report.mape() == pytest.approx(200 / 1250)

    def test_nrmse_finite(self, report):
        assert np.isfinite(report.nrmse())

    def test_summary_mentions_key_facts(self, report):
        text = report.summary()
        assert "ycsb" in text
        assert "tpcc" in text
        assert "MAPE" in text

    def test_metrics_require_validation_data(self, ranking):
        report = PredictionReport(
            target_workload="ycsb",
            source_sku="a",
            target_sku="b",
            selected_features=(),
            similarity=ranking,
            reference_workload="tpcc",
            predicted_throughput=np.array([1.0]),
        )
        assert report.actual_mean is None
        with pytest.raises(ValidationError):
            report.mape()
        with pytest.raises(ValidationError):
            report.nrmse()
