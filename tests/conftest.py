"""Shared fixtures: small simulated corpora reused across test modules.

Session-scoped because corpus generation, while fast, is pure overhead
when repeated by every test; everything derived from these fixtures must
treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    SKU,
    ExperimentRunner,
    paper_corpus,
    run_experiments,
    scaling_corpus,
    workload_by_name,
)


@pytest.fixture(scope="session")
def small_corpus():
    """A reduced Sections 4/5 corpus (shorter runs, fewer samples)."""
    return paper_corpus(duration_s=1800.0, random_state=0)


@pytest.fixture(scope="session")
def scaling_repo():
    """TPC-C + Twitter + TPC-H across the four CPU SKUs."""
    return scaling_corpus(
        ["tpcc", "twitter", "tpch"], duration_s=1800.0, random_state=7
    )


@pytest.fixture(scope="session")
def tpcc_run():
    """One full TPC-C experiment at 8 terminals on 8 CPUs."""
    runner = ExperimentRunner(workload_by_name("tpcc"), random_state=3)
    return runner.run(SKU(cpus=8, memory_gb=32.0), terminals=8)


@pytest.fixture(scope="session")
def two_sku_references():
    """Reference workloads on 2-CPU and 8-CPU SKUs (pipeline tests)."""
    return run_experiments(
        [workload_by_name(n) for n in ("tpcc", "twitter", "tpch")],
        [SKU(cpus=2, memory_gb=32.0), SKU(cpus=8, memory_gb=32.0)],
        duration_s=1800.0,
        random_state=42,
    )


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
