"""Bit-identity and fit-cache behaviour of the strategy-grid fast path."""

import numpy as np
import pytest

from repro.ml.fitexec import FitCache
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.prediction.evaluation import (
    ScalingDataset,
    evaluate_pairwise_strategy,
    evaluate_single_strategy,
)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    names = ["s2", "s4", "s8"]
    n = 30
    observations, groups = {}, {}
    for i, name in enumerate(names):
        base = 100.0 * (i + 1)
        observations[name] = base + rng.normal(0.0, 5.0, size=n)
        groups[name] = np.repeat(np.arange(3), n // 3)
    return ScalingDataset(
        workload="tpcc",
        terminals=8,
        sku_names=names,
        cpu_counts={"s2": 2, "s4": 4, "s8": 8},
        observations=observations,
        groups=groups,
    )


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


class TestPairwiseFastPath:
    def test_bit_identical_at_any_worker_count(self, dataset):
        scores = [
            evaluate_pairwise_strategy(
                dataset, "Regression", random_state=0, jobs=jobs
            )
            for jobs in (None, 1, 4)
        ]
        assert scores[0].mean_nrmse == scores[1].mean_nrmse
        assert scores[0].mean_nrmse == scores[2].mean_nrmse

    def test_generator_seed_still_accepted(self, dataset):
        score = evaluate_pairwise_strategy(
            dataset, "Regression", random_state=np.random.default_rng(0)
        )
        assert np.isfinite(score.mean_nrmse)

    def test_warm_cache_fits_nothing(self, dataset, tmp_path, metrics):
        cold = evaluate_pairwise_strategy(
            dataset, "Regression", random_state=0,
            fit_cache=FitCache(tmp_path),
        )
        assert metrics.counter("ml.fits_total").value > 0
        set_metrics(warm_registry := MetricsRegistry())
        try:
            warm = evaluate_pairwise_strategy(
                dataset, "Regression", random_state=0,
                fit_cache=FitCache(tmp_path),
            )
        finally:
            set_metrics(metrics)
        assert warm_registry.counter("ml.fits_total").value == 0
        assert warm_registry.counter("fit_cache.hits_total").value > 0
        assert warm.mean_nrmse == cold.mean_nrmse

    def test_cells_total_counts_grid_cells(self, dataset, metrics):
        evaluate_pairwise_strategy(
            dataset, "Regression", cv=5, random_state=0
        )
        n_pairs = len(dataset.upward_pairs())
        assert (
            metrics.counter("evaluation.cells_total").value == n_pairs * 5
        )


class TestSingleFastPath:
    def test_bit_identical_at_any_worker_count(self, dataset):
        scores = [
            evaluate_single_strategy(
                dataset, "Regression", random_state=0, jobs=jobs
            )
            for jobs in (None, 1, 4)
        ]
        assert scores[0].mean_nrmse == scores[1].mean_nrmse
        assert scores[0].mean_nrmse == scores[2].mean_nrmse

    def test_generator_seed_takes_legacy_path(self, dataset):
        score = evaluate_single_strategy(
            dataset, "Regression", random_state=np.random.default_rng(0)
        )
        assert np.isfinite(score.mean_nrmse)

    def test_warm_cache_fits_nothing(self, dataset, tmp_path, metrics):
        cold = evaluate_single_strategy(
            dataset, "Regression", random_state=0,
            fit_cache=FitCache(tmp_path),
        )
        set_metrics(warm_registry := MetricsRegistry())
        try:
            warm = evaluate_single_strategy(
                dataset, "Regression", random_state=0,
                fit_cache=FitCache(tmp_path),
            )
        finally:
            set_metrics(metrics)
        assert warm_registry.counter("ml.fits_total").value == 0
        assert warm.mean_nrmse == cold.mean_nrmse

    def test_cells_total_counts_grid_cells(self, dataset, metrics):
        evaluate_single_strategy(
            dataset, "Regression", cv=5, random_state=0
        )
        n_pairs = len(dataset.upward_pairs())
        assert (
            metrics.counter("evaluation.cells_total").value == n_pairs * 5
        )


class TestCrossKnobConsistency:
    def test_cache_and_jobs_compose(self, dataset, tmp_path, metrics):
        """Every knob combination lands on the same NRMSE."""
        plain = evaluate_pairwise_strategy(
            dataset, "Regression", random_state=0
        )
        cache = FitCache(tmp_path)
        combos = [
            evaluate_pairwise_strategy(
                dataset, "Regression", random_state=0,
                jobs=jobs, fit_cache=fit_cache,
            )
            for jobs in (None, 2)
            for fit_cache in (None, cache)
        ]
        for score in combos:
            assert score.mean_nrmse == plain.mean_nrmse
