import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.prediction.latency import (
    latency_prediction_errors,
    per_txn_scaling_factors,
    workload_scaling_factor,
)
from repro.workloads import (
    SKU,
    ExperimentRunner,
    systematic_subexperiments,
    workload_by_name,
)


@pytest.fixture(scope="module")
def latency_setup():
    workload = workload_by_name("ycsb")
    runner = ExperimentRunner(workload, random_state=5)
    source_sku = SKU(cpus=2, memory_gb=32.0)
    target_sku = SKU(cpus=8, memory_gb=32.0)
    train_source = runner.run_repetitions(
        source_sku, terminals=32, duration_s=1800.0
    )
    train_target = runner.run_repetitions(
        target_sku, terminals=32, duration_s=1800.0
    )
    test_source = systematic_subexperiments(
        runner.run(source_sku, terminals=32, run_index=9, duration_s=1800.0)
    )
    test_target = systematic_subexperiments(
        runner.run(target_sku, terminals=32, run_index=9, duration_s=1800.0)
    )
    return train_source, train_target, test_source, test_target


class TestScalingFactors:
    def test_workload_factor_below_one_for_upscale(self, latency_setup):
        train_source, train_target, _, _ = latency_setup
        factor = workload_scaling_factor(train_source, train_target)
        assert 0.0 < factor < 1.0  # latency shrinks with more CPUs

    def test_per_txn_factors_cover_all_types(self, latency_setup):
        train_source, train_target, _, _ = latency_setup
        factors = per_txn_scaling_factors(train_source, train_target)
        assert set(factors) == set(train_source[0].per_txn_latency_ms)
        assert all(f > 0 for f in factors.values())

    def test_empty_results_rejected(self):
        with pytest.raises(ValidationError):
            workload_scaling_factor([], [])


class TestFigure1Shape:
    def test_workload_level_beats_per_txn(self, latency_setup):
        """The paper's Example 1: per-query predictions are much worse."""
        errors = latency_prediction_errors(*latency_setup)
        workload_ape = errors.workload_mean_ape()
        per_txn = errors.per_txn_mean_ape()
        assert workload_ape < 0.08
        assert min(per_txn.values()) > workload_ape
        assert max(per_txn.values()) > 3 * workload_ape

    def test_ten_predictions_per_granularity(self, latency_setup):
        errors = latency_prediction_errors(*latency_setup)
        assert errors.workload_ape.shape == (10,)
        for ape in errors.per_txn_ape.values():
            assert ape.shape == (10,)

    def test_weighted_rollup_worse_than_workload_level(self, latency_setup):
        errors = latency_prediction_errors(*latency_setup)
        assert errors.aggregated_per_txn_ape.mean() > errors.workload_mean_ape()

    def test_mismatched_test_pairs_rejected(self, latency_setup):
        train_source, train_target, test_source, test_target = latency_setup
        with pytest.raises(ValidationError):
            latency_prediction_errors(
                train_source, train_target, test_source[:3], test_target[:5]
            )
