import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.prediction.roofline import RooflinePredictor


@pytest.fixture
def figure12_data():
    """Compute-bound at 1-3 CPUs, ceiling at 3000 beyond (Figure 12)."""
    cpus = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    throughput = np.minimum(1000.0 * cpus, 3000.0)
    return cpus, throughput


class TestRooflinePredictor:
    def test_linear_model_overshoots_ceiling(self, figure12_data):
        cpus, throughput = figure12_data
        model = RooflinePredictor(ceiling=3000.0).fit(cpus, throughput)
        linear_at_5 = model.predict_linear(np.array([5.0]))[0]
        assert linear_at_5 > 3000.0  # the Figure 12 mistake

    def test_capped_prediction_correct(self, figure12_data):
        cpus, throughput = figure12_data
        model = RooflinePredictor(ceiling=3000.0).fit(cpus, throughput)
        np.testing.assert_allclose(
            model.predict(np.array([4.0, 5.0, 8.0])), 3000.0
        )

    def test_compute_bound_region_linear(self, figure12_data):
        cpus, throughput = figure12_data
        model = RooflinePredictor(ceiling=3000.0).fit(cpus, throughput)
        np.testing.assert_allclose(
            model.predict(np.array([1.0, 2.0])), [1000.0, 2000.0], rtol=1e-6
        )

    def test_ceiling_estimated_from_data(self, figure12_data):
        cpus, throughput = figure12_data
        model = RooflinePredictor().fit(cpus, throughput)
        assert model.ceiling_ == pytest.approx(3000.0)

    def test_saturation_point(self, figure12_data):
        cpus, throughput = figure12_data
        model = RooflinePredictor(ceiling=3000.0).fit(cpus, throughput)
        assert model.saturation_point() == pytest.approx(3.0, rel=0.05)

    def test_flat_data_saturation_infinite(self):
        cpus = np.array([1.0, 2.0, 3.0])
        flat = np.full(3, 100.0)
        model = RooflinePredictor(ceiling=100.0).fit(cpus, flat)
        assert model.saturation_point() == float("inf")

    def test_invalid_ceiling(self):
        with pytest.raises(ValidationError):
            RooflinePredictor(ceiling=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RooflinePredictor().predict([2.0])

    def test_roofline_beats_plain_linear_out_of_sample(self, figure12_data):
        cpus, throughput = figure12_data
        model = RooflinePredictor(ceiling=3000.0).fit(cpus, throughput)
        test_cpus = np.array([6.0, 8.0])
        truth = np.array([3000.0, 3000.0])
        capped_error = np.abs(model.predict(test_cpus) - truth).max()
        linear_error = np.abs(model.predict_linear(test_cpus) - truth).max()
        assert capped_error < linear_error
