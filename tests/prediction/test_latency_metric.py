"""Latency-metric scaling datasets (the other Section 6.1.2 target)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.prediction import (
    PairwiseScalingModel,
    build_scaling_dataset,
    evaluate_baseline,
    evaluate_pairwise_strategy,
)


@pytest.fixture(scope="module")
def latency_dataset(scaling_repo):
    return build_scaling_dataset(
        scaling_repo, "tpcc", 8, metric="latency", random_state=0
    )


@pytest.fixture(scope="module")
def throughput_dataset(scaling_repo):
    return build_scaling_dataset(
        scaling_repo, "tpcc", 8, metric="throughput", random_state=0
    )


class TestLatencyDataset:
    def test_metric_recorded(self, latency_dataset):
        assert latency_dataset.metric == "latency"

    def test_latency_decreases_with_cpus(self, latency_dataset):
        means = [
            latency_dataset.observations[name].mean()
            for name in latency_dataset.sku_names
        ]
        assert means == sorted(means, reverse=True)

    def test_reciprocal_of_throughput(
        self, latency_dataset, throughput_dataset
    ):
        name = latency_dataset.sku_names[0]
        latency = latency_dataset.observations[name]
        throughput = throughput_dataset.observations[name]
        np.testing.assert_allclose(latency, 8 / throughput * 1000.0)

    def test_invalid_metric(self, scaling_repo):
        with pytest.raises(ValidationError, match="metric"):
            build_scaling_dataset(scaling_repo, "tpcc", 8, metric="iops")


class TestLatencyModeling:
    def test_pairwise_model_learns_downscaling_factor(self, latency_dataset):
        source = latency_dataset.sku_names[0]
        target = latency_dataset.sku_names[-1]
        model = PairwiseScalingModel("Regression").fit(
            latency_dataset.observations[source],
            latency_dataset.observations[target],
        )
        # Upgrading 2 -> 16 CPUs shrinks latency: factor well below 1.
        assert model.scaling_factor() < 0.7

    def test_cv_nrmse_finite_and_plausible(self, latency_dataset):
        score = evaluate_pairwise_strategy(
            latency_dataset, "Regression", random_state=0
        )
        assert 0.05 < score.mean_nrmse < 1.0

    def test_baseline_divides_for_latency(self, latency_dataset):
        # The naive latency baseline is wrong (real scaling is sub-linear)
        # but must at least predict a *decrease*.
        baseline_nrmse = evaluate_baseline(latency_dataset)
        model_nrmse = evaluate_pairwise_strategy(
            latency_dataset, "Regression", random_state=0
        ).mean_nrmse
        assert baseline_nrmse > model_nrmse

    def test_latency_and_throughput_baselines_differ(
        self, latency_dataset, throughput_dataset
    ):
        assert evaluate_baseline(latency_dataset) != pytest.approx(
            evaluate_baseline(throughput_dataset)
        )
