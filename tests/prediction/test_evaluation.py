import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.prediction.baseline import InverseLinearBaseline
from repro.prediction.evaluation import (
    ScalingDataset,
    build_scaling_dataset,
    evaluate_baseline,
    evaluate_pairwise_strategy,
    evaluate_single_strategy,
)


@pytest.fixture(scope="module")
def tpcc_dataset(scaling_repo):
    return build_scaling_dataset(scaling_repo, "tpcc", 8, random_state=0)


def toy_dataset(sku_names=("s2", "s4"), n_slots=10):
    """A hand-built dataset small enough to hit the degenerate guards."""
    cpu = {"s2": 2, "s4": 4}
    return ScalingDataset(
        workload="toy",
        terminals=4,
        sku_names=list(sku_names),
        cpu_counts={name: cpu[name] for name in sku_names},
        observations={
            name: np.linspace(100.0, 200.0, n_slots) * cpu[name]
            for name in sku_names
        },
        groups={
            name: np.zeros(n_slots, dtype=int) for name in sku_names
        },
    )


class TestInverseLinearBaseline:
    def test_factor(self):
        assert InverseLinearBaseline(2, 8).factor == 4.0

    def test_predict_scales(self):
        baseline = InverseLinearBaseline(2, 4)
        np.testing.assert_allclose(
            baseline.predict([100.0, 200.0]), [200.0, 400.0]
        )

    def test_invalid_cpu_counts(self):
        with pytest.raises(ValidationError):
            InverseLinearBaseline(0, 4)


class TestBuildScalingDataset:
    def test_thirty_observations_per_sku(self, tpcc_dataset):
        for name in tpcc_dataset.sku_names:
            assert tpcc_dataset.observations[name].shape == (30,)
            assert tpcc_dataset.groups[name].shape == (30,)

    def test_sku_ordering_ascending(self, tpcc_dataset):
        cpus = [tpcc_dataset.cpu_counts[n] for n in tpcc_dataset.sku_names]
        assert cpus == [2, 4, 8, 16]

    def test_six_upward_pairs(self, tpcc_dataset):
        assert len(tpcc_dataset.upward_pairs()) == 6

    def test_groups_encode_data_groups(self, tpcc_dataset):
        groups = tpcc_dataset.groups[tpcc_dataset.sku_names[0]]
        assert set(groups.tolist()) == {0, 1, 2}

    def test_throughput_increases_with_cpus(self, tpcc_dataset):
        means = [
            tpcc_dataset.observations[name].mean()
            for name in tpcc_dataset.sku_names
        ]
        assert means == sorted(means)

    def test_pooled_shapes(self, tpcc_dataset):
        cpus, throughput, groups = tpcc_dataset.pooled()
        assert cpus.shape == throughput.shape == groups.shape == (120,)

    def test_missing_workload_rejected(self, scaling_repo):
        with pytest.raises(ValidationError):
            build_scaling_dataset(scaling_repo, "ycsb", 8)


class TestStrategyEvaluation:
    def test_pairwise_regression_reasonable(self, tpcc_dataset):
        score = evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", random_state=0
        )
        assert score.context == "pairwise"
        assert 0.1 < score.mean_nrmse < 1.0
        assert score.mean_training_time_s >= 0.0

    def test_single_regression_reasonable(self, tpcc_dataset):
        score = evaluate_single_strategy(
            tpcc_dataset, "Regression", random_state=0
        )
        assert score.context == "single"
        assert 0.1 < score.mean_nrmse < 1.5

    def test_baseline_much_worse_than_models(self, tpcc_dataset):
        baseline = evaluate_baseline(tpcc_dataset)
        model = evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", random_state=0
        ).mean_nrmse
        assert baseline > 3 * model

    def test_lmm_consumes_groups(self, tpcc_dataset):
        score = evaluate_pairwise_strategy(tpcc_dataset, "LMM", random_state=0)
        assert np.isfinite(score.mean_nrmse)

    def test_deterministic_given_seed(self, tpcc_dataset):
        a = evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", random_state=3
        ).mean_nrmse
        b = evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", random_state=3
        ).mean_nrmse
        assert a == b

    def test_fold_and_model_seeds_are_independent(
        self, tpcc_dataset, monkeypatch
    ):
        """Regression: one seed used to drive both the KFold shuffle and
        the model's random_state, coupling fold assignment to stochastic
        model internals."""
        from repro.prediction import evaluation as evaluation_module

        fold_seeds, model_seeds = [], []
        real_kfold = evaluation_module.KFold
        real_model = evaluation_module.PairwiseScalingModel

        class RecordingKFold(real_kfold):
            def __init__(self, n_splits, shuffle=False, random_state=None):
                fold_seeds.append(random_state)
                super().__init__(
                    n_splits, shuffle=shuffle, random_state=random_state
                )

        class RecordingModel(real_model):
            def __init__(self, strategy, random_state=None):
                model_seeds.append(random_state)
                super().__init__(strategy, random_state=random_state)

        monkeypatch.setattr(evaluation_module, "KFold", RecordingKFold)
        monkeypatch.setattr(
            evaluation_module, "PairwiseScalingModel", RecordingModel
        )
        evaluation_module.evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", cv=5, random_state=0
        )
        assert len(fold_seeds) == 6  # one KFold per upward pair
        assert len(model_seeds) == 6 * 5  # one model per fold
        for pair, fold_seed in enumerate(fold_seeds):
            pair_model_seeds = set(model_seeds[pair * 5 : (pair + 1) * 5])
            assert len(pair_model_seeds) == 1  # stable across folds
            assert pair_model_seeds.pop() != fold_seed


class TestDegenerateInputs:
    def test_latency_conversion_rejects_zero_throughput_windows(self):
        """Regression: ``terminals / samples`` divided by zero silently,
        poisoning every downstream NRMSE with inf."""
        from repro.workloads import (
            SKU,
            ExperimentRepository,
            run_experiments,
            workload_by_name,
        )
        from repro.workloads.runner import clone_with

        repo = run_experiments(
            [workload_by_name("tpcc")],
            [SKU(cpus=2, memory_gb=32.0), SKU(cpus=4, memory_gb=32.0)],
            terminals_for=lambda w: (4,),
            n_runs=1,
            duration_s=300.0,
            random_state=5,
        )
        results = list(repo)
        zeroed = clone_with(
            results[0],
            throughput_series=np.zeros_like(results[0].throughput_series),
        )
        broken = ExperimentRepository([zeroed] + results[1:])
        with pytest.raises(ValidationError, match="non-positive mean"):
            build_scaling_dataset(
                broken, "tpcc", 4, metric="latency", n_series=3
            )

    def test_latency_metric_builds_finite_dataset(self, scaling_repo):
        dataset = build_scaling_dataset(
            scaling_repo, "tpcc", 8, metric="latency", random_state=0
        )
        assert dataset.metric == "latency"
        for name in dataset.sku_names:
            values = dataset.observations[name]
            assert np.isfinite(values).all()
            assert (values > 0).all()

    def test_single_sku_dataset_rejected(self):
        """np.mean over zero pairs used to emit a silent NaN score."""
        lonely = toy_dataset(sku_names=("s2",))
        with pytest.raises(ValidationError, match="at least two"):
            evaluate_pairwise_strategy(lonely, "Regression")
        with pytest.raises(ValidationError, match="at least two"):
            evaluate_single_strategy(lonely, "Regression")
        with pytest.raises(ValidationError, match="at least two"):
            evaluate_baseline(lonely)

    def test_fewer_slots_than_folds_rejected(self):
        sparse = toy_dataset(n_slots=3)
        with pytest.raises(ValidationError, match="folds"):
            evaluate_pairwise_strategy(sparse, "Regression", cv=5)
        with pytest.raises(ValidationError, match="folds"):
            evaluate_single_strategy(sparse, "Regression", cv=5)

    def test_enough_slots_still_evaluates(self):
        score = evaluate_pairwise_strategy(
            toy_dataset(n_slots=10), "Regression", cv=5, random_state=0
        )
        assert np.isfinite(score.mean_nrmse)
