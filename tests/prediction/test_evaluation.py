import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.prediction.baseline import InverseLinearBaseline
from repro.prediction.evaluation import (
    build_scaling_dataset,
    evaluate_baseline,
    evaluate_pairwise_strategy,
    evaluate_single_strategy,
)


@pytest.fixture(scope="module")
def tpcc_dataset(scaling_repo):
    return build_scaling_dataset(scaling_repo, "tpcc", 8, random_state=0)


class TestInverseLinearBaseline:
    def test_factor(self):
        assert InverseLinearBaseline(2, 8).factor == 4.0

    def test_predict_scales(self):
        baseline = InverseLinearBaseline(2, 4)
        np.testing.assert_allclose(
            baseline.predict([100.0, 200.0]), [200.0, 400.0]
        )

    def test_invalid_cpu_counts(self):
        with pytest.raises(ValidationError):
            InverseLinearBaseline(0, 4)


class TestBuildScalingDataset:
    def test_thirty_observations_per_sku(self, tpcc_dataset):
        for name in tpcc_dataset.sku_names:
            assert tpcc_dataset.observations[name].shape == (30,)
            assert tpcc_dataset.groups[name].shape == (30,)

    def test_sku_ordering_ascending(self, tpcc_dataset):
        cpus = [tpcc_dataset.cpu_counts[n] for n in tpcc_dataset.sku_names]
        assert cpus == [2, 4, 8, 16]

    def test_six_upward_pairs(self, tpcc_dataset):
        assert len(tpcc_dataset.upward_pairs()) == 6

    def test_groups_encode_data_groups(self, tpcc_dataset):
        groups = tpcc_dataset.groups[tpcc_dataset.sku_names[0]]
        assert set(groups.tolist()) == {0, 1, 2}

    def test_throughput_increases_with_cpus(self, tpcc_dataset):
        means = [
            tpcc_dataset.observations[name].mean()
            for name in tpcc_dataset.sku_names
        ]
        assert means == sorted(means)

    def test_pooled_shapes(self, tpcc_dataset):
        cpus, throughput, groups = tpcc_dataset.pooled()
        assert cpus.shape == throughput.shape == groups.shape == (120,)

    def test_missing_workload_rejected(self, scaling_repo):
        with pytest.raises(ValidationError):
            build_scaling_dataset(scaling_repo, "ycsb", 8)


class TestStrategyEvaluation:
    def test_pairwise_regression_reasonable(self, tpcc_dataset):
        score = evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", random_state=0
        )
        assert score.context == "pairwise"
        assert 0.1 < score.mean_nrmse < 1.0
        assert score.mean_training_time_s >= 0.0

    def test_single_regression_reasonable(self, tpcc_dataset):
        score = evaluate_single_strategy(
            tpcc_dataset, "Regression", random_state=0
        )
        assert score.context == "single"
        assert 0.1 < score.mean_nrmse < 1.5

    def test_baseline_much_worse_than_models(self, tpcc_dataset):
        baseline = evaluate_baseline(tpcc_dataset)
        model = evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", random_state=0
        ).mean_nrmse
        assert baseline > 3 * model

    def test_lmm_consumes_groups(self, tpcc_dataset):
        score = evaluate_pairwise_strategy(tpcc_dataset, "LMM", random_state=0)
        assert np.isfinite(score.mean_nrmse)

    def test_deterministic_given_seed(self, tpcc_dataset):
        a = evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", random_state=3
        ).mean_nrmse
        b = evaluate_pairwise_strategy(
            tpcc_dataset, "Regression", random_state=3
        ).mean_nrmse
        assert a == b
