import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.prediction.context import (
    PairwiseModelSet,
    PairwiseScalingModel,
    SingleScalingModel,
)


@pytest.fixture
def paired_observations(rng):
    """Source/target observations with a true scaling factor of 2.2."""
    y_source = 1000.0 * np.exp(rng.normal(0, 0.05, 30))
    y_target = 2.2 * y_source * np.exp(rng.normal(0, 0.05, 30))
    return y_source, y_target


class TestSingleScalingModel:
    def test_fit_predict_round_trip(self, rng):
        cpus = np.repeat([2.0, 4.0, 8.0, 16.0], 8)
        y = 300 * cpus**0.8 * np.exp(rng.normal(0, 0.03, cpus.size))
        model = SingleScalingModel("Regression").fit(cpus, y)
        predictions = model.predict(np.array([2.0, 16.0]))
        assert predictions[1] > predictions[0]

    def test_sqrt_basis_captures_concavity(self, rng):
        cpus = np.repeat([2.0, 4.0, 8.0, 16.0], 10)
        y = 1000 * (1 / (0.2 + 0.8 / cpus))  # Amdahl-shaped
        model = SingleScalingModel("Regression").fit(cpus, y)
        predictions = model.predict(np.array([2.0, 4.0, 8.0, 16.0]))
        truth = 1000 * (1 / (0.2 + 0.8 / np.array([2.0, 4.0, 8.0, 16.0])))
        assert np.max(np.abs(predictions - truth) / truth) < 0.1

    def test_lmm_strategy_accepts_groups(self, rng):
        cpus = np.repeat([2.0, 4.0], 15)
        groups = np.tile(np.repeat([0, 1, 2], 5), 2)
        y = 100 * cpus + 10 * groups
        model = SingleScalingModel("LMM").fit(cpus, y, groups=groups)
        predictions = model.predict(cpus, groups=groups)
        assert np.mean((predictions - y) ** 2) < 25.0

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            SingleScalingModel().predict([4.0])


class TestPairwiseScalingModel:
    def test_learns_scaling_factor(self, paired_observations):
        y_source, y_target = paired_observations
        model = PairwiseScalingModel("Regression").fit(y_source, y_target)
        assert model.scaling_factor() == pytest.approx(2.2, rel=0.1)

    def test_predict_on_same_workload(self, paired_observations):
        y_source, y_target = paired_observations
        model = PairwiseScalingModel("SVM").fit(y_source, y_target)
        predictions = model.predict(y_source)
        relative = np.abs(predictions - y_target) / y_target
        assert np.median(relative) < 0.15

    def test_transfer_is_scale_free(self, paired_observations, rng):
        y_source, y_target = paired_observations
        model = PairwiseScalingModel("Regression").fit(y_source, y_target)
        # A different workload, 8x the throughput, same scaling behaviour.
        other = 8000.0 * np.exp(rng.normal(0, 0.05, 20))
        transferred = model.transfer(other)
        assert transferred.mean() == pytest.approx(2.2 * other.mean(), rel=0.1)

    def test_transfer_requires_normalization(self, paired_observations):
        y_source, y_target = paired_observations
        model = PairwiseScalingModel("Regression", normalize=False)
        model.fit(y_source, y_target)
        with pytest.raises(ValidationError, match="normalize"):
            model.transfer(y_source)

    def test_lmm_pairwise_with_groups(self, paired_observations):
        y_source, y_target = paired_observations
        groups = np.repeat([0, 1, 2], 10)
        model = PairwiseScalingModel("LMM").fit(
            y_source, y_target, groups=groups
        )
        predictions = model.predict(y_source, groups=groups)
        assert predictions.shape == (30,)

    def test_non_positive_source_rejected(self):
        with pytest.raises(ValidationError):
            PairwiseScalingModel().fit([0.0, 0.0], [1.0, 1.0])

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            PairwiseScalingModel().predict([1.0])


class TestPairwiseModelSet:
    @pytest.fixture
    def observations(self, rng):
        base = 1000.0 * np.exp(rng.normal(0, 0.05, 24))
        return {
            "2cpu": base,
            "4cpu": 1.6 * base * np.exp(rng.normal(0, 0.04, 24)),
            "8cpu": 2.3 * base * np.exp(rng.normal(0, 0.04, 24)),
        }

    def test_all_upward_pairs_fitted(self, observations):
        model_set = PairwiseModelSet("Regression").fit(
            observations, cpu_counts={"2cpu": 2, "4cpu": 4, "8cpu": 8}
        )
        assert model_set.pairs == [
            ("2cpu", "4cpu"),
            ("2cpu", "8cpu"),
            ("4cpu", "8cpu"),
        ]

    def test_factors_ordered(self, observations):
        model_set = PairwiseModelSet("Regression").fit(
            observations, cpu_counts={"2cpu": 2, "4cpu": 4, "8cpu": 8}
        )
        f24 = model_set.model("2cpu", "4cpu").scaling_factor()
        f28 = model_set.model("2cpu", "8cpu").scaling_factor()
        assert f28 > f24 > 1.0

    def test_missing_pair_raises(self, observations):
        model_set = PairwiseModelSet("Regression").fit(
            observations, cpu_counts={"2cpu": 2, "4cpu": 4, "8cpu": 8}
        )
        with pytest.raises(ValidationError, match="no model"):
            model_set.model("8cpu", "2cpu")

    def test_needs_two_skus(self, observations):
        with pytest.raises(ValidationError):
            PairwiseModelSet().fit({"2cpu": observations["2cpu"]})
