import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.prediction.uncertainty import (
    pairwise_prediction_interval,
    single_prediction_interval,
)


@pytest.fixture
def pair_data(rng):
    y_source = 1000.0 * np.exp(rng.normal(0, 0.05, 40))
    y_target = 2.0 * y_source * np.exp(rng.normal(0, 0.05, 40))
    return y_source, y_target


class TestPairwiseInterval:
    def test_interval_brackets_point_prediction(self, pair_data):
        y_source, y_target = pair_data
        interval = pairwise_prediction_interval(
            "Regression", y_source, y_target, y_source[:5],
            n_bootstrap=50, random_state=0,
        )
        assert np.all(interval.lower <= interval.prediction + 1e-9)
        assert np.all(interval.prediction <= interval.upper + 1e-9)

    def test_interval_contains_truth_mostly(self, pair_data):
        y_source, y_target = pair_data
        query = y_source[:20]
        truth = 2.0 * query
        interval = pairwise_prediction_interval(
            "Regression", y_source, y_target, query,
            confidence=0.95, n_bootstrap=100, random_state=0,
        )
        assert interval.contains(truth).mean() > 0.5

    def test_width_shrinks_with_confidence(self, pair_data):
        y_source, y_target = pair_data
        narrow = pairwise_prediction_interval(
            "Regression", y_source, y_target, y_source[:3],
            confidence=0.5, n_bootstrap=100, random_state=0,
        )
        wide = pairwise_prediction_interval(
            "Regression", y_source, y_target, y_source[:3],
            confidence=0.99, n_bootstrap=100, random_state=0,
        )
        assert np.all(narrow.width <= wide.width + 1e-9)

    def test_noisier_data_wider_interval(self, rng):
        y_source = 1000.0 * np.exp(rng.normal(0, 0.05, 40))
        quiet = 2.0 * y_source * np.exp(rng.normal(0, 0.02, 40))
        loud = 2.0 * y_source * np.exp(rng.normal(0, 0.3, 40))
        query = y_source[:5]
        w_quiet = pairwise_prediction_interval(
            "Regression", y_source, quiet, query,
            n_bootstrap=80, random_state=0,
        ).width.mean()
        w_loud = pairwise_prediction_interval(
            "Regression", y_source, loud, query,
            n_bootstrap=80, random_state=0,
        ).width.mean()
        assert w_loud > w_quiet

    def test_deterministic(self, pair_data):
        y_source, y_target = pair_data
        a = pairwise_prediction_interval(
            "Regression", y_source, y_target, y_source[:2],
            n_bootstrap=30, random_state=7,
        )
        b = pairwise_prediction_interval(
            "Regression", y_source, y_target, y_source[:2],
            n_bootstrap=30, random_state=7,
        )
        np.testing.assert_array_equal(a.lower, b.lower)
        np.testing.assert_array_equal(a.upper, b.upper)

    def test_invalid_confidence(self, pair_data):
        y_source, y_target = pair_data
        with pytest.raises(ValidationError):
            pairwise_prediction_interval(
                "Regression", y_source, y_target, y_source[:2],
                confidence=1.5,
            )

    def test_minimum_bootstrap(self, pair_data):
        y_source, y_target = pair_data
        with pytest.raises(ValidationError):
            pairwise_prediction_interval(
                "Regression", y_source, y_target, y_source[:2],
                n_bootstrap=5,
            )


class TestSingleInterval:
    def test_brackets_and_monotone_curve(self, rng):
        cpus = np.repeat([2.0, 4.0, 8.0, 16.0], 8)
        throughput = 400 * cpus**0.8 * np.exp(rng.normal(0, 0.05, cpus.size))
        interval = single_prediction_interval(
            "Regression", cpus, throughput, np.array([2.0, 8.0, 16.0]),
            n_bootstrap=60, random_state=0,
        )
        assert np.all(interval.lower <= interval.upper)
        assert interval.prediction[0] < interval.prediction[2]

    def test_groups_supported_for_lmm(self, rng):
        cpus = np.tile(np.repeat([2.0, 4.0, 8.0], 6), 1)
        groups = np.tile(np.repeat([0, 1, 2], 2), 3)
        throughput = 300 * cpus + 50 * groups
        interval = single_prediction_interval(
            "LMM", cpus, throughput, np.array([4.0]),
            groups=groups, n_bootstrap=20, random_state=0,
        )
        assert np.isfinite(interval.prediction).all()
