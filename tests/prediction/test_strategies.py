import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.prediction.strategies import (
    STRATEGY_NAMES,
    GroupedLMMAdapter,
    make_strategy,
    strategy_uses_groups,
)


class TestRegistry:
    def test_table6_names(self):
        assert STRATEGY_NAMES == (
            "Regression",
            "SVM",
            "LMM",
            "GB",
            "MARS",
            "NNet",
        )

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_all_strategies_instantiate(self, name):
        model = make_strategy(name)
        assert hasattr(model, "fit") and hasattr(model, "predict")

    def test_unknown_strategy(self):
        with pytest.raises(ValidationError):
            make_strategy("XGBoost")

    def test_only_lmm_uses_groups(self):
        assert strategy_uses_groups("LMM")
        for name in STRATEGY_NAMES:
            if name != "LMM":
                assert not strategy_uses_groups(name)


class TestStrategyBehaviour:
    @pytest.mark.parametrize("name", ["Regression", "SVM", "GB", "MARS"])
    def test_simple_strategies_fit_scaling_curve(self, name, rng):
        cpus = np.repeat([2.0, 4.0, 8.0, 16.0], 6)
        y = 100 * cpus**0.7 * np.exp(rng.normal(0, 0.03, cpus.size))
        model = make_strategy(name, random_state=0)
        model.fit(cpus.reshape(-1, 1), y)
        predictions = model.predict(cpus.reshape(-1, 1))
        relative_error = np.abs(predictions - y) / y
        assert np.median(relative_error) < 0.15

    def test_lmm_adapter_consumes_group_column(self, rng):
        x = np.tile(np.repeat([1.0, 2.0, 4.0], 10), 2)
        groups = np.repeat([0.0, 1.0], 30)
        y = 10 * x + np.where(groups == 0, 0.0, 5.0)
        X = np.column_stack([x, groups])
        adapter = GroupedLMMAdapter().fit(X, y)
        predictions = adapter.predict(X)
        assert np.mean((predictions - y) ** 2) < 1.0

    def test_lmm_adapter_needs_group_column(self, rng):
        with pytest.raises(ValidationError, match="group column"):
            GroupedLMMAdapter().fit(rng.normal(size=(10, 1)), rng.normal(size=10))

    def test_nnet_on_raw_scale_is_poor(self, rng):
        """The Table 6 NNet pathology: raw throughput targets underfit."""
        cpus = np.repeat([2.0, 4.0, 8.0, 16.0], 6)
        y = 400 * cpus**0.7
        nnet = make_strategy("NNet", random_state=0)
        nnet.fit(cpus.reshape(-1, 1), y)
        gb = make_strategy("GB", random_state=0)
        gb.fit(cpus.reshape(-1, 1), y)
        nnet_err = np.abs(nnet.predict(cpus.reshape(-1, 1)) - y).mean()
        gb_err = np.abs(gb.predict(cpus.reshape(-1, 1)) - y).mean()
        assert nnet_err > 3 * gb_err
