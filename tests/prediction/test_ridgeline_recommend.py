import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.prediction import (
    RidgelinePredictor,
    build_scaling_dataset,
    recommend_sku,
)
from repro.workloads import SKU, run_experiments, workload_by_name


@pytest.fixture
def two_resource_data(rng):
    """Throughput = min(900*cpus, 150*memory) + noise over a grid."""
    cpus, memory = np.meshgrid([2.0, 4.0, 8.0, 16.0], [16.0, 32.0, 64.0])
    cpus, memory = cpus.ravel(), memory.ravel()
    cpus = np.repeat(cpus, 4)
    memory = np.repeat(memory, 4)
    truth = np.minimum(900 * cpus, 150 * memory)
    y = truth * np.exp(rng.normal(0, 0.02, truth.size))
    return cpus, memory, y, truth


class TestRidgeline:
    def test_predicts_min_of_resources(self, two_resource_data):
        cpus, memory, y, truth = two_resource_data
        model = RidgelinePredictor().fit(cpus, memory, y)
        predictions = model.predict(cpus, memory)
        relative = np.abs(predictions - truth) / truth
        assert np.median(relative) < 0.15

    def test_binding_resource_identification(self, two_resource_data):
        cpus, memory, y, _ = two_resource_data
        model = RidgelinePredictor().fit(cpus, memory, y)
        # 16 CPUs with 16 GB: memory-starved; 2 CPUs with 64 GB: CPU-bound.
        assert model.binding_resource(16.0, 16.0) == "memory"
        assert model.binding_resource(2.0, 64.0) == "cpu"

    def test_memory_upgrade_helps_only_when_memory_bound(
        self, two_resource_data
    ):
        cpus, memory, y, _ = two_resource_data
        model = RidgelinePredictor().fit(cpus, memory, y)
        memory_bound = model.predict([16.0], [16.0])[0]
        upgraded = model.predict([16.0], [64.0])[0]
        assert upgraded > memory_bound * 1.3

    def test_needs_two_levels_per_dimension(self, rng):
        with pytest.raises(ValidationError):
            RidgelinePredictor().fit(
                [2.0, 2.0, 2.0], [16.0, 32.0, 64.0], [1.0, 2.0, 3.0]
            )

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RidgelinePredictor().predict([2.0], [16.0])

    def test_invalid_quantile(self):
        with pytest.raises(ValidationError):
            RidgelinePredictor(binding_quantile=0.0)


class TestRecommendSKU:
    @pytest.fixture(scope="class")
    def recommendation_setup(self):
        workload = workload_by_name("ycsb")
        skus = [SKU(cpus=c, memory_gb=32.0) for c in (2, 4, 8, 16)]
        repo = run_experiments(
            [workload], skus,
            terminals_for=lambda w: (32,),
            duration_s=1200.0, random_state=3,
        )
        dataset = build_scaling_dataset(repo, "ycsb", 32, random_state=0)
        prices = {s.name: float(100 * s.cpus) for s in skus}
        sku_map = {s.name: s for s in skus}
        return workload, dataset, prices, sku_map

    def test_cheapest_feasible_chosen(self, recommendation_setup):
        workload, dataset, prices, sku_map = recommendation_setup
        result = recommend_sku(
            workload, dataset, "2cpu-32gb",
            target_throughput=4500.0, prices=prices, terminals=32,
            skus=sku_map,
        )
        assert result.feasible
        feasible = [
            a for a in result.assessments if a.meets(result.target_throughput)
        ]
        assert result.chosen.price == min(a.price for a in feasible)

    def test_unreachable_target(self, recommendation_setup):
        workload, dataset, prices, sku_map = recommendation_setup
        result = recommend_sku(
            workload, dataset, "2cpu-32gb",
            target_throughput=10**7, prices=prices, terminals=32,
            skus=sku_map,
        )
        assert not result.feasible
        assert result.chosen is None

    def test_ceiling_caps_predictions(self, recommendation_setup):
        workload, dataset, prices, sku_map = recommendation_setup
        result = recommend_sku(
            workload, dataset, "2cpu-32gb",
            target_throughput=1000.0, prices=prices, terminals=32,
            skus=sku_map,
        )
        for assessment in result.assessments:
            assert assessment.effective_throughput <= assessment.ceiling

    def test_missing_current_sku(self, recommendation_setup):
        workload, dataset, prices, sku_map = recommendation_setup
        with pytest.raises(ValidationError, match="current SKU"):
            recommend_sku(
                workload, dataset, "64cpu-32gb",
                target_throughput=100.0, prices=prices, terminals=32,
                skus=sku_map,
            )

    def test_invalid_target(self, recommendation_setup):
        workload, dataset, prices, sku_map = recommendation_setup
        with pytest.raises(ValidationError, match="target"):
            recommend_sku(
                workload, dataset, "2cpu-32gb",
                target_throughput=0.0, prices=prices, terminals=32,
                skus=sku_map,
            )
