"""Builders for the golden-regression fixtures under ``tests/golden/``.

Each builder runs a small, fully seeded slice of the pipeline and
returns a JSON-serializable summary of numbers the paper's figures and
tables are derived from: per-experiment feature vectors and throughput,
and the NRMSE of a seeded mini prediction pipeline.  The committed JSON
files pin those numbers; ``tests/test_golden_regression.py`` asserts the
current engine still produces them to within 1e-12 (exactly, for
integers and strings).

Regenerate after an *intentional* engine change with::

    PYTHONPATH=src python tests/golden/regenerate.py

and review the diff like any other behavioural change — a golden shift
means every previously produced corpus and paper number shifts with it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.prediction.evaluation import (
    build_scaling_dataset,
    evaluate_baseline,
    evaluate_pairwise_strategy,
)
from repro.workloads import (
    SKU,
    ExperimentRunner,
    run_experiments,
    workload_by_name,
)

GOLDEN_DIR = Path(__file__).resolve().parent


def _experiment_summary(result) -> dict:
    return {
        "experiment_id": result.experiment_id,
        "seed": result.metadata["seed"],
        "throughput": result.throughput,
        "latency_ms": result.latency_ms,
        "bottleneck": result.bottleneck,
        "n_samples": result.n_samples,
        "feature_vector": result.feature_vector().tolist(),
    }


def tpcc_run_summary() -> dict:
    """One fully seeded TPC-C experiment (runner-level golden)."""
    runner = ExperimentRunner(workload_by_name("tpcc"), random_state=3)
    result = runner.run(
        SKU(cpus=8, memory_gb=32.0), terminals=8, duration_s=600.0
    )
    return _experiment_summary(result)


def mini_corpus_summary() -> dict:
    """A small two-workload grid (corpus-level golden).

    Covers the seed-derivation scheme end to end: any change to
    ``spawn_generators``, grid enumeration order, or per-task seeding
    shifts these numbers.
    """
    repository = run_experiments(
        [workload_by_name("tpcc"), workload_by_name("tpch")],
        [SKU(cpus=4, memory_gb=32.0)],
        terminals_for=lambda w: (1,) if w.name == "tpch" else (2,),
        n_runs=2,
        duration_s=300.0,
        random_state=123,
    )
    return {"experiments": [_experiment_summary(r) for r in repository]}


def mini_pipeline_nrmse() -> dict:
    """NRMSE of a seeded mini scaling-prediction pipeline (Table 6 path)."""
    repository = run_experiments(
        [workload_by_name("tpcc")],
        [SKU(cpus=2, memory_gb=32.0), SKU(cpus=4, memory_gb=32.0)],
        terminals_for=lambda w: (4,),
        n_runs=3,
        duration_s=600.0,
        random_state=7,
    )
    dataset = build_scaling_dataset(
        repository, "tpcc", 4, n_series=5, random_state=0
    )
    score = evaluate_pairwise_strategy(
        dataset, "Regression", cv=3, random_state=0
    )
    return {
        "workload": "tpcc",
        "strategy": score.strategy,
        "context": score.context,
        "mean_nrmse": score.mean_nrmse,
        "baseline_nrmse": evaluate_baseline(dataset),
    }


#: Golden file name -> builder.
BUILDERS = {
    "tpcc_run_summary.json": tpcc_run_summary,
    "mini_corpus_summary.json": mini_corpus_summary,
    "mini_pipeline_nrmse.json": mini_pipeline_nrmse,
}


def regenerate(directory: Path | None = None) -> list[Path]:
    """Write every golden file; returns the paths written."""
    directory = directory or GOLDEN_DIR
    written = []
    for name, builder in BUILDERS.items():
        path = directory / name
        path.write_text(json.dumps(builder(), indent=2, sort_keys=True))
        written.append(path)
    return written
