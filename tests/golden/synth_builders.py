"""Builders for the synthesis golden fixtures under ``tests/golden/synth/``.

Each builder runs one fully seeded synthesis path end to end —
``(seed, targets) -> spec -> verification`` — and returns a JSON-safe
summary pinning the synthesized spec (every transaction cost field), the
extracted targets, and the verification report.
``tests/test_synth_golden.py`` asserts the current synthesizer still
produces these numbers to within 1e-12, so any change to the sampler's
draw order, the planner-inversion formulas, or the refinement loop's
update rules surfaces as a reviewed golden diff instead of a silent
shift in every synthesized corpus.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.workloads import (
    SKU,
    ExperimentRunner,
    SynthesisContext,
    calibration_targets,
    sample_spec,
    synthesize_clone,
    verify_synthesis,
    workload_by_name,
)

SYNTH_GOLDEN_DIR = Path(__file__).resolve().parent / "synth"


def sampled_spec_summary() -> dict:
    """Sampler path: one pinned (seed, index) draw, verified against its
    own calibration targets with disjoint seeds."""
    spec = sample_spec(0, seed=11)
    context = SynthesisContext(
        sku=SKU(cpus=16, memory_gb=32.0),
        terminals=8,
        duration_s=300.0,
    )
    targets = calibration_targets(spec, context=context, seed=11)
    report = verify_synthesis(spec, targets, context=context, seed=11)
    return {
        "spec": spec.to_dict(),
        "targets": targets.to_dict(),
        "report": report.to_dict(),
    }


def tpcc_clone_summary() -> dict:
    """Trace-fitting path: a TPC-C template cloned and verified."""
    runner = ExperimentRunner(workload_by_name("tpcc"), random_state=123)
    template = runner.run(
        SKU(cpus=16, memory_gb=32.0), terminals=8, duration_s=600.0, seed=42
    )
    result = synthesize_clone(template, seed=7)
    return {
        "spec": result.spec.to_dict(),
        "targets": result.targets.to_dict(),
        "refine_iterations": result.refine_iterations,
        "residual": result.residual,
        "report": result.report.to_dict(),
    }


#: Golden file name (under ``tests/golden/synth/``) -> builder.
SYNTH_BUILDERS = {
    "sampled_spec_summary.json": sampled_spec_summary,
    "tpcc_clone_summary.json": tpcc_clone_summary,
}


def regenerate_synth(directory: Path | None = None) -> list[Path]:
    """Write every synthesis golden file; returns the paths written."""
    directory = directory or SYNTH_GOLDEN_DIR
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, builder in SYNTH_BUILDERS.items():
        path = directory / name
        path.write_text(json.dumps(builder(), indent=2, sort_keys=True))
        written.append(path)
    return written
