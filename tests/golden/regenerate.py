"""Regenerate the golden-regression fixtures (see ``builders.py``).

Usage::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1].parent))

from tests.golden.builders import regenerate  # noqa: E402
from tests.golden.synth_builders import regenerate_synth  # noqa: E402

if __name__ == "__main__":
    for path in regenerate() + regenerate_synth():
        print(f"wrote {path}")
