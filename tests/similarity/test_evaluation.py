import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.similarity import (
    RepresentationBuilder,
    distance_matrix,
    evaluate_measure,
    knn_accuracy,
    pairwise_workload_distances,
    ranking_mean_average_precision,
    ranking_ndcg,
)
from repro.similarity.evaluation import normalized_distances, representation_matrices
from repro.similarity.measures import default_measures, get_measure, measure_registry


@pytest.fixture(scope="module")
def mini_corpus(small_corpus):
    """A lighter slice: 2 sub-experiments per workload/terminal setting."""
    return small_corpus.filter(lambda r: r.subsample_index in (0, 1))


@pytest.fixture(scope="module")
def builder(mini_corpus):
    return RepresentationBuilder().fit(mini_corpus)


class TestMeasureRegistry:
    def test_registry_contents(self):
        names = set(measure_registry())
        assert {"L2,1", "L1,1", "Fro", "Canb", "Chi2", "Corr"} <= names
        assert {"Dependent-DTW", "Independent-DTW"} <= names
        assert {"Dependent-LCSS", "Independent-LCSS"} <= names

    def test_norms_apply_everywhere(self):
        spec = get_measure("L2,1")
        assert set(spec.representations) == {"mts", "hist", "phase"}

    def test_elastic_measures_mts_only(self):
        assert get_measure("Dependent-DTW").representations == ("mts",)

    def test_default_measures_filtered(self):
        hist_measures = {m.name for m in default_measures("hist")}
        assert "Dependent-DTW" not in hist_measures
        assert "L2,1" in hist_measures

    def test_unknown_measure(self):
        with pytest.raises(ValidationError):
            get_measure("Wasserstein")


class TestDistanceMatrix:
    def test_symmetric_zero_diagonal(self, mini_corpus, builder):
        matrices = representation_matrices(mini_corpus, builder, "hist")
        D = distance_matrix(matrices, get_measure("L2,1"))
        assert D.shape == (len(mini_corpus),) * 2
        np.testing.assert_allclose(D, D.T)
        np.testing.assert_allclose(np.diag(D), 0.0)

    def test_normalized_in_unit_interval(self, mini_corpus, builder):
        matrices = representation_matrices(mini_corpus, builder, "hist")
        D = normalized_distances(
            distance_matrix(matrices, get_measure("L1,1"))
        )
        assert D.max() <= 1.0 + 1e-12 and D.min() >= 0.0


class TestRankingScores:
    def test_knn_accuracy_perfect_clusters(self):
        D = np.array(
            [
                [0.0, 0.1, 5.0, 5.0],
                [0.1, 0.0, 5.0, 5.0],
                [5.0, 5.0, 0.0, 0.1],
                [5.0, 5.0, 0.1, 0.0],
            ]
        )
        assert knn_accuracy(D, ["a", "a", "b", "b"]) == 1.0

    def test_knn_accuracy_confused_clusters(self):
        D = np.array(
            [
                [0.0, 5.0, 0.1],
                [5.0, 0.0, 5.0],
                [0.1, 5.0, 0.0],
            ]
        )
        # Rows 0 and 2 pick each other (wrong labels); row 1's tie breaks
        # to index 0, which happens to share its label.
        assert knn_accuracy(D, ["a", "a", "b"]) == pytest.approx(1 / 3)

    def test_map_perfect(self):
        D = np.array(
            [
                [0.0, 0.1, 5.0],
                [0.1, 0.0, 5.0],
                [5.0, 5.0, 0.0],
            ]
        )
        assert ranking_mean_average_precision(D, ["a", "a", "b"]) == 1.0

    def test_ndcg_rewards_type_similarity(self):
        labels = ["w1", "w2", "w3"]
        types = ["analytical", "analytical", "transactional"]
        good = np.array(
            [
                [0.0, 1.0, 2.0],
                [1.0, 0.0, 2.0],
                [2.0, 2.0, 0.0],
            ]
        )
        bad = np.array(
            [
                [0.0, 2.0, 1.0],
                [2.0, 0.0, 1.0],
                [1.0, 2.0, 0.0],
            ]
        )
        assert ranking_ndcg(good, labels, types) > ranking_ndcg(
            bad, labels, types
        )

    def test_label_alignment_validated(self):
        with pytest.raises(ValidationError):
            knn_accuracy(np.zeros((3, 3)), ["a", "b"])

    def test_single_experiment_rejected(self):
        with pytest.raises(ValidationError):
            knn_accuracy(np.zeros((1, 1)), ["a"])


class TestPairwiseWorkloadDistances:
    def test_keys_cover_all_pairs(self, mini_corpus, builder):
        matrices = representation_matrices(mini_corpus, builder, "hist")
        D = distance_matrix(matrices, get_measure("L2,1"))
        stats = pairwise_workload_distances(D, mini_corpus.labels())
        names = set(mini_corpus.labels())
        assert set(stats) == {(a, b) for a in names for b in names}

    def test_self_distance_smallest(self, mini_corpus, builder):
        matrices = representation_matrices(mini_corpus, builder, "hist")
        D = distance_matrix(matrices, get_measure("L2,1"))
        stats = pairwise_workload_distances(D, mini_corpus.labels())
        for name in set(mini_corpus.labels()):
            self_mean = stats[(name, name)][0]
            others = [
                stats[(name, other)][0]
                for other in set(mini_corpus.labels())
                if other != name
            ]
            assert self_mean < min(others)


class TestEvaluateMeasure:
    def test_hist_l21_strong_on_corpus(self, mini_corpus, builder):
        result = evaluate_measure(
            mini_corpus, builder, "hist", get_measure("L2,1")
        )
        assert result.knn_accuracy > 0.9
        assert result.mean_average_precision > 0.8
        assert result.ndcg > 0.8
        assert result.n_features == 29

    def test_incompatible_combination_rejected(self, mini_corpus, builder):
        with pytest.raises(ValidationError):
            evaluate_measure(
                mini_corpus, builder, "hist", get_measure("Dependent-DTW")
            )

    def test_perfect_reliability_flag(self, mini_corpus, builder):
        result = evaluate_measure(
            mini_corpus, builder, "hist", get_measure("L2,1")
        )
        assert result.perfect_reliability == (result.knn_accuracy >= 1.0)
