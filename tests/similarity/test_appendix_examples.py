"""Exact reproduction of the Appendix A worked examples (Tables 7-8)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.similarity.representations import equi_width_cumulative_histogram

#: Table 7a — query plan matrix: 3 queries x 4 features.
PLAN_EXAMPLE = {
    "f0_i": [63.0, 9.0, 134.0],
    "f1_i": [1.0, 1.0, 23.4],
    "f2_i": [0.0, 1.0, 4.0],
    "f3_i": [1.0, 0.0, 0.0],
}

#: Table 7b — resource utilization matrix: 3 features x 4 timestamps.
RESOURCE_EXAMPLE = {
    "f0_j": [32.02, 25.23, 20.65, 25.47],
    "f1_j": [175.0, 66.0, 35.0, 27.0],
    "f2_j": [0.07, 0.069, 0.07, 0.07],
}

#: Table 8 — the paper's 3-bin cumulative histograms of the same data.
TABLE8 = {
    "f0_i": [1 / 3, 2 / 3, 1.0],
    "f1_i": [2 / 3, 2 / 3, 1.0],
    "f2_i": [2 / 3, 2 / 3, 1.0],
    "f3_i": [2 / 3, 2 / 3, 1.0],
    "f0_j": [1 / 4, 3 / 4, 1.0],
    "f1_j": [3 / 4, 3 / 4, 1.0],
    "f2_j": [1 / 4, 1 / 4, 1.0],
}


class TestTable8:
    @pytest.mark.parametrize("feature", sorted(PLAN_EXAMPLE))
    def test_plan_feature_histograms(self, feature):
        values = PLAN_EXAMPLE[feature]
        histogram = equi_width_cumulative_histogram(values, 3)
        np.testing.assert_allclose(histogram, TABLE8[feature], atol=1e-9)

    @pytest.mark.parametrize("feature", sorted(RESOURCE_EXAMPLE))
    def test_resource_feature_histograms(self, feature):
        values = RESOURCE_EXAMPLE[feature]
        histogram = equi_width_cumulative_histogram(values, 3)
        np.testing.assert_allclose(histogram, TABLE8[feature], atol=1e-9)


class TestHistogramHelper:
    def test_last_bin_always_one(self, rng):
        histogram = equi_width_cumulative_histogram(rng.normal(size=50), 10)
        assert histogram[-1] == pytest.approx(1.0)

    def test_monotone_non_decreasing(self, rng):
        histogram = equi_width_cumulative_histogram(rng.normal(size=50), 10)
        assert np.all(np.diff(histogram) >= -1e-12)

    def test_constant_values_single_mass(self):
        histogram = equi_width_cumulative_histogram([5.0, 5.0, 5.0], 4)
        np.testing.assert_allclose(histogram, 1.0)

    def test_explicit_range_clips(self):
        histogram = equi_width_cumulative_histogram(
            [0.0, 10.0], 2, low=0.0, high=1.0
        )
        # The value 10 clips into the top bin of [0, 1].
        np.testing.assert_allclose(histogram, [0.5, 1.0])

    def test_appendix_h1_h2_h3_shape_ordering(self):
        """The motivating H1/H2/H3 example of Appendix A."""
        h1 = np.repeat([0], 5)  # all mass in bin 1 -> values near 0.0
        h2 = np.repeat([1], 5)  # all mass in bin 2
        h3 = np.repeat([4], 5)  # all mass in bin 5
        c = {
            name: equi_width_cumulative_histogram(v, 5, low=0, high=5)
            for name, v in (("h1", h1), ("h2", h2), ("h3", h3))
        }
        near = np.abs(c["h1"] - c["h2"]).sum()
        far = np.abs(c["h1"] - c["h3"]).sum()
        assert near == pytest.approx(1.0)
        assert far == pytest.approx(4.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            equi_width_cumulative_histogram([], 3)
        with pytest.raises(ValidationError):
            equi_width_cumulative_histogram([1.0], 0)
