"""Property-based tests (hypothesis) for similarity invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.similarity.dtw import dtw_distance, multivariate_dtw
from repro.similarity.lcss import lcss_distance, multivariate_lcss
from repro.similarity.norms import NORMS
from repro.similarity.robustness import distance_distortion

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)
positive = st.floats(min_value=0.0, max_value=100, allow_nan=False)


@st.composite
def matrix_pairs(draw, min_rows=1, max_rows=8, min_cols=1, max_cols=4):
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    A = draw(arrays(np.float64, (rows, cols), elements=finite))
    B = draw(arrays(np.float64, (rows, cols), elements=finite))
    return A, B


class TestNormAxioms:
    @given(matrix_pairs())
    @settings(max_examples=40, deadline=None)
    def test_symmetry_and_identity_all_norms(self, pair):
        A, B = pair
        for name, norm in NORMS.items():
            assert norm(A, A) == pytest.approx(0.0, abs=1e-9), name
            assert norm(A, B) == pytest.approx(norm(B, A), rel=1e-9), name
            assert norm(A, B) >= 0.0, name

    @given(matrix_pairs(), matrix_pairs())
    @settings(max_examples=30, deadline=None)
    def test_l11_triangle_inequality(self, pair_a, pair_b):
        # Verify on compatible shapes only.
        A, B = pair_a
        C, _ = pair_b
        if C.shape != A.shape:
            return
        l11 = NORMS["L1,1"]
        assert l11(A, C) <= l11(A, B) + l11(B, C) + 1e-9

    @given(
        arrays(np.float64, (4, 3), elements=finite),
        arrays(np.float64, (4, 3), elements=finite),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_scaling_homogeneity_of_linear_norms(self, A, B, factor):
        for name in ("L1,1", "L2,1", "Fro"):
            norm = NORMS[name]
            assert norm(A * factor, B * factor) == pytest.approx(
                factor * norm(A, B), rel=1e-6, abs=1e-6
            ), name


class TestElasticMeasures:
    @given(
        arrays(np.float64, st.integers(2, 12), elements=finite),
        arrays(np.float64, st.integers(2, 12), elements=finite),
    )
    @settings(max_examples=40, deadline=None)
    def test_dtw_symmetric_nonnegative(self, a, b):
        d = dtw_distance(a, b)
        assert d >= 0.0
        assert d == pytest.approx(dtw_distance(b, a), rel=1e-9, abs=1e-9)

    @given(arrays(np.float64, st.integers(2, 12), elements=finite))
    @settings(max_examples=40, deadline=None)
    def test_dtw_identity(self, a):
        assert dtw_distance(a, a) == 0.0

    @given(
        arrays(np.float64, st.integers(2, 10), elements=finite),
        arrays(np.float64, st.integers(2, 10), elements=finite),
    )
    @settings(max_examples=40, deadline=None)
    def test_dtw_below_euclidean_when_equal_length(self, a, b):
        if a.size != b.size:
            return
        assert dtw_distance(a, b) <= np.linalg.norm(a - b) + 1e-9

    @given(
        arrays(np.float64, st.integers(2, 10), elements=finite),
        arrays(np.float64, st.integers(2, 10), elements=finite),
        st.floats(0.01, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_lcss_in_unit_interval(self, a, b, epsilon):
        value = lcss_distance(a, b, epsilon=epsilon)
        assert 0.0 <= value <= 1.0

    @given(
        arrays(np.float64, st.integers(2, 10), elements=finite),
        st.floats(0.01, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_lcss_self_distance_zero(self, a, epsilon):
        assert lcss_distance(a, a, epsilon=epsilon) == 0.0

    @given(
        arrays(np.float64, (6, 2), elements=finite),
        arrays(np.float64, (8, 2), elements=finite),
    )
    @settings(max_examples=30, deadline=None)
    def test_multivariate_strategies_bounded(self, A, B):
        dep = multivariate_lcss(A, B, strategy="dependent", epsilon=1.0)
        ind = multivariate_lcss(A, B, strategy="independent", epsilon=1.0)
        assert 0.0 <= dep <= 1.0
        assert 0.0 <= ind <= 1.0
        # Dependent matching is stricter: never more matches than the
        # per-dimension average allows.
        assert dep >= ind - 1e-9
        dep_dtw = multivariate_dtw(A, B, strategy="dependent")
        assert dep_dtw >= 0.0


class TestDistortion:
    @given(arrays(np.float64, (5, 5), elements=positive))
    @settings(max_examples=40, deadline=None)
    def test_zero_for_identical_structure(self, D):
        D = (D + D.T) / 2
        np.fill_diagonal(D, 0.0)
        assert distance_distortion(D, D) == pytest.approx(0.0, abs=1e-9)

    @given(arrays(np.float64, (5, 5), elements=positive), st.floats(0.5, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_invariant_to_uniform_scaling(self, D, factor):
        D = (D + D.T) / 2
        np.fill_diagonal(D, 0.0)
        assert distance_distortion(D, D * factor) == pytest.approx(
            0.0, abs=1e-6
        )
