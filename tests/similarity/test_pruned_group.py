"""Exactness of the grouped pruned search and its precomputable bounds.

``nearest_group`` must always name the group a full cross-distance
matrix would name — ties included — while the envelope/norm helpers it
leans on must be genuine lower bounds (and the precomputed envelope
form bit-identical to the direct ``lb_keogh``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.similarity.dtw import (
    keogh_envelope,
    lb_keogh,
    lb_keogh_from_envelope,
)
from repro.similarity.evaluation import cross_distance_matrix
from repro.similarity.measures import get_measure, measure_registry
from repro.similarity.pruning import measure_norm, nearest_group

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def series_pairs(draw, min_len=2, max_len=12, cols=2):
    m = draw(st.integers(min_len, max_len))
    n = draw(st.integers(min_len, max_len))
    A = draw(arrays(np.float64, (m, cols), elements=finite))
    B = draw(arrays(np.float64, (n, cols), elements=finite))
    return A, B


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def full_path_nearest(query, candidates, groups, measure):
    """The group the serving rank path would call nearest.

    Mirrors ``PredictionService.rank`` exactly: cross block, peak
    normalization, per-group block means, stable sort with first-wins
    ties in group order.
    """
    C = cross_distance_matrix(query, candidates, measure)
    peak = float(C.max())
    if peak > 0:
        C = C / peak
    means = {
        name: float(C[:, members].mean()) for name, members in groups
    }
    return sorted(means.items(), key=lambda item: item[1])[0][0]


class TestEnvelopeHelpers:
    @given(series_pairs())
    @settings(max_examples=60, deadline=None)
    def test_envelope_form_bit_identical_to_lb_keogh(self, pair):
        A, B = pair
        lower, upper = keogh_envelope(B)
        assert lb_keogh_from_envelope(A, lower, upper) == lb_keogh(A, B)

    def test_envelope_is_query_independent(self):
        rng = np.random.default_rng(3)
        B = rng.normal(size=(9, 4))
        lower, upper = keogh_envelope(B)
        assert lower.shape == (4,)
        assert np.array_equal(lower, B.min(axis=0))
        assert np.array_equal(upper, B.max(axis=0))

    def test_dimension_mismatch_rejected(self):
        lower, upper = keogh_envelope(np.zeros((4, 3)))
        with pytest.raises(ValidationError):
            lb_keogh_from_envelope(np.zeros((4, 2)), lower, upper)


class TestMeasureNorm:
    @pytest.mark.parametrize("name", ["L2,1", "L1,1", "Fro"])
    @given(pair=series_pairs(min_len=5, max_len=5))
    @settings(max_examples=60, deadline=None)
    def test_reverse_triangle_lower_bound(self, name, pair):
        A, B = pair
        measure = get_measure(name)
        bound = abs(measure_norm(measure, A) - measure_norm(measure, B))
        assert bound <= float(measure(A, B)) + 1e-9

    @pytest.mark.parametrize("name", ["Canb", "Chi2", "Corr", "Dependent-DTW"])
    def test_non_norm_measures_return_none(self, name):
        assert measure_norm(get_measure(name), np.ones((3, 2))) is None


class TestNearestGroupExactness:
    @pytest.mark.parametrize(
        "measure_name",
        ["Dependent-DTW", "Independent-DTW", "L2,1", "L1,1", "Fro", "Canb"],
    )
    def test_matches_full_path_on_random_series(self, measure_name):
        measure = get_measure(measure_name)
        rng = np.random.default_rng(17)
        candidates = [rng.normal(size=(10, 3)) for _ in range(9)]
        groups = [("a", [0, 1, 2]), ("b", [3, 4, 5]), ("c", [6, 7, 8])]
        for trial in range(6):
            query = [
                rng.normal(size=(10, 3))
                for _ in range(int(rng.integers(1, 4)))
            ]
            full = full_path_nearest(query, candidates, groups, measure)
            pruned = nearest_group(query, candidates, groups, measure)
            assert pruned == full, (measure_name, trial)

    def test_matches_full_path_with_precomputed_bounds(self):
        rng = np.random.default_rng(23)
        candidates = [rng.normal(size=(8, 3)) for _ in range(6)]
        groups = [("a", [0, 1]), ("b", [2, 3]), ("c", [4, 5])]
        for name in ("Dependent-DTW", "L2,1"):
            measure = get_measure(name)
            envelopes = [keogh_envelope(M) for M in candidates]
            norms = [measure_norm(measure, M) for M in candidates]
            if any(n is None for n in norms):
                norms = None
            for _ in range(4):
                query = [rng.normal(size=(8, 3)) for _ in range(2)]
                full = full_path_nearest(query, candidates, groups, measure)
                pruned = nearest_group(
                    query,
                    candidates,
                    groups,
                    measure,
                    envelopes=envelopes,
                    norms=norms,
                )
                assert pruned == full, name

    def test_every_measure_agrees_on_one_corpus(self):
        # Unequal group sizes keep quantized measures (LCSS counts in
        # units of 1/k) from producing two mathematically equal group
        # means with different float roundings — the one corner where
        # the full path's [0, 1] rescale can collapse a one-ulp raw
        # difference into a tie the raw domain does not see (see the
        # nearest_group docstring; bit-exact ties are covered below).
        rng = np.random.default_rng(29)
        candidates = [rng.uniform(0.1, 2.0, size=(7, 2)) for _ in range(6)]
        groups = [("x", [0, 1, 2, 3]), ("y", [4, 5])]
        query = [rng.uniform(0.1, 2.0, size=(7, 2))]
        for name, measure in measure_registry().items():
            full = full_path_nearest(query, candidates, groups, measure)
            pruned = nearest_group(query, candidates, groups, measure)
            assert pruned == full, name

    def test_exact_tie_keeps_first_group(self):
        """Duplicated groups tie bit-for-bit; first in order must win —
        the same rule ``SimilarityRanking.nearest`` applies."""
        rng = np.random.default_rng(31)
        member_a = rng.normal(size=(9, 3))
        member_b = rng.normal(size=(9, 3))
        far = rng.normal(size=(9, 3)) + 50.0
        candidates = [member_a, member_b, member_a, member_b, far]
        groups = [("first", [0, 1]), ("clone", [2, 3]), ("far", [4])]
        query = [rng.normal(size=(9, 3))]
        for name in ("Dependent-DTW", "L2,1", "Canb"):
            measure = get_measure(name)
            full = full_path_nearest(query, candidates, groups, measure)
            pruned = nearest_group(query, candidates, groups, measure)
            assert pruned == full == "first", name

    def test_prunes_groups_on_dtw(self, metrics):
        rng = np.random.default_rng(37)
        near = [rng.normal(size=(8, 2)) for _ in range(2)]
        far = [rng.normal(size=(8, 2)) + 100.0 for _ in range(2)]
        candidates = near + far
        groups = [("near", [0, 1]), ("far", [2, 3])]
        query = [rng.normal(size=(8, 2))]
        measure = get_measure("Dependent-DTW")
        assert nearest_group(query, candidates, groups, measure) == "near"
        assert metrics.counter("similarity.pairs_pruned_total").value > 0

    def test_validates_inputs(self):
        measure = get_measure("L2,1")
        with pytest.raises(ValidationError):
            nearest_group([], [np.zeros((3, 2))], [("a", [0])], measure)
        with pytest.raises(ValidationError):
            nearest_group([np.zeros((3, 2))], [np.zeros((3, 2))], [], measure)
        with pytest.raises(ValidationError):
            nearest_group(
                [np.zeros((3, 2))],
                [np.zeros((3, 2))],
                [("a", [])],
                measure,
            )
