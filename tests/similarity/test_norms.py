import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.similarity.norms import (
    NORMS,
    canberra_distance,
    chi2_distance,
    correlation_distance,
    frobenius_distance,
    l11_distance,
    l21_distance,
)


@pytest.fixture
def pair(rng):
    return rng.normal(size=(6, 4)), rng.normal(size=(6, 4))


ALL_NORM_FUNCS = list(NORMS.values())


class TestSharedProperties:
    @pytest.mark.parametrize("distance", ALL_NORM_FUNCS, ids=list(NORMS))
    def test_identity(self, distance, pair):
        A, _ = pair
        assert distance(A, A) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("distance", ALL_NORM_FUNCS, ids=list(NORMS))
    def test_symmetry(self, distance, pair):
        A, B = pair
        assert distance(A, B) == pytest.approx(distance(B, A))

    @pytest.mark.parametrize("distance", ALL_NORM_FUNCS, ids=list(NORMS))
    def test_non_negative(self, distance, pair):
        A, B = pair
        assert distance(A, B) >= 0.0

    @pytest.mark.parametrize("distance", ALL_NORM_FUNCS, ids=list(NORMS))
    def test_shape_mismatch_rejected(self, distance):
        with pytest.raises(ValidationError):
            distance(np.ones((2, 2)), np.ones((3, 2)))

    @pytest.mark.parametrize("distance", ALL_NORM_FUNCS, ids=list(NORMS))
    def test_vectors_accepted(self, distance):
        assert distance([1.0, 2.0], [1.0, 2.0]) == pytest.approx(0.0, abs=1e-12)


class TestKnownValues:
    def test_l11(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]])
        B = np.zeros((2, 2))
        assert l11_distance(A, B) == 10.0

    def test_l21_sums_column_norms(self):
        A = np.array([[3.0, 0.0], [4.0, 0.0]])
        B = np.zeros((2, 2))
        assert l21_distance(A, B) == 5.0  # ||(3,4)|| + ||(0,0)||

    def test_l21_differs_from_frobenius(self):
        A = np.array([[3.0, 3.0], [4.0, 4.0]])
        B = np.zeros((2, 2))
        assert l21_distance(A, B) == pytest.approx(10.0)
        assert frobenius_distance(A, B) == pytest.approx(np.sqrt(50))

    def test_frobenius(self):
        A = np.array([[3.0], [4.0]])
        assert frobenius_distance(A, np.zeros((2, 1))) == 5.0

    def test_canberra_zero_safe(self):
        A = np.array([[0.0, 1.0]])
        B = np.array([[0.0, 3.0]])
        assert canberra_distance(A, B) == pytest.approx(0.5)

    def test_canberra_bounded_per_entry(self, rng):
        A = rng.normal(size=(5, 5))
        B = rng.normal(size=(5, 5))
        assert canberra_distance(A, B) <= A.size

    def test_chi2_known(self):
        A = np.array([[1.0]])
        B = np.array([[3.0]])
        assert chi2_distance(A, B) == pytest.approx(0.5 * 4 / 4)

    def test_correlation_perfectly_correlated(self):
        A = np.arange(6, dtype=float).reshape(3, 2)
        assert correlation_distance(A, 2 * A + 1) == pytest.approx(0.0)

    def test_correlation_anti_correlated(self):
        A = np.arange(6, dtype=float).reshape(3, 2)
        assert correlation_distance(A, -A) == pytest.approx(2.0)

    def test_correlation_constant_matrix(self):
        A = np.ones((2, 2))
        assert correlation_distance(A, A) == 0.0
        assert correlation_distance(A, np.zeros((2, 2))) == 1.0


class TestRegistry:
    def test_registry_names(self):
        assert set(NORMS) == {"L2,1", "L1,1", "Fro", "Canb", "Chi2", "Corr"}
