"""Exactness of the lower-bound pruned / early-abandoned DTW path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.similarity import RepresentationBuilder
from repro.similarity.dtw import (
    dtw_distance,
    lb_keogh,
    lb_kim,
    multivariate_dtw,
)
from repro.similarity.evaluation import (
    distance_matrix,
    knn_accuracy,
    representation_matrices,
)
from repro.similarity.measures import get_measure, measure_registry
from repro.similarity.pruning import (
    knn_accuracy_pruned,
    nearest_neighbor,
)

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def series_pairs(draw, min_len=2, max_len=12, cols=2):
    m = draw(st.integers(min_len, max_len))
    n = draw(st.integers(min_len, max_len))
    A = draw(arrays(np.float64, (m, cols), elements=finite))
    B = draw(arrays(np.float64, (n, cols), elements=finite))
    return A, B


@pytest.fixture(scope="module")
def mini_corpus(small_corpus):
    return small_corpus.filter(lambda r: r.subsample_index in (0, 1))


@pytest.fixture(scope="module")
def builder(mini_corpus):
    return RepresentationBuilder().fit(mini_corpus)


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


class TestLowerBounds:
    @given(series_pairs())
    @settings(max_examples=60, deadline=None)
    def test_lb_kim_below_dependent_dtw(self, pair):
        A, B = pair
        exact = multivariate_dtw(A, B, strategy="dependent")
        assert lb_kim(A, B) <= exact + 1e-9

    @given(series_pairs())
    @settings(max_examples=60, deadline=None)
    def test_lb_keogh_below_dependent_dtw(self, pair):
        A, B = pair
        exact = multivariate_dtw(A, B, strategy="dependent")
        assert lb_keogh(A, B) <= exact + 1e-9

    @given(series_pairs(), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_lb_keogh_windowed_below_windowed_dtw(self, pair, window):
        A, B = pair
        exact = multivariate_dtw(A, B, strategy="dependent", window=window)
        assert lb_keogh(A, B, window=window) <= exact + 1e-9


class TestEarlyAbandon:
    @given(series_pairs(), st.floats(0.0, 200.0))
    @settings(max_examples=60, deadline=None)
    def test_cutoff_preserves_exactness(self, pair, cutoff):
        A, B = pair
        exact = multivariate_dtw(A, B, strategy="dependent")
        abandoned = multivariate_dtw(
            A, B, strategy="dependent", cutoff=cutoff
        )
        if np.isfinite(abandoned):
            # A finite return value is always the exact distance.
            assert abandoned == exact
        else:
            # inf is only returned when the distance truly exceeds the
            # cutoff.
            assert exact > cutoff

    @given(
        arrays(np.float64, st.integers(2, 12), elements=finite),
        arrays(np.float64, st.integers(2, 12), elements=finite),
        st.floats(0.0, 200.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_univariate_cutoff_preserves_exactness(self, a, b, cutoff):
        exact = dtw_distance(a, b)
        abandoned = dtw_distance(a, b, cutoff=cutoff)
        if np.isfinite(abandoned):
            assert abandoned == exact
        else:
            assert exact > cutoff

    @given(series_pairs(), st.floats(0.0, 200.0))
    @settings(max_examples=40, deadline=None)
    def test_independent_cutoff_preserves_exactness(self, pair, cutoff):
        A, B = pair
        exact = multivariate_dtw(A, B, strategy="independent")
        abandoned = multivariate_dtw(
            A, B, strategy="independent", cutoff=cutoff
        )
        if np.isfinite(abandoned):
            assert abandoned == exact
        else:
            assert exact > cutoff


class TestNearestNeighborExactness:
    @given(st.lists(arrays(np.float64, (6, 2), elements=finite),
                    min_size=3, max_size=7))
    @settings(max_examples=30, deadline=None)
    def test_matches_argmin_on_random_series(self, matrices):
        measure = get_measure("Dependent-DTW")
        D = distance_matrix(matrices, measure)
        for query in range(len(matrices)):
            row = D[query].copy()
            row[query] = np.inf
            assert nearest_neighbor(matrices, query, measure) == int(
                np.argmin(row)
            )

    def test_matches_argmin_on_corpus(self, mini_corpus, builder):
        matrices = representation_matrices(mini_corpus, builder, "mts")
        for name in ("Dependent-DTW", "Independent-DTW", "L2,1"):
            measure = get_measure(name)
            D = distance_matrix(matrices, measure)
            for query in range(len(matrices)):
                row = D[query].copy()
                row[query] = np.inf
                assert nearest_neighbor(matrices, query, measure) == int(
                    np.argmin(row)
                ), name

    def test_validates_inputs(self):
        measure = get_measure("L2,1")
        with pytest.raises(ValidationError):
            nearest_neighbor([np.zeros((3, 2))], 0, measure)
        matrices = [np.zeros((3, 2)), np.ones((3, 2))]
        with pytest.raises(ValidationError):
            nearest_neighbor(matrices, 2, measure)


class TestKnnAccuracyPruned:
    def test_equals_full_matrix_accuracy(self, mini_corpus, builder):
        matrices = representation_matrices(mini_corpus, builder, "mts")
        labels = [r.workload_name for r in mini_corpus]
        for name, measure in measure_registry().items():
            full = knn_accuracy(
                distance_matrix(matrices, measure), np.asarray(labels)
            )
            pruned = knn_accuracy_pruned(matrices, labels, measure)
            assert pruned == full, name

    def test_prunes_pairs_on_dtw(self, mini_corpus, builder, metrics):
        matrices = representation_matrices(mini_corpus, builder, "mts")
        labels = [r.workload_name for r in mini_corpus]
        knn_accuracy_pruned(matrices, labels, get_measure("Dependent-DTW"))
        assert (
            metrics.counter("similarity.pairs_pruned_total").value > 0
        )

    def test_label_alignment_validated(self):
        with pytest.raises(ValidationError):
            knn_accuracy_pruned(
                [np.zeros((3, 2)), np.ones((3, 2))],
                ["a"],
                get_measure("L2,1"),
            )
