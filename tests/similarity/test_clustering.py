import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.similarity import (
    RepresentationBuilder,
    adjusted_rand_index,
    cluster_purity,
    cluster_workloads,
    distance_matrix,
)
from repro.similarity.evaluation import representation_matrices
from repro.similarity.measures import get_measure


@pytest.fixture(scope="module")
def corpus_distances(small_corpus):
    mini = small_corpus.filter(lambda r: r.subsample_index in (0, 1, 2))
    builder = RepresentationBuilder().fit(mini)
    matrices = representation_matrices(mini, builder, "hist")
    D = distance_matrix(matrices, get_measure("L2,1"))
    return mini, D


class TestClusterWorkloads:
    def test_recovers_workload_identity(self, corpus_distances):
        corpus, D = corpus_distances
        result = cluster_workloads(D, n_clusters=5)
        purity = cluster_purity(result.labels, corpus.labels())
        assert purity > 0.9

    def test_kmedoids_method(self, corpus_distances):
        corpus, D = corpus_distances
        result = cluster_workloads(D, n_clusters=5, method="kmedoids")
        assert cluster_purity(result.labels, corpus.labels()) > 0.7

    def test_coarser_clustering_merges_nearest_workloads(
        self, corpus_distances
    ):
        """With one cluster fewer than there are workloads, the merged pair
        is the pair with the smallest mean cross-workload distance."""
        from repro.similarity import pairwise_workload_distances

        corpus, D = corpus_distances
        labels = np.asarray(corpus.labels())
        names = corpus.workload_names()
        stats = pairwise_workload_distances(D, labels)
        nearest_pair = min(
            (
                (stats[(a, b)][0], a, b)
                for i, a in enumerate(names)
                for b in names[i + 1 :]
            )
        )[1:]
        result = cluster_workloads(D, n_clusters=len(names) - 1)
        merged = {
            name: set(result.labels[labels == name].tolist())
            for name in names
        }
        assert merged[nearest_pair[0]] == merged[nearest_pair[1]]

    def test_groups_accessor(self, corpus_distances):
        corpus, D = corpus_distances
        result = cluster_workloads(D, n_clusters=5)
        groups = result.groups(corpus.labels())
        assert sum(len(v) for v in groups.values()) == len(corpus)

    def test_unknown_method(self, corpus_distances):
        _, D = corpus_distances
        with pytest.raises(ValidationError):
            cluster_workloads(D, 3, method="spectral")


class TestPurityAndARI:
    def test_perfect_purity(self):
        assert cluster_purity([0, 0, 1, 1], ["a", "a", "b", "b"]) == 1.0

    def test_single_cluster_purity_is_majority(self):
        assert cluster_purity([0, 0, 0, 0], ["a", "a", "a", "b"]) == 0.75

    def test_ari_identical(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 9, 9]) == (
            pytest.approx(1.0)
        )

    def test_ari_label_permutation_invariant(self, rng):
        labels = rng.integers(0, 3, size=40)
        permuted = (labels + 1) % 3
        assert adjusted_rand_index(labels, permuted) == pytest.approx(1.0)

    def test_ari_random_near_zero(self, rng):
        a = rng.integers(0, 3, size=500)
        b = rng.integers(0, 3, size=500)
        assert abs(adjusted_rand_index(a, b)) < 0.1

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            cluster_purity([0, 1], ["a"])
