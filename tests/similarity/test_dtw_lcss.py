import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.similarity.dtw import dtw_distance, multivariate_dtw
from repro.similarity.lcss import lcss_distance, multivariate_lcss


class TestUnivariateDTW:
    def test_identical_series_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert dtw_distance(a, a) == 0.0

    def test_bounded_by_euclidean_for_equal_lengths(self, rng):
        a = rng.normal(size=20)
        b = rng.normal(size=20)
        assert dtw_distance(a, b) <= np.linalg.norm(a - b) + 1e-12

    def test_warps_shifted_series(self):
        a = np.array([0.0, 0, 1, 2, 1, 0, 0])
        b = np.array([0.0, 1, 2, 1, 0, 0, 0])  # same shape, shifted
        assert dtw_distance(a, b) < np.linalg.norm(a - b)

    def test_symmetry(self, rng):
        a = rng.normal(size=12)
        b = rng.normal(size=15)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_hand_computed_example(self):
        # a=[0, 1], b=[0, 1, 1]: perfect alignment exists.
        assert dtw_distance([0.0, 1.0], [0.0, 1.0, 1.0]) == 0.0

    def test_window_constraint_tightens(self, rng):
        a = rng.normal(size=30)
        b = rng.normal(size=30)
        unconstrained = dtw_distance(a, b)
        constrained = dtw_distance(a, b, window=2)
        assert constrained >= unconstrained - 1e-12

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            dtw_distance([], [1.0])


class TestMultivariateDTW:
    def test_dependent_equals_univariate_for_one_dim(self, rng):
        a = rng.normal(size=10)
        b = rng.normal(size=12)
        assert multivariate_dtw(
            a[:, None], b[:, None], strategy="dependent"
        ) == pytest.approx(dtw_distance(a, b))

    def test_independent_sums_dimensions(self, rng):
        A = rng.normal(size=(10, 3))
        B = rng.normal(size=(12, 3))
        expected = sum(
            dtw_distance(A[:, k], B[:, k]) for k in range(3)
        )
        assert multivariate_dtw(A, B, strategy="independent") == (
            pytest.approx(expected)
        )

    def test_strategies_differ_on_correlated_dims(self, rng):
        A = rng.normal(size=(15, 2))
        B = rng.normal(size=(15, 2))
        dep = multivariate_dtw(A, B, strategy="dependent")
        ind = multivariate_dtw(A, B, strategy="independent")
        assert dep != pytest.approx(ind)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError):
            multivariate_dtw(rng.normal(size=(5, 2)), rng.normal(size=(5, 3)))

    def test_unknown_strategy(self, rng):
        with pytest.raises(ValidationError):
            multivariate_dtw(
                rng.normal(size=(5, 2)),
                rng.normal(size=(5, 2)),
                strategy="both",
            )


class TestLCSS:
    def test_identical_zero_distance(self):
        a = np.array([1.0, 2.0, 3.0])
        assert lcss_distance(a, a, epsilon=0.01) == 0.0

    def test_disjoint_max_distance(self):
        a = np.zeros(5)
        b = np.full(5, 100.0)
        assert lcss_distance(a, b, epsilon=0.1) == 1.0

    def test_subsequence_detected(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([9.0, 1.0, 9.0, 2.0, 9.0, 3.0, 9.0, 4.0])
        assert lcss_distance(a, b, epsilon=0.01) == 0.0

    def test_epsilon_widens_matches(self):
        a = np.arange(10, dtype=float)  # spacing 1.0 rules out cross matches
        b = a + 0.05
        assert lcss_distance(a, b, epsilon=0.1) == 0.0
        assert lcss_distance(a, b, epsilon=0.01) == 1.0

    def test_distance_in_unit_interval(self, rng):
        a = rng.normal(size=10)
        b = rng.normal(size=14)
        assert 0.0 <= lcss_distance(a, b, epsilon=0.2) <= 1.0

    def test_delta_window_restricts(self):
        a = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 0.0, 0.0, 1.0])
        assert lcss_distance(a, b, epsilon=0.01, delta=1) > lcss_distance(
            a, b, epsilon=0.01
        ) - 1e-12

    def test_multivariate_dependent_requires_all_dims(self, rng):
        A = np.column_stack([np.zeros(6), np.zeros(6)])
        B = np.column_stack([np.zeros(6), np.full(6, 5.0)])
        # Dimension 2 never matches, so no dependent matches exist.
        assert multivariate_lcss(A, B, strategy="dependent", epsilon=0.1) == 1.0
        # Independent averaging still credits dimension 1.
        assert multivariate_lcss(
            A, B, strategy="independent", epsilon=0.1
        ) == pytest.approx(0.5)

    def test_multivariate_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError):
            multivariate_lcss(
                rng.normal(size=(5, 2)), rng.normal(size=(5, 3))
            )

    def test_negative_epsilon_rejected(self, rng):
        with pytest.raises(ValidationError):
            lcss_distance(rng.normal(size=5), rng.normal(size=5), epsilon=-1)

    def test_univariate_wrapper_rejects_matrices(self, rng):
        with pytest.raises(ValidationError):
            lcss_distance(rng.normal(size=(5, 2)), rng.normal(size=(5, 2)))
