import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.similarity import RepresentationBuilder
from repro.workloads.features import PLAN_FEATURES, RESOURCE_FEATURES


@pytest.fixture(scope="module")
def builder(small_corpus):
    return RepresentationBuilder().fit(small_corpus)


@pytest.fixture(scope="module")
def sample_result(small_corpus):
    return small_corpus[0]


class TestFitAndNormalization:
    def test_requires_fit(self, sample_result):
        with pytest.raises(NotFittedError):
            RepresentationBuilder().hist_fp(sample_result)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            RepresentationBuilder().fit([])

    def test_unknown_feature_rejected(self, builder, sample_result):
        with pytest.raises(ValidationError):
            builder.hist_fp(sample_result, features=["Bogus"])

    def test_subset_fit_restricts_features(self, small_corpus, sample_result):
        builder = RepresentationBuilder(("AvgRowSize",)).fit(small_corpus)
        with pytest.raises(ValidationError):
            builder.hist_fp(sample_result, features=["CachedPlanSize"])


class TestMTS:
    def test_shape_resource_features_only(self, builder, sample_result):
        matrix = builder.mts(sample_result)
        assert matrix.shape == (sample_result.n_samples, 7)

    def test_values_normalized(self, builder, sample_result):
        matrix = builder.mts(sample_result)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_plan_only_selection_rejected(self, builder, sample_result):
        with pytest.raises(ValidationError, match="resource feature"):
            builder.mts(sample_result, features=["AvgRowSize"])

    def test_mixed_selection_keeps_resource_part(self, builder, sample_result):
        matrix = builder.mts(
            sample_result, features=["AvgRowSize", "CPU_UTILIZATION"]
        )
        assert matrix.shape[1] == 1


class TestHistFP:
    def test_shape(self, builder, sample_result):
        fingerprint = builder.hist_fp(sample_result)
        assert fingerprint.shape == (10, 29)

    def test_cumulative_columns_monotone(self, builder, sample_result):
        fingerprint = builder.hist_fp(sample_result)
        diffs = np.diff(fingerprint, axis=0)
        assert np.all(diffs >= -1e-12)

    def test_cumulative_final_bin_is_one(self, builder, sample_result):
        fingerprint = builder.hist_fp(sample_result)
        np.testing.assert_allclose(fingerprint[-1], 1.0)

    def test_plain_frequency_mode(self, builder, sample_result):
        fingerprint = builder.hist_fp(sample_result, cumulative=False)
        np.testing.assert_allclose(fingerprint.sum(axis=0), 1.0)

    def test_custom_bin_count(self, small_corpus, sample_result):
        builder = RepresentationBuilder(n_bins=5).fit(small_corpus)
        assert builder.hist_fp(sample_result).shape == (5, 29)

    def test_feature_subset(self, builder, sample_result):
        fingerprint = builder.hist_fp(
            sample_result, features=["AvgRowSize", "IOPS_TOTAL"]
        )
        assert fingerprint.shape == (10, 2)

    def test_appendix_a_shape_example(self, builder, sample_result):
        """Cumulative representation distinguishes near from far shapes
        (the H1/H2/H3 example in Appendix A)."""
        h1 = np.array([1.0, 0, 0, 0, 0])
        h2 = np.array([0.0, 1, 0, 0, 0])
        h3 = np.array([0.0, 0, 0, 0, 1])
        c1, c2, c3 = np.cumsum(h1), np.cumsum(h2), np.cumsum(h3)
        near = np.abs(c1 - c2).sum()
        far = np.abs(c1 - c3).sum()
        assert near < far  # plain histograms cannot see this
        assert np.abs(h1 - h2).sum() == np.abs(h1 - h3).sum()


class TestPhaseFP:
    def test_shape(self, builder, sample_result):
        fingerprint = builder.phase_fp(sample_result)
        # 3 statistics x 4 phases rows, 29 feature columns.
        assert fingerprint.shape == (12, 29)

    def test_plan_features_single_phase(self, builder, sample_result):
        fingerprint = builder.phase_fp(sample_result)
        plan_columns = [
            29 - 22 + i for i in range(22)
        ]  # plan features follow the 7 resource ones
        # Phases beyond the first are zero-padded for plan features.
        later_phases = fingerprint[3:, :][:, plan_columns]
        np.testing.assert_allclose(later_phases, 0.0)

    def test_first_phase_statistics_populated(self, builder, sample_result):
        fingerprint = builder.phase_fp(sample_result)
        assert np.any(fingerprint[:3] != 0)

    def test_custom_statistics(self, small_corpus, sample_result):
        builder = RepresentationBuilder(
            phase_stats=("mean", "variance")
        ).fit(small_corpus)
        assert builder.phase_fp(sample_result).shape == (8, 29)

    def test_invalid_statistic(self):
        with pytest.raises(ValidationError):
            RepresentationBuilder(phase_stats=("mode",))


class TestDispatch:
    def test_build_dispatch(self, builder, sample_result):
        for name in ("mts", "hist", "phase"):
            matrix = builder.build(sample_result, name)
            assert matrix.ndim == 2

    def test_unknown_representation(self, builder, sample_result):
        with pytest.raises(ValidationError, match="representation"):
            builder.build(sample_result, "wavelet")
