import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.similarity.changepoint import bayesian_changepoints, segment_bounds


def shifted_series(rng, means, segment_length=40, noise=0.5):
    parts = [
        rng.normal(mean, noise, size=segment_length) for mean in means
    ]
    return np.concatenate(parts)


class TestBCPD:
    def test_detects_single_shift(self, rng):
        series = shifted_series(rng, [0.0, 8.0])
        changepoints = bayesian_changepoints(series)
        assert len(changepoints) >= 1
        assert any(30 <= cp <= 50 for cp in changepoints)

    def test_detects_two_shifts(self, rng):
        series = shifted_series(rng, [0.0, 10.0, -10.0])
        changepoints = bayesian_changepoints(series)
        assert len(changepoints) >= 2

    def test_stationary_series_few_changepoints(self, rng):
        series = rng.normal(0.0, 1.0, size=150)
        assert len(bayesian_changepoints(series)) <= 2

    def test_constant_series_no_changepoints(self):
        assert bayesian_changepoints(np.ones(100)) == []

    def test_short_series_no_changepoints(self, rng):
        assert bayesian_changepoints(rng.normal(size=6)) == []

    def test_min_segment_spacing(self, rng):
        series = shifted_series(rng, [0.0, 6.0, 0.0, 6.0], segment_length=30)
        changepoints = bayesian_changepoints(series, min_segment=8)
        gaps = np.diff([0, *changepoints])
        assert np.all(gaps >= 8)

    def test_scale_invariance(self, rng):
        series = shifted_series(rng, [0.0, 5.0])
        a = bayesian_changepoints(series)
        b = bayesian_changepoints(series * 1000.0)
        assert a == b

    def test_invalid_hazard(self, rng):
        with pytest.raises(ValidationError):
            bayesian_changepoints(rng.normal(size=50), hazard=1.5)

    def test_max_changepoints_cap(self, rng):
        series = shifted_series(
            rng, [0, 8, 0, 8, 0, 8, 0, 8, 0, 8], segment_length=20
        )
        changepoints = bayesian_changepoints(series, max_changepoints=3)
        assert len(changepoints) <= 3


class TestSegmentBounds:
    def test_no_changepoints_single_segment(self):
        assert segment_bounds(10, []) == [(0, 10)]

    def test_segments_partition_range(self):
        bounds = segment_bounds(100, [30, 60])
        assert bounds == [(0, 30), (30, 60), (60, 100)]

    def test_duplicate_changepoints_collapsed(self):
        assert segment_bounds(10, [5, 5]) == [(0, 5), (5, 10)]

    def test_invalid_length(self):
        with pytest.raises(ValidationError):
            segment_bounds(0, [])
