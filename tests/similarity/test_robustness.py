import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.similarity import (
    RepresentationBuilder,
    perturb_experiment,
    robustness_under_noise,
)
from repro.similarity.measures import get_measure


@pytest.fixture(scope="module")
def mini_corpus(small_corpus):
    return small_corpus.filter(lambda r: r.subsample_index in (0, 1))


class TestPerturbExperiment:
    def test_noise_changes_values(self, tpcc_run):
        perturbed = perturb_experiment(
            tpcc_run, noise_sigma=0.1, random_state=0
        )
        assert not np.array_equal(
            perturbed.resource_series, tpcc_run.resource_series
        )
        assert perturbed.resource_series.shape == tpcc_run.resource_series.shape

    def test_outliers_spike_samples(self, tpcc_run):
        perturbed = perturb_experiment(
            tpcc_run, outlier_fraction=0.1, random_state=0
        )
        ratio = perturbed.resource_series / np.maximum(
            tpcc_run.resource_series, 1e-12
        )
        assert np.isclose(ratio, 10.0).any()

    def test_missing_drops_rows(self, tpcc_run):
        perturbed = perturb_experiment(
            tpcc_run, missing_fraction=0.3, random_state=0
        )
        expected = round(tpcc_run.n_samples * 0.7)
        assert perturbed.n_samples == expected

    def test_zero_perturbation_is_identity(self, tpcc_run):
        perturbed = perturb_experiment(tpcc_run, random_state=0)
        np.testing.assert_array_equal(
            perturbed.resource_series, tpcc_run.resource_series
        )

    def test_metadata_records_settings(self, tpcc_run):
        perturbed = perturb_experiment(
            tpcc_run, noise_sigma=0.2, random_state=0
        )
        assert perturbed.metadata["perturbed"]["noise_sigma"] == 0.2

    def test_invalid_fractions(self, tpcc_run):
        with pytest.raises(ValidationError):
            perturb_experiment(tpcc_run, noise_sigma=-1.0)
        with pytest.raises(ValidationError):
            perturb_experiment(tpcc_run, missing_fraction=1.0)


class TestRobustnessUnderNoise:
    @pytest.mark.parametrize("perturbation", ["noise", "outliers", "missing"])
    def test_profile_structure(self, mini_corpus, perturbation):
        builder = RepresentationBuilder().fit(mini_corpus)
        profile = robustness_under_noise(
            mini_corpus, builder, "hist", get_measure("L2,1"),
            noise_levels=(0.05, 0.3), perturbation=perturbation,
        )
        assert profile.clean_accuracy > 0.9
        assert set(profile.accuracy_by_level) == {0.05, 0.3}
        assert profile.degradation() >= -1e-9

    def test_hist_fp_resists_moderate_noise(self, mini_corpus):
        """Insight 3's robustness claim for the recommended combination."""
        builder = RepresentationBuilder().fit(mini_corpus)
        profile = robustness_under_noise(
            mini_corpus, builder, "hist", get_measure("L2,1"),
            noise_levels=(0.1,),
        )
        assert profile.accuracy_by_level[0.1] > 0.8

    def test_unknown_perturbation(self, mini_corpus):
        builder = RepresentationBuilder().fit(mini_corpus)
        with pytest.raises(ValidationError):
            robustness_under_noise(
                mini_corpus, builder, "hist", get_measure("L2,1"),
                perturbation="drift",
            )
