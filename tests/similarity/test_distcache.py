"""The content-addressed pairwise-distance cache."""

import json

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.similarity.distcache import (
    DistanceCache,
    as_distance_cache,
    matrix_digest,
    pair_key,
)


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


class TestKeys:
    def test_digest_is_content_addressed(self):
        a = np.arange(12.0).reshape(4, 3)
        assert matrix_digest(a) == matrix_digest(a.copy())
        assert matrix_digest(a) == matrix_digest(np.asfortranarray(a))
        assert matrix_digest(a) != matrix_digest(a + 1.0)

    def test_digest_separates_shapes(self):
        a = np.arange(12.0)
        assert matrix_digest(a.reshape(4, 3)) != matrix_digest(
            a.reshape(3, 4)
        )

    def test_pair_key_is_symmetric(self):
        da = matrix_digest(np.ones((2, 2)))
        db = matrix_digest(np.zeros((2, 2)))
        assert pair_key(da, db, "L2,1") == pair_key(db, da, "L2,1")

    def test_pair_key_depends_on_measure(self):
        da = matrix_digest(np.ones((2, 2)))
        db = matrix_digest(np.zeros((2, 2)))
        assert pair_key(da, db, "L2,1") != pair_key(da, db, "Dependent-DTW")


class TestRoundTrip:
    def test_put_get_persists_across_instances(self, tmp_path, metrics):
        cache = DistanceCache(tmp_path)
        cache.put("k1", 1.5)
        assert cache.get("k1") == 1.5
        reopened = DistanceCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get("k1") == 1.5

    def test_miss_returns_none_and_counts(self, tmp_path, metrics):
        cache = DistanceCache(tmp_path)
        assert cache.get("absent") is None
        assert metrics.counter("distance_cache.misses_total").value == 1
        cache.put("k", 2.0)
        cache.get("k")
        assert metrics.counter("distance_cache.hits_total").value == 1

    def test_non_finite_values_never_persisted(self, tmp_path, metrics):
        cache = DistanceCache(tmp_path)
        cache.put("inf", np.inf)
        cache.put("nan", np.nan)
        assert len(cache) == 0
        assert cache.get("inf") is None

    def test_clear_removes_disk_state(self, tmp_path, metrics):
        cache = DistanceCache(tmp_path)
        cache.put("k", 3.0)
        cache.clear()
        assert len(cache) == 0
        assert not cache.path.exists()
        assert DistanceCache(tmp_path).get("k") is None


class TestCorruptTolerance:
    def test_torn_tail_is_skipped(self, tmp_path, metrics):
        cache = DistanceCache(tmp_path)
        cache.put("good", 1.0)
        with cache.path.open("a") as handle:
            handle.write('{"key": "torn", "val')  # no newline, no close
        reopened = DistanceCache(tmp_path)
        assert reopened.get("good") == 1.0
        assert reopened.get("torn") is None

    def test_append_heals_torn_tail(self, tmp_path, metrics):
        cache = DistanceCache(tmp_path)
        cache.put("good", 1.0)
        with cache.path.open("a") as handle:
            handle.write('{"key": "torn"')
        reopened = DistanceCache(tmp_path)
        reopened.put("after", 2.0)
        final = DistanceCache(tmp_path)
        assert final.get("good") == 1.0
        assert final.get("after") == 2.0

    def test_garbage_entries_counted_not_fatal(self, tmp_path, metrics):
        path = tmp_path / "distances.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps({"key": "bool", "value": True}) + "\n"
            + json.dumps({"key": "string", "value": "x"}) + "\n"
            + json.dumps({"key": "ok", "value": 4.0}) + "\n"
            + json.dumps({"no_key": 1}) + "\n"
        )
        cache = DistanceCache(tmp_path)
        assert len(cache) == 1
        assert cache.get("ok") == 4.0
        assert metrics.counter("distance_cache.corrupt_total").value == 4


class TestNormalization:
    def test_as_distance_cache_accepts_paths_and_none(self, tmp_path):
        assert as_distance_cache(None) is None
        cache = as_distance_cache(str(tmp_path))
        assert isinstance(cache, DistanceCache)
        assert as_distance_cache(cache) is cache

    def test_as_distance_cache_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_distance_cache(42)
