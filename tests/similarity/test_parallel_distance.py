"""Determinism and caching of the parallel pairwise-distance engine."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.similarity import DistanceCache, RepresentationBuilder
from repro.similarity.evaluation import (
    distance_matrix,
    representation_matrices,
)
from repro.similarity.measures import get_measure, measure_registry
from repro.similarity.robustness import (
    robustness_profiles,
    robustness_under_noise,
)


@pytest.fixture(scope="module")
def mini_corpus(small_corpus):
    return small_corpus.filter(lambda r: r.subsample_index in (0, 1))


@pytest.fixture(scope="module")
def builder(mini_corpus):
    return RepresentationBuilder().fit(mini_corpus)


@pytest.fixture(scope="module")
def mts_matrices(mini_corpus, builder):
    return representation_matrices(mini_corpus, builder, "mts")


@pytest.fixture(scope="module")
def hist_matrices(mini_corpus, builder):
    return representation_matrices(mini_corpus, builder, "hist")


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _pairs_computed(registry):
    return int(registry.counter("similarity.pairs_computed").value)


class TestBitIdenticalParallelism:
    @pytest.mark.parametrize(
        "measure_name", ["L2,1", "Dependent-DTW", "Independent-LCSS"]
    )
    def test_serial_jobs1_jobs4_identical(self, mts_matrices, measure_name):
        measure = get_measure(measure_name)
        serial = distance_matrix(mts_matrices, measure)
        one = distance_matrix(mts_matrices, measure, jobs=1)
        four = distance_matrix(mts_matrices, measure, jobs=4)
        assert np.array_equal(serial, one)
        assert np.array_equal(serial, four)

    def test_jobs0_matches_serial(self, hist_matrices):
        measure = get_measure("L2,1")
        assert np.array_equal(
            distance_matrix(hist_matrices, measure),
            distance_matrix(hist_matrices, measure, jobs=0),
        )

    def test_unequal_lengths_still_identical(self):
        rng = np.random.default_rng(5)
        matrices = [
            rng.normal(size=(rng.integers(6, 14), 3)) for _ in range(9)
        ]
        measure = get_measure("Dependent-DTW")
        assert np.array_equal(
            distance_matrix(matrices, measure),
            distance_matrix(matrices, measure, jobs=4),
        )

    def test_all_registered_measures_parallel_identical(self, mts_matrices):
        subset = mts_matrices[:6]
        for name, measure in measure_registry().items():
            serial = distance_matrix(subset, measure)
            parallel = distance_matrix(subset, measure, jobs=2)
            assert np.array_equal(serial, parallel), name


class TestDistanceCacheIntegration:
    def test_warm_cache_recomputes_zero_pairs(
        self, hist_matrices, tmp_path, metrics
    ):
        measure = get_measure("L2,1")
        cold = distance_matrix(
            hist_matrices, measure, cache=DistanceCache(tmp_path)
        )
        computed_cold = _pairs_computed(metrics)
        n = len(hist_matrices)
        assert computed_cold == n * (n - 1) // 2
        warm = distance_matrix(
            hist_matrices, measure, cache=DistanceCache(tmp_path)
        )
        assert _pairs_computed(metrics) == computed_cold
        assert np.array_equal(cold, warm)
        assert (
            int(metrics.counter("distance_cache.hits_total").value)
            == n * (n - 1) // 2
        )

    def test_cached_matrix_matches_uncached(self, mts_matrices, tmp_path):
        measure = get_measure("Dependent-DTW")
        plain = distance_matrix(mts_matrices, measure)
        cached = distance_matrix(mts_matrices, measure, cache=str(tmp_path))
        assert np.array_equal(plain, cached)

    def test_partial_overlap_computes_only_new_pairs(
        self, hist_matrices, tmp_path, metrics
    ):
        measure = get_measure("L2,1")
        cache = DistanceCache(tmp_path)
        base = hist_matrices[:5]
        distance_matrix(base, measure, cache=cache)
        computed_before = _pairs_computed(metrics)
        extended = base + [hist_matrices[5]]
        distance_matrix(extended, measure, cache=cache)
        # Only the 5 pairs touching the new matrix are computed.
        assert _pairs_computed(metrics) - computed_before == 5

    def test_corrupt_cache_is_a_miss_not_an_error(
        self, hist_matrices, tmp_path, metrics
    ):
        measure = get_measure("L2,1")
        plain = distance_matrix(hist_matrices, measure)
        (tmp_path / "distances.jsonl").write_text("garbage\n{torn")
        recovered = distance_matrix(
            hist_matrices, measure, cache=str(tmp_path)
        )
        assert np.array_equal(plain, recovered)


class TestRobustnessSweepCaching:
    def test_repeated_sweep_recomputes_zero_pairs(
        self, mini_corpus, builder, tmp_path, metrics
    ):
        measure = get_measure("L2,1")
        first = robustness_under_noise(
            mini_corpus, builder, "hist", measure,
            noise_levels=(0.1,), random_state=3, cache=str(tmp_path),
        )
        computed_first = _pairs_computed(metrics)
        assert computed_first > 0
        second = robustness_under_noise(
            mini_corpus, builder, "hist", measure,
            noise_levels=(0.1,), random_state=3, cache=str(tmp_path),
        )
        # Same seed => identical clean and perturbed matrices => the warm
        # sweep recomputes nothing at all.
        assert _pairs_computed(metrics) == computed_first
        assert first == second

    def test_profiles_match_standalone_sweeps(self, mini_corpus, builder):
        measure = get_measure("L2,1")
        profiles = robustness_profiles(
            mini_corpus, builder, "hist", measure,
            noise_levels=(0.1,), random_state=3,
            perturbations=("noise", "missing"),
        )
        for kind in ("noise", "missing"):
            standalone = robustness_under_noise(
                mini_corpus, builder, "hist", measure,
                noise_levels=(0.1,), random_state=3, perturbation=kind,
            )
            assert profiles[kind] == standalone

    def test_profiles_build_clean_distances_once(
        self, mini_corpus, builder, metrics
    ):
        measure = get_measure("L2,1")
        n = len(mini_corpus)
        clean_pairs = n * (n - 1) // 2
        robustness_profiles(
            mini_corpus, builder, "hist", measure,
            noise_levels=(0.1,), random_state=3,
            perturbations=("noise", "outliers", "missing"),
        )
        # 1 clean matrix + 3 kinds x 1 level, not 3 clean rebuilds.
        assert _pairs_computed(metrics) == 4 * clean_pairs


class TestEngineObservability:
    def test_pair_seconds_histogram_populated(self, hist_matrices, metrics):
        distance_matrix(hist_matrices, get_measure("L2,1"))
        histogram = metrics.histogram("similarity.pair_seconds")
        n = len(hist_matrices)
        assert histogram.count == n * (n - 1) // 2
