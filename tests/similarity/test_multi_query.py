"""Bit-identity of the batched multi-query kernel to the serial path.

``multi_query_cross_distances`` stitches every query's pairs into one
chunked fan-out; these tests pin that the stitching changes nothing:
each query's block equals ``cross_distance_matrix`` for that query
alone, bit for bit, across batch sizes {1, 3, 8} and worker counts
{1, 4} — the determinism contract the serving batch scheduler relies
on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.similarity.distcache import DistanceCache, matrix_digest
from repro.similarity.evaluation import (
    cross_distance_matrix,
    multi_query_cross_distances,
)
from repro.similarity.measures import get_measure

BATCH_SIZES = (1, 3, 8)
JOB_COUNTS = (1, 4)


@pytest.fixture(scope="module")
def cols():
    rng = np.random.default_rng(7)
    return [rng.normal(size=(12, 3)) for _ in range(6)]


@pytest.fixture(scope="module")
def query_pool():
    """Queries with varying lengths and set sizes (unequal shapes hit
    the truncation path of norm measures and the per-pair DTW path)."""
    rng = np.random.default_rng(11)
    return [
        [
            rng.normal(size=(int(rng.integers(8, 14)), 3))
            for _ in range(int(rng.integers(1, 4)))
        ]
        for _ in range(8)
    ]


class TestBitIdentity:
    @pytest.mark.parametrize("measure_name", ["Dependent-DTW", "L2,1", "Canb"])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_equals_serial_cross_distance(
        self, cols, query_pool, measure_name, batch, jobs
    ):
        measure = get_measure(measure_name)
        queries = query_pool[:batch]
        blocks = multi_query_cross_distances(
            queries, cols, measure, jobs=jobs
        )
        assert len(blocks) == len(queries)
        for query, block in zip(queries, blocks):
            serial = cross_distance_matrix(query, cols, measure)
            assert np.array_equal(block, serial)

    def test_jobs_invariant(self, cols, query_pool):
        measure = get_measure("Dependent-DTW")
        serial = multi_query_cross_distances(
            query_pool, cols, measure, jobs=1
        )
        parallel = multi_query_cross_distances(
            query_pool, cols, measure, jobs=4
        )
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)


class TestCacheInterplay:
    def test_warm_cache_returns_identical_blocks(
        self, cols, query_pool, tmp_path
    ):
        measure = get_measure("L2,1")
        cache = DistanceCache(tmp_path / "dist")
        queries = query_pool[:3]
        cold = multi_query_cross_distances(
            queries, cols, measure, cache=cache
        )
        warm = multi_query_cross_distances(
            queries, cols, measure, cache=cache
        )
        for a, b in zip(cold, warm):
            assert np.array_equal(a, b)

    def test_cache_shared_with_serial_path(self, cols, query_pool, tmp_path):
        measure = get_measure("L2,1")
        cache = DistanceCache(tmp_path / "dist")
        queries = query_pool[:2]
        # Serial path populates; batched path must read the same keys.
        for query in queries:
            cross_distance_matrix(query, cols, measure, cache=cache)
        blocks = multi_query_cross_distances(
            queries, cols, measure, cache=cache
        )
        for query, block in zip(queries, blocks):
            assert np.array_equal(
                block, cross_distance_matrix(query, cols, measure)
            )

    def test_precomputed_col_digests_match(self, cols, query_pool, tmp_path):
        measure = get_measure("L2,1")
        digests = [matrix_digest(M) for M in cols]
        cache_a = DistanceCache(tmp_path / "a")
        cache_b = DistanceCache(tmp_path / "b")
        queries = query_pool[:2]
        with_digests = multi_query_cross_distances(
            queries, cols, measure, cache=cache_a, col_digests=digests
        )
        without = multi_query_cross_distances(
            queries, cols, measure, cache=cache_b
        )
        for a, b in zip(with_digests, without):
            assert np.array_equal(a, b)


class TestValidation:
    def test_rejects_empty_inputs(self, cols):
        measure = get_measure("L2,1")
        with pytest.raises(ValidationError):
            multi_query_cross_distances([], cols, measure)
        with pytest.raises(ValidationError):
            multi_query_cross_distances([[]], cols, measure)
        with pytest.raises(ValidationError):
            multi_query_cross_distances([[np.zeros((3, 2))]], [], measure)

    def test_rejects_misaligned_col_digests(self, cols):
        measure = get_measure("L2,1")
        with pytest.raises(ValidationError):
            multi_query_cross_distances(
                [[np.zeros((3, 3))]], cols, measure, col_digests=["x"]
            )
