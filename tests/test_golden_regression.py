"""Golden-regression suite: the engine must keep producing paper numbers.

The JSON fixtures under ``tests/golden/`` pin summaries of seeded runs
(feature vectors, throughput, NRMSE of a mini prediction pipeline).  A
failure here means an engine change shifted the numbers every figure and
table is derived from — either fix the regression, or regenerate the
fixtures (``PYTHONPATH=src python tests/golden/regenerate.py``) and
justify the shift in review.

Float comparisons allow 1e-12 absolute/relative tolerance (JSON round
trips are exact; the slack only covers libm differences across
platforms); strings and integers must match exactly.
"""

from __future__ import annotations

import json
import math

import pytest

from tests.golden.builders import BUILDERS, GOLDEN_DIR

ATOL = 1e-12
RTOL = 1e-12


def assert_matches(actual, expected, path="$"):
    """Recursively compare a produced summary against its golden copy."""
    assert type(actual) is type(expected) or (
        isinstance(actual, (int, float)) and isinstance(expected, (int, float))
    ), f"{path}: type {type(actual).__name__} != {type(expected).__name__}"
    if isinstance(expected, dict):
        assert actual.keys() == expected.keys(), f"{path}: key mismatch"
        for key in expected:
            assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(actual) == len(expected), f"{path}: length mismatch"
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, bool) or not isinstance(expected, (int, float)):
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"
    else:
        assert math.isclose(
            actual, expected, rel_tol=RTOL, abs_tol=ATOL
        ), f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_golden(name):
    golden_path = GOLDEN_DIR / name
    assert golden_path.exists(), (
        f"missing golden fixture {name}; run tests/golden/regenerate.py"
    )
    expected = json.loads(golden_path.read_text())
    actual = BUILDERS[name]()
    assert_matches(actual, expected)


def test_golden_files_have_no_strays():
    """Every committed golden file is covered by a builder."""
    committed = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert committed == set(BUILDERS)
