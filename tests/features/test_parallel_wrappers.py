"""Bit-identity and fit-cache behaviour of the wrapper fast path."""

import numpy as np
import pytest

from repro.features import (
    RecursiveFeatureElimination,
    SequentialFeatureSelector,
)
from repro.ml.fitexec import FitCache
from repro.obs.metrics import MetricsRegistry, set_metrics


@pytest.fixture(scope="module")
def selection_data():
    rng = np.random.default_rng(11)
    n = 40
    labels = np.array(["a", "b"] * (n // 2))
    codes = (labels == "b").astype(float)
    X = rng.normal(size=(n, 6))
    X[:, 0] += 3.0 * codes  # informative
    X[:, 3] += 1.5 * codes  # weakly informative
    return X, labels


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


class TestParallelSFS:
    @pytest.mark.parametrize("estimator", ["linear", "logreg"])
    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_bit_identical_at_any_worker_count(
        self, selection_data, estimator, direction
    ):
        X, y = selection_data
        rankings = [
            SequentialFeatureSelector(
                estimator, direction=direction, jobs=jobs
            ).fit(X, y).ranking_
            for jobs in (None, 1, 4)
        ]
        assert np.array_equal(rankings[0], rankings[1])
        assert np.array_equal(rankings[0], rankings[2])

    def test_warm_cache_fits_nothing(
        self, selection_data, tmp_path, metrics
    ):
        X, y = selection_data
        cache = FitCache(tmp_path)
        cold = SequentialFeatureSelector(
            "linear", fit_cache=cache
        ).fit(X, y)
        assert metrics.counter("ml.fits_total").value > 0
        set_metrics(warm_registry := MetricsRegistry())
        try:
            warm = SequentialFeatureSelector(
                "linear", fit_cache=FitCache(tmp_path)
            ).fit(X, y)
        finally:
            set_metrics(metrics)
        assert warm_registry.counter("ml.fits_total").value == 0
        assert warm_registry.counter("fit_cache.hits_total").value > 0
        assert np.array_equal(cold.ranking_, warm.ranking_)

    def test_cache_matches_uncached(self, selection_data, tmp_path, metrics):
        X, y = selection_data
        plain = SequentialFeatureSelector("logreg").fit(X, y)
        cached = SequentialFeatureSelector(
            "logreg", fit_cache=FitCache(tmp_path)
        ).fit(X, y)
        assert np.array_equal(plain.ranking_, cached.ranking_)


class TestRFEFitCache:
    def test_warm_cache_fits_nothing(
        self, selection_data, tmp_path, metrics
    ):
        X, y = selection_data
        cold = RecursiveFeatureElimination(
            "logreg", fit_cache=FitCache(tmp_path)
        ).fit(X, y)
        set_metrics(warm_registry := MetricsRegistry())
        try:
            warm = RecursiveFeatureElimination(
                "logreg", fit_cache=FitCache(tmp_path)
            ).fit(X, y)
        finally:
            set_metrics(metrics)
        assert warm_registry.counter("ml.fits_total").value == 0
        assert np.array_equal(cold.ranking_, warm.ranking_)

    def test_cache_matches_uncached(self, selection_data, tmp_path, metrics):
        X, y = selection_data
        plain = RecursiveFeatureElimination("dectree").fit(X, y)
        cached = RecursiveFeatureElimination(
            "dectree", fit_cache=FitCache(tmp_path)
        ).fit(X, y)
        assert np.array_equal(plain.ranking_, cached.ranking_)
