import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import (
    FANOVASelector,
    consensus_stability_curve,
    jaccard_similarity,
    rank_features_per_run,
    selection_stability,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert jaccard_similarity([1, 2, 3], [2, 3, 4]) == 0.5

    def test_empty_sets(self):
        assert jaccard_similarity([], []) == 1.0


class TestSelectionStability:
    def test_identical_rankings_perfectly_stable(self):
        ranking = np.arange(1, 11)
        assert selection_stability([ranking, ranking, ranking], k=3) == 1.0

    def test_reversed_rankings_unstable_at_small_k(self):
        forward = np.arange(1, 11)
        backward = forward[::-1]
        assert selection_stability([forward, backward], k=3) == 0.0

    def test_full_k_always_stable(self):
        a = np.random.default_rng(0).permutation(8) + 1
        b = np.random.default_rng(1).permutation(8) + 1
        assert selection_stability([a, b], k=8) == 1.0

    def test_needs_two_rankings(self):
        with pytest.raises(ValidationError):
            selection_stability([np.arange(1, 5)], k=2)

    def test_k_bounds(self):
        with pytest.raises(ValidationError):
            selection_stability([np.arange(1, 5), np.arange(1, 5)], k=9)


class TestConsensusCurve:
    def test_stability_grows_with_pool_size(self, small_corpus):
        """The paper's observation: more runs -> more stable selections."""
        rankings = rank_features_per_run(small_corpus, FANOVASelector)
        # Duplicate with jitter to have more than three rankings.
        rng = np.random.default_rng(0)
        jittered = []
        for ranking in rankings * 2:
            noise_order = np.argsort(
                np.asarray(ranking) + rng.normal(0, 2.0, len(ranking))
            )
            jittery = np.empty(len(ranking), dtype=int)
            jittery[noise_order] = np.arange(1, len(ranking) + 1)
            jittered.append(jittery)
        curve = consensus_stability_curve(jittered, k=7, random_state=0)
        sizes = sorted(curve)
        assert curve[sizes[-1]] >= curve[sizes[0]] - 0.05

    def test_curve_keys(self):
        rankings = [np.arange(1, 6), np.arange(1, 6)[::-1], np.arange(1, 6)]
        curve = consensus_stability_curve(rankings, k=2, n_resamples=5)
        assert sorted(curve) == [1, 2, 3]

    def test_values_in_unit_interval(self):
        rankings = [np.arange(1, 6), np.arange(1, 6)[::-1]]
        curve = consensus_stability_curve(rankings, k=2, n_resamples=8)
        assert all(0.0 <= v <= 1.0 for v in curve.values())
