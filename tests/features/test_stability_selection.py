"""Bootstrap stability selection and its fast-path knobs."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import (
    StabilityReport,
    bootstrap_rankings,
    selection_stability,
    stability_selection,
)
from repro.ml.fitexec import FitCache
from repro.obs.metrics import MetricsRegistry, set_metrics


@pytest.fixture(scope="module")
def stability_data():
    rng = np.random.default_rng(23)
    n = 60
    labels = np.array(["a", "b", "c"] * (n // 3))
    codes = np.array([ord(l) - ord("a") for l in labels], dtype=float)
    X = rng.normal(size=(n, 5))
    X[:, 1] += 2.0 * codes
    return X, labels


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


class TestBootstrapRankings:
    def test_deterministic(self, stability_data):
        X, y = stability_data
        a = bootstrap_rankings(X, y, "Pearson", random_state=3)
        b = bootstrap_rankings(X, y, "Pearson", random_state=3)
        assert all(np.array_equal(r1, r2) for r1, r2 in zip(a, b))

    def test_bit_identical_at_any_worker_count(self, stability_data):
        X, y = stability_data
        serial = bootstrap_rankings(X, y, "Pearson", random_state=0)
        jobs1 = bootstrap_rankings(X, y, "Pearson", random_state=0, jobs=1)
        jobs4 = bootstrap_rankings(X, y, "Pearson", random_state=0, jobs=4)
        for r_serial, r_1, r_4 in zip(serial, jobs1, jobs4):
            assert np.array_equal(r_serial, r_1)
            assert np.array_equal(r_serial, r_4)

    def test_warm_cache_fits_nothing(self, stability_data, tmp_path, metrics):
        X, y = stability_data
        cold = bootstrap_rankings(
            X, y, "Pearson", random_state=0, fit_cache=FitCache(tmp_path)
        )
        assert metrics.counter("ml.fits_total").value > 0
        set_metrics(warm_registry := MetricsRegistry())
        try:
            warm = bootstrap_rankings(
                X, y, "Pearson", random_state=0,
                fit_cache=FitCache(tmp_path),
            )
        finally:
            set_metrics(metrics)
        assert warm_registry.counter("ml.fits_total").value == 0
        for r_cold, r_warm in zip(cold, warm):
            assert np.array_equal(r_cold, r_warm)

    def test_rankings_are_valid(self, stability_data):
        X, y = stability_data
        for ranking in bootstrap_rankings(X, y, "Pearson", n_repetitions=4):
            assert sorted(ranking.tolist()) == list(range(1, X.shape[1] + 1))

    def test_validation(self, stability_data):
        X, y = stability_data
        with pytest.raises(ValidationError, match="repetitions"):
            bootstrap_rankings(X, y, n_repetitions=1)
        with pytest.raises(ValidationError, match="sample_fraction"):
            bootstrap_rankings(X, y, sample_fraction=0.0)
        with pytest.raises(ValidationError, match="aligned"):
            bootstrap_rankings(X[:-1], y)


class TestStabilitySelection:
    def test_report_shape(self, stability_data):
        X, y = stability_data
        report = stability_selection(
            X, y, "Pearson", k=2, n_repetitions=5, random_state=1
        )
        assert isinstance(report, StabilityReport)
        assert report.strategy == "Pearson"
        assert report.k == 2
        assert report.n_repetitions == 5
        assert len(report.rankings) == 5
        assert 0.0 <= report.stability <= 1.0

    def test_stability_matches_manual_computation(self, stability_data):
        X, y = stability_data
        report = stability_selection(X, y, "Pearson", k=2, random_state=4)
        manual = selection_stability(list(report.rankings), 2)
        assert report.stability == manual

    def test_informative_feature_is_stable(self, stability_data):
        X, y = stability_data
        report = stability_selection(X, y, "Pearson", k=1, random_state=0)
        # Feature 1 carries the class signal; every resample should rank
        # it first, making the top-1 selection perfectly stable.
        assert report.stability == 1.0

    def test_invalid_k(self, stability_data):
        X, y = stability_data
        with pytest.raises(ValidationError, match="k must be"):
            stability_selection(X, y, k=99)
