import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import RecursiveFeatureElimination, SequentialFeatureSelector


@pytest.fixture
def wrapped_data(rng):
    y = np.repeat(["a", "b"], 50)
    signal = np.where(y == "a", 0.0, 4.0) + rng.normal(0, 0.4, 100)
    helper = np.where(y == "a", 0.0, 1.0) + rng.normal(0, 0.8, 100)
    noise = rng.normal(size=(100, 2))
    return np.column_stack([noise[:, 0], signal, noise[:, 1], helper]), y


class TestRFE:
    @pytest.mark.parametrize("estimator", ["linear", "dectree", "logreg"])
    def test_ranking_is_permutation(self, wrapped_data, estimator):
        X, y = wrapped_data
        rfe = RecursiveFeatureElimination(estimator).fit(X, y)
        assert sorted(rfe.ranking()) == [1, 2, 3, 4]

    @pytest.mark.parametrize("estimator", ["linear", "logreg"])
    def test_signal_feature_ranked_first(self, wrapped_data, estimator):
        X, y = wrapped_data
        rfe = RecursiveFeatureElimination(estimator).fit(X, y)
        assert rfe.top_k(1)[0] == 1

    def test_step_greater_than_one(self, wrapped_data):
        X, y = wrapped_data
        rfe = RecursiveFeatureElimination("logreg", step=2).fit(X, y)
        assert sorted(rfe.ranking()) == [1, 2, 3, 4]

    def test_unknown_estimator(self):
        with pytest.raises(ValidationError):
            RecursiveFeatureElimination("svm")

    def test_invalid_step(self):
        with pytest.raises(ValidationError):
            RecursiveFeatureElimination("logreg", step=0)

    def test_name_attribute(self):
        assert RecursiveFeatureElimination("logreg").name == "RFE logreg"

    def test_rank_based_output(self, wrapped_data):
        X, y = wrapped_data
        rfe = RecursiveFeatureElimination("logreg").fit(X, y)
        assert not rfe.is_score_based


class TestSFS:
    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_ranking_is_permutation(self, wrapped_data, direction):
        X, y = wrapped_data
        sfs = SequentialFeatureSelector(
            "logreg", direction=direction
        ).fit(X, y)
        assert sorted(sfs.ranking()) == [1, 2, 3, 4]

    def test_forward_finds_signal_first(self, wrapped_data):
        X, y = wrapped_data
        sfs = SequentialFeatureSelector("logreg", direction="forward").fit(X, y)
        assert sfs.top_k(1)[0] == 1

    def test_backward_keeps_signal_longest(self, wrapped_data):
        X, y = wrapped_data
        sfs = SequentialFeatureSelector("dectree", direction="backward").fit(
            X, y
        )
        assert 1 in sfs.top_k(2)

    def test_linear_estimator_regresses_encoded_labels(self, wrapped_data):
        X, y = wrapped_data
        sfs = SequentialFeatureSelector("linear", direction="forward").fit(X, y)
        assert sorted(sfs.ranking()) == [1, 2, 3, 4]

    def test_invalid_direction(self):
        with pytest.raises(ValidationError):
            SequentialFeatureSelector("logreg", direction="sideways")

    def test_invalid_cv(self):
        with pytest.raises(ValidationError):
            SequentialFeatureSelector("logreg", cv=1)

    def test_name_encodes_direction(self):
        assert (
            SequentialFeatureSelector("linear", direction="backward").name
            == "Bw SFS linear"
        )

    def test_wrappers_much_slower_than_filters(self, wrapped_data):
        """The Table 3 cost story: wrappers cost orders of magnitude more."""
        import time

        from repro.features import FANOVASelector

        X, y = wrapped_data
        start = time.perf_counter()
        FANOVASelector().fit(X, y)
        filter_time = time.perf_counter() - start
        start = time.perf_counter()
        SequentialFeatureSelector("logreg", direction="forward").fit(X, y)
        wrapper_time = time.perf_counter() - start
        assert wrapper_time > 10 * filter_time
