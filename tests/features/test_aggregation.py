import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import (
    BaselineSelector,
    FANOVASelector,
    aggregate_rankings,
    rank_features_per_run,
    top_k_features,
)


class TestBaselineSelector:
    def test_registry_order(self, rng):
        X = rng.normal(size=(10, 5))
        selector = BaselineSelector().fit(X)
        np.testing.assert_array_equal(selector.ranking(), [1, 2, 3, 4, 5])

    def test_top_k_is_prefix(self, rng):
        X = rng.normal(size=(10, 5))
        selector = BaselineSelector().fit(X)
        np.testing.assert_array_equal(selector.top_k(3), [0, 1, 2])


class TestAggregateRankings:
    def test_single_ranking_identity(self):
        consensus = aggregate_rankings([[2, 1, 3]])
        np.testing.assert_array_equal(consensus, [2, 1, 3])

    def test_mean_rank_aggregation(self):
        consensus = aggregate_rankings([[1, 2, 3], [3, 2, 1]])
        # Ties on mean rank 2 everywhere -> index order.
        np.testing.assert_array_equal(consensus, [1, 2, 3])

    def test_majority_wins(self):
        consensus = aggregate_rankings([[1, 2, 3], [1, 2, 3], [3, 1, 2]])
        assert consensus[0] == 1

    def test_permutation_output(self, rng):
        rankings = [rng.permutation(8) + 1 for _ in range(5)]
        consensus = aggregate_rankings(rankings)
        assert sorted(consensus) == list(range(1, 9))

    def test_order_of_rankings_irrelevant(self, rng):
        rankings = [list(rng.permutation(6) + 1) for _ in range(4)]
        a = aggregate_rankings(rankings)
        b = aggregate_rankings(list(reversed(rankings)))
        np.testing.assert_array_equal(a, b)

    def test_zero_based_rank_rejected(self):
        with pytest.raises(ValidationError, match="1-based"):
            aggregate_rankings([[0, 1, 2]])

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            aggregate_rankings([])


class TestTopKFeatures:
    def test_selects_lowest_aggregate_rank(self):
        top = top_k_features([[1, 3, 2], [1, 3, 2]], k=2)
        np.testing.assert_array_equal(top, [0, 2])

    def test_k_bounds(self):
        with pytest.raises(ValidationError):
            top_k_features([[1, 2, 3]], k=0)
        with pytest.raises(ValidationError):
            top_k_features([[1, 2, 3]], k=4)


class TestPerRunRankings:
    def test_one_ranking_per_run(self, small_corpus):
        rankings = rank_features_per_run(small_corpus, FANOVASelector)
        assert len(rankings) == 3  # three repetitions in the corpus
        for ranking in rankings:
            assert sorted(ranking) == list(range(1, 30))

    def test_aggregation_stabilizes_selection(self, small_corpus):
        rankings = rank_features_per_run(small_corpus, FANOVASelector)
        consensus_top = set(top_k_features(rankings, k=7))
        # The consensus should overlap heavily with each run's own top-7.
        for ranking in rankings:
            run_top = set(np.argsort(ranking, kind="stable")[:7])
            assert len(consensus_top & run_top) >= 4
