import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import (
    classify_accuracy_curve,
    knn_feature_subset_accuracy,
    strategy_registry,
)
from repro.similarity import RepresentationBuilder
from repro.workloads.features import ALL_FEATURES, feature_index


class TestKnnAccuracy:
    def test_good_feature_subset_high_accuracy(self, small_corpus):
        indices = [
            feature_index("AvgRowSize"),
            feature_index("TableCardinality"),
            feature_index("CachedPlanSize"),
            feature_index("READ_WRITE_RATIO"),
            feature_index("IOPS_TOTAL"),
            feature_index("MEM_UTILIZATION"),
            feature_index("EstimateIO"),
        ]
        accuracy = knn_feature_subset_accuracy(small_corpus, indices)
        assert accuracy > 0.9

    def test_junk_feature_low_accuracy(self, small_corpus):
        accuracy = knn_feature_subset_accuracy(
            small_corpus, [feature_index("LOCK_WAIT_ABS")]
        )
        # One environment-driven channel cannot identify workloads.
        assert accuracy < 0.7

    def test_prefit_builder_reused(self, small_corpus):
        builder = RepresentationBuilder().fit(small_corpus)
        a = knn_feature_subset_accuracy(
            small_corpus, [10, 11], builder=builder
        )
        b = knn_feature_subset_accuracy(small_corpus, [10, 11])
        assert a == pytest.approx(b)

    def test_empty_subset_rejected(self, small_corpus):
        with pytest.raises(ValidationError):
            knn_feature_subset_accuracy(small_corpus, [])

    def test_out_of_range_index(self, small_corpus):
        with pytest.raises(ValidationError):
            knn_feature_subset_accuracy(small_corpus, [99])


class TestStrategyRegistry:
    def test_full_registry_matches_table3(self):
        names = set(strategy_registry())
        assert names == {
            "Variance",
            "fANOVA",
            "MIGain",
            "Pearson",
            "Lasso",
            "Elastic Net",
            "RandomForest",
            "RFE Linear",
            "RFE DecTree",
            "RFE LogReg",
            "Fw SFS Linear",
            "Fw SFS DecTree",
            "Fw SFS LogReg",
            "Bw SFS Linear",
            "Bw SFS DecTree",
            "Bw SFS LogReg",
            "Baseline",
        }

    def test_fast_only_excludes_sfs(self):
        names = set(strategy_registry(fast_only=True))
        assert not any(name.startswith(("Fw", "Bw")) for name in names)
        assert "Baseline" in names

    def test_factories_produce_fresh_selectors(self):
        registry = strategy_registry(fast_only=True)
        a = registry["fANOVA"]()
        b = registry["fANOVA"]()
        assert a is not b


class TestAccuracyCurves:
    def test_increasing(self):
        assert classify_accuracy_curve([0.5, 0.7, 0.9, 0.95]) == "increasing"

    def test_flat_counts_as_increasing(self):
        assert classify_accuracy_curve([0.9, 0.9, 0.9]) == "increasing"

    def test_peaking(self):
        assert classify_accuracy_curve([0.5, 0.9, 0.99, 0.8]) == "peaking"

    def test_inconclusive(self):
        assert classify_accuracy_curve([0.9, 0.3, 0.8, 0.4]) == "inconclusive"

    def test_tolerance_absorbs_jitter(self):
        curve = [0.90, 0.905, 0.9, 0.91]
        assert classify_accuracy_curve(curve, tolerance=0.01) == "increasing"

    def test_needs_three_points(self):
        with pytest.raises(ValidationError):
            classify_accuracy_curve([0.5, 0.6])
