import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import PCA, TruncatedSVD


class TestPCA:
    def test_components_orthonormal(self, rng):
        X = rng.normal(size=(60, 5))
        pca = PCA(3).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_explained_variance_ratio_sums_below_one(self, rng):
        X = rng.normal(size=(60, 5))
        pca = PCA(2).fit(X)
        assert 0 < pca.explained_variance_ratio_.sum() <= 1.0

    def test_full_rank_reconstruction(self, rng):
        X = rng.normal(size=(30, 4))
        pca = PCA(4).fit(X)
        restored = pca.inverse_transform(pca.transform(X))
        np.testing.assert_allclose(restored, X, atol=1e-10)

    def test_first_component_captures_dominant_direction(self, rng):
        direction = np.array([1.0, 0.0, 0.0])
        X = rng.normal(size=(200, 1)) * 10 * direction + rng.normal(
            0, 0.1, size=(200, 3)
        )
        pca = PCA(1).fit(X)
        assert abs(pca.components_[0, 0]) > 0.99

    def test_transform_centers_data(self, rng):
        X = rng.normal(5.0, 1.0, size=(50, 3))
        transformed = PCA(2).fit_transform(X)
        np.testing.assert_allclose(transformed.mean(axis=0), 0, atol=1e-10)

    def test_too_many_components(self, rng):
        with pytest.raises(ValidationError, match="n_components"):
            PCA(10).fit(rng.normal(size=(5, 3)))

    def test_invalid_component_count(self):
        with pytest.raises(ValidationError):
            PCA(0)

    def test_variance_ordering(self, rng):
        X = rng.normal(size=(100, 4)) * np.array([10.0, 3.0, 1.0, 0.1])
        pca = PCA(4).fit(X)
        variances = pca.explained_variance_
        assert list(variances) == sorted(variances, reverse=True)


class TestTruncatedSVD:
    def test_transform_shape(self, rng):
        X = rng.normal(size=(40, 6))
        assert TruncatedSVD(2).fit_transform(X).shape == (40, 2)

    def test_singular_values_descending(self, rng):
        X = rng.normal(size=(40, 6))
        svd = TruncatedSVD(4).fit(X)
        values = svd.singular_values_
        assert list(values) == sorted(values, reverse=True)

    def test_matches_numpy_svd(self, rng):
        X = rng.normal(size=(20, 5))
        svd = TruncatedSVD(3).fit(X)
        _, s, _ = np.linalg.svd(X, full_matrices=False)
        np.testing.assert_allclose(svd.singular_values_, s[:3], atol=1e-10)

    def test_component_bound(self, rng):
        with pytest.raises(ValidationError):
            TruncatedSVD(7).fit(rng.normal(size=(4, 6)))
