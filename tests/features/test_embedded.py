import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import (
    ElasticNetSelector,
    LassoSelector,
    RandomForestSelector,
    one_vs_rest_lasso_path,
)
from repro.features.embedded import lasso_path_top_features


@pytest.fixture
def class_data(rng):
    y = np.repeat(["a", "b", "c"], 50)
    f_a = np.where(y == "a", 3.0, 0.0) + rng.normal(0, 0.3, 150)
    f_b = np.where(y == "b", 3.0, 0.0) + rng.normal(0, 0.3, 150)
    noise1 = rng.normal(size=150)
    noise2 = rng.normal(size=150)
    return np.column_stack([noise1, f_a, noise2, f_b]), y


class TestLassoSelector:
    def test_informative_features_on_top(self, class_data):
        X, y = class_data
        selector = LassoSelector(alpha=0.01).fit(X, y)
        assert set(selector.top_k(2)) == {1, 3}

    def test_class_coefs_shape(self, class_data):
        X, y = class_data
        selector = LassoSelector(alpha=0.01).fit(X, y)
        assert selector.class_coefs_.shape == (3, 4)

    def test_strong_alpha_zeroes_noise(self, class_data):
        X, y = class_data
        selector = LassoSelector(alpha=0.1).fit(X, y)
        assert selector.scores_[0] == 0.0
        assert selector.scores_[2] == 0.0

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValidationError):
            LassoSelector(alpha=-0.1)


class TestElasticNetSelector:
    def test_informative_features_on_top(self, class_data):
        X, y = class_data
        selector = ElasticNetSelector(alpha=0.01).fit(X, y)
        assert set(selector.top_k(2)) == {1, 3}

    def test_keeps_correlated_groups(self, rng):
        y = np.repeat(["a", "b"], 60)
        base = np.where(y == "a", 0.0, 2.0) + rng.normal(0, 0.1, 120)
        twin = base + rng.normal(0, 0.01, 120)
        X = np.column_stack([base, twin, rng.normal(size=120)])
        selector = ElasticNetSelector(alpha=0.05, l1_ratio=0.3).fit(X, y)
        # Both correlated copies should retain non-zero importance.
        assert selector.scores_[0] > 0 and selector.scores_[1] > 0


class TestRandomForestSelector:
    def test_informative_features_on_top(self, class_data):
        X, y = class_data
        selector = RandomForestSelector(50, random_state=0).fit(X, y)
        assert set(selector.top_k(2)) == {1, 3}

    def test_importances_normalized(self, class_data):
        X, y = class_data
        selector = RandomForestSelector(30, random_state=0).fit(X, y)
        assert selector.scores_.sum() == pytest.approx(1.0)

    def test_deterministic(self, class_data):
        X, y = class_data
        a = RandomForestSelector(20, random_state=1).fit(X, y).ranking()
        b = RandomForestSelector(20, random_state=1).fit(X, y).ranking()
        np.testing.assert_array_equal(a, b)


class TestLassoPathHelpers:
    def test_one_vs_rest_path_shapes(self, class_data):
        X, y = class_data
        alphas, coefs = one_vs_rest_lasso_path(X, y, "a", n_alphas=20)
        assert alphas.shape == (20,)
        assert coefs.shape == (20, 4)

    def test_path_identifies_class_feature(self, class_data):
        X, y = class_data
        _, coefs = one_vs_rest_lasso_path(X, y, "a", n_alphas=25)
        top = lasso_path_top_features(None, coefs, k=1)
        assert top[0] == 1  # f_a identifies class "a"

    def test_unknown_class_rejected(self, class_data):
        X, y = class_data
        with pytest.raises(ValidationError, match="positive_class"):
            one_vs_rest_lasso_path(X, y, "zebra")

    def test_top_features_ordering(self, class_data):
        X, y = class_data
        _, coefs = one_vs_rest_lasso_path(X, y, "b", n_alphas=25)
        top = lasso_path_top_features(None, coefs, k=4)
        assert top[0] == 3
        assert len(top) == 4

    def test_top_features_k_capped(self, class_data):
        X, y = class_data
        _, coefs = one_vs_rest_lasso_path(X, y, "a", n_alphas=10)
        assert len(lasso_path_top_features(None, coefs, k=100)) == 4

    def test_bad_coefs_shape(self):
        with pytest.raises(ValidationError):
            lasso_path_top_features(None, np.zeros(5), k=2)
