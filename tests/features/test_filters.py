import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.features import (
    FANOVASelector,
    MutualInfoGainSelector,
    PearsonCorrelationSelector,
    VarianceThresholdSelector,
)


@pytest.fixture
def labeled_data(rng):
    """Three features: strong signal, weak signal, pure noise."""
    y = np.repeat(["a", "b"], 60)
    strong = np.where(y == "a", 0.0, 10.0) + rng.normal(0, 0.5, 120)
    weak = np.where(y == "a", 0.0, 1.0) + rng.normal(0, 1.0, 120)
    noise = rng.normal(size=120)
    return np.column_stack([noise, weak, strong]), y


class TestVarianceThreshold:
    def test_ranks_by_normalized_variance(self, rng):
        # Column 0: bimodal at the extremes (max variance after min-max);
        # column 1: concentrated.
        bimodal = np.concatenate([np.zeros(50), np.ones(50)])
        narrow = rng.normal(0.5, 0.01, size=100)
        X = np.column_stack([narrow, bimodal])
        selector = VarianceThresholdSelector().fit(X)
        assert selector.top_k(1)[0] == 1

    def test_support_mask(self, rng):
        X = np.column_stack([np.full(20, 3.0), rng.normal(size=20)])
        selector = VarianceThresholdSelector(threshold=0.0).fit(X)
        assert not selector.support_[0]  # constant feature excluded
        assert selector.support_[1]

    def test_unsupervised_ignores_y(self, rng):
        X = rng.normal(size=(30, 3))
        a = VarianceThresholdSelector().fit(X).ranking()
        b = VarianceThresholdSelector().fit(X, y=None).ranking()
        np.testing.assert_array_equal(a, b)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            VarianceThresholdSelector(threshold=-0.1)


class TestPearson:
    def test_signal_ranked_first(self, labeled_data):
        X, y = labeled_data
        selector = PearsonCorrelationSelector().fit(X, y)
        assert selector.top_k(1)[0] == 2

    def test_scores_in_unit_interval(self, labeled_data):
        X, y = labeled_data
        selector = PearsonCorrelationSelector().fit(X, y)
        assert np.all(selector.scores_ >= 0)
        assert np.all(selector.scores_ <= 1.0 + 1e-9)

    def test_multiclass_one_vs_rest(self, rng):
        y = np.repeat(["a", "b", "c"], 40)
        # Feature separates only class "c" from the others.
        feature = np.where(y == "c", 5.0, 0.0) + rng.normal(0, 0.1, 120)
        X = np.column_stack([feature, rng.normal(size=120)])
        selector = PearsonCorrelationSelector().fit(X, y)
        assert selector.top_k(1)[0] == 0


class TestFANOVA:
    def test_signal_ranked_first(self, labeled_data):
        X, y = labeled_data
        assert FANOVASelector().fit(X, y).top_k(1)[0] == 2

    def test_score_ordering_matches_signal_strength(self, labeled_data):
        X, y = labeled_data
        scores = FANOVASelector().fit(X, y).scores_
        assert scores[2] > scores[1] > scores[0]


class TestMutualInfoGain:
    def test_signal_ranked_first(self, labeled_data):
        X, y = labeled_data
        assert MutualInfoGainSelector().fit(X, y).top_k(1)[0] == 2

    def test_scores_non_negative(self, labeled_data):
        X, y = labeled_data
        assert np.all(MutualInfoGainSelector().fit(X, y).scores_ >= 0)

    def test_bin_count_validated(self):
        with pytest.raises(ValidationError):
            MutualInfoGainSelector(n_bins=1)


class TestSelectorProtocol:
    def test_ranking_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            PearsonCorrelationSelector().ranking()

    def test_single_class_rejected(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError, match="two target classes"):
            FANOVASelector().fit(X, np.zeros(10))

    def test_top_k_bounds(self, labeled_data):
        X, y = labeled_data
        selector = FANOVASelector().fit(X, y)
        with pytest.raises(ValidationError):
            selector.top_k(0)
        with pytest.raises(ValidationError):
            selector.top_k(4)

    def test_top_k_ordered_by_importance(self, labeled_data):
        X, y = labeled_data
        selector = FANOVASelector().fit(X, y)
        top = selector.top_k(3)
        scores = selector.scores_[top]
        assert list(scores) == sorted(scores, reverse=True)

    def test_is_score_based_flag(self, labeled_data):
        X, y = labeled_data
        assert FANOVASelector().fit(X, y).is_score_based
