import numpy as np
import pytest

from repro.exceptions import RepositoryError
from repro.workloads import ExperimentRepository, SKU
from repro.workloads.sampling import systematic_subexperiments


class TestCollection:
    def test_len_and_iteration(self, small_corpus):
        assert len(small_corpus) == 330
        assert len(list(small_corpus)) == 330

    def test_by_workload(self, small_corpus):
        tpcc_only = small_corpus.by_workload("tpcc")
        assert len(tpcc_only) == 90
        assert all(r.workload_name == "tpcc" for r in tpcc_only)

    def test_by_terminals(self, small_corpus):
        subset = small_corpus.by_terminals(32)
        assert all(r.terminals == 32 for r in subset)
        assert len(subset) == 90  # tpcc + twitter + ycsb at 32 terminals

    def test_by_sku(self, small_corpus):
        sku = SKU(cpus=16, memory_gb=32.0)
        assert len(small_corpus.by_sku(sku)) == 330

    def test_workload_names_order(self, small_corpus):
        assert small_corpus.workload_names() == [
            "tpcc",
            "tpch",
            "tpcds",
            "twitter",
            "ycsb",
        ]

    def test_feature_matrix_shape(self, small_corpus):
        assert small_corpus.feature_matrix().shape == (330, 29)

    def test_labels_align_with_matrix(self, small_corpus):
        labels = small_corpus.labels()
        assert len(labels) == 330
        assert labels[0] == small_corpus[0].workload_name

    def test_empty_feature_matrix_raises(self):
        with pytest.raises(RepositoryError):
            ExperimentRepository().feature_matrix()

    def test_throughputs(self, small_corpus):
        values = small_corpus.throughputs()
        assert values.shape == (330,)
        assert np.all(values > 0)

    def test_filter_composition(self, small_corpus):
        subset = small_corpus.by_workload("twitter").by_terminals(8)
        assert len(subset) == 30


class TestPersistence:
    def test_round_trip(self, tpcc_run, tmp_path):
        subs = systematic_subexperiments(tpcc_run)[:3]
        repo = ExperimentRepository(subs)
        path = tmp_path / "corpus.json"
        repo.save(path)
        loaded = ExperimentRepository.load(path)
        assert len(loaded) == 3
        original, restored = repo[0], loaded[0]
        assert restored.experiment_id == original.experiment_id
        np.testing.assert_allclose(
            restored.resource_series, original.resource_series
        )
        np.testing.assert_allclose(restored.plan_matrix, original.plan_matrix)
        assert restored.sku == original.sku
        assert restored.per_txn_latency_ms == original.per_txn_latency_ms

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(RepositoryError, match="cannot read"):
            ExperimentRepository.load(tmp_path / "missing.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(RepositoryError, match="not valid JSON"):
            ExperimentRepository.load(path)

    def test_load_wrong_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"something": 1}')
        with pytest.raises(RepositoryError, match="not an experiment"):
            ExperimentRepository.load(path)

    def test_malformed_experiment_payload(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"experiments": [{"workload_name": "x"}]}')
        with pytest.raises(RepositoryError, match="malformed"):
            ExperimentRepository.load(path)


class TestCorpusBuilders:
    def test_paper_corpus_composition(self, small_corpus):
        from collections import Counter

        counts = Counter(small_corpus.labels())
        assert counts == {
            "tpcc": 90,
            "twitter": 90,
            "ycsb": 90,
            "tpch": 30,
            "tpcds": 30,
        }

    def test_scaling_repo_grid(self, scaling_repo):
        skus = {s.cpus for s in scaling_repo.skus()}
        assert skus == {2, 4, 8, 16}
        # tpcc/twitter at 3 concurrency levels, tpch serial: (3+3+1) runs
        # x 4 SKUs x 3 repetitions.
        assert len(scaling_repo) == 7 * 4 * 3

    def test_production_corpus_contains_pw(self):
        from repro.workloads import production_corpus

        corpus = production_corpus(duration_s=600.0, n_subexperiments=2)
        assert "pw" in corpus.workload_names()
        assert corpus.by_workload("pw")[0].sku.cpus == 80
