"""Property-based round-trip tests for repository persistence formats.

Hypothesis drives :class:`ExperimentResult` values through the JSON
repository format, the npz repository archive, and the corpus cache's
npz-entry format, asserting exact (bit-level) equality after the round
trip — including awkward inputs: unicode transaction names, set and
unset ``subsample_index``, and extreme-but-finite floats.  Non-finite
values must be rejected by every format before touching disk.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import RepositoryError
from repro.workloads import SKU, ExperimentRepository, results_equal
from repro.workloads.cache import CorpusCache
from repro.workloads.repository import ensure_finite, repositories_equal
from repro.workloads.runner import ExperimentResult, clone_with

#: Finite doubles that survive JSON's repr round-trip exactly.
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e12, max_value=1e12,
)
positive_floats = st.floats(min_value=1e-6, max_value=1e9)
#: Transaction names: arbitrary unicode (no surrogates — not encodable).
txn_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=1, max_size=12,
)


@st.composite
def experiment_results(draw):
    n_samples = draw(st.integers(1, 6))
    n_plan_rows = draw(st.integers(1, 4))
    n_plan_cols = draw(st.integers(1, 5))
    names = draw(
        st.lists(txn_names, min_size=n_plan_rows, max_size=n_plan_rows,
                 unique=True)
    )
    resource = draw(
        st.lists(
            st.lists(finite_floats, min_size=3, max_size=3),
            min_size=n_samples, max_size=n_samples,
        )
    )
    plan = draw(
        st.lists(
            st.lists(finite_floats, min_size=n_plan_cols,
                     max_size=n_plan_cols),
            min_size=n_plan_rows, max_size=n_plan_rows,
        )
    )
    throughput_series = draw(
        st.lists(positive_floats, min_size=n_samples, max_size=n_samples)
    )
    return ExperimentResult(
        workload_name=draw(txn_names),
        workload_type=draw(
            st.sampled_from(["transactional", "analytical", "mixed"])
        ),
        sku=SKU(
            cpus=draw(st.integers(1, 128)),
            memory_gb=draw(st.floats(min_value=1.0, max_value=4096.0)),
        ),
        terminals=draw(st.integers(1, 64)),
        run_index=draw(st.integers(0, 5)),
        data_group=draw(st.integers(0, 5)),
        sample_interval_s=draw(st.floats(min_value=0.1, max_value=60.0)),
        resource_series=np.asarray(resource, dtype=float),
        throughput_series=np.asarray(throughput_series, dtype=float),
        plan_matrix=np.asarray(plan, dtype=float),
        plan_txn_names=list(names),
        throughput=draw(positive_floats),
        latency_ms=draw(positive_floats),
        per_txn_latency_ms={n: draw(positive_floats) for n in names},
        per_txn_weights={n: draw(positive_floats) for n in names},
        bottleneck=draw(st.sampled_from(["cpu", "io", "concurrency"])),
        subsample_index=draw(st.one_of(st.none(), st.integers(0, 9))),
        metadata={"seed": draw(st.integers(0, 2**62)), "note": "property"},
    )


common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestRepositoryRoundTrip:
    @given(results=st.lists(experiment_results(), max_size=3))
    @common_settings
    def test_json_roundtrip_exact(self, results, tmp_path):
        path = tmp_path / "repo.json"
        repo = ExperimentRepository(results)
        repo.save(path)
        assert repositories_equal(repo, ExperimentRepository.load(path))

    @given(results=st.lists(experiment_results(), min_size=1, max_size=3))
    @common_settings
    def test_npz_roundtrip_exact(self, results, tmp_path):
        path = tmp_path / "repo.npz"
        repo = ExperimentRepository(results)
        repo.save_npz(path)
        assert repositories_equal(repo, ExperimentRepository.load_npz(path))

    @given(results=st.lists(experiment_results(), min_size=1, max_size=3))
    @common_settings
    def test_cross_format_equality(self, results, tmp_path):
        """JSON-loaded and npz-loaded repositories compare equal."""
        repo = ExperimentRepository(results)
        repo.save(tmp_path / "repo.json")
        repo.save_npz(tmp_path / "repo.npz")
        assert repositories_equal(
            ExperimentRepository.load(tmp_path / "repo.json"),
            ExperimentRepository.load_npz(tmp_path / "repo.npz"),
        )

    def test_empty_repository_roundtrips(self, tmp_path):
        repo = ExperimentRepository()
        repo.save(tmp_path / "empty.json")
        repo.save_npz(tmp_path / "empty.npz")
        assert len(ExperimentRepository.load(tmp_path / "empty.json")) == 0
        assert len(ExperimentRepository.load_npz(tmp_path / "empty.npz")) == 0

    @given(result=experiment_results())
    @common_settings
    def test_cache_entry_roundtrip_exact(self, result, tmp_path):
        cache = CorpusCache(tmp_path / "cache")
        cache.put("k" * 64, result)
        assert results_equal(result, cache.get("k" * 64))

    @given(result=experiment_results())
    @common_settings
    def test_subsample_index_preserved(self, result, tmp_path):
        path = tmp_path / "repo.npz"
        ExperimentRepository([result]).save_npz(path)
        loaded = ExperimentRepository.load_npz(path)[0]
        assert loaded.subsample_index == result.subsample_index


class TestNonFiniteGuard:
    @pytest.fixture
    def result(self):
        return ExperimentResult(
            workload_name="tpcc",
            workload_type="transactional",
            sku=SKU(cpus=4, memory_gb=32.0),
            terminals=2,
            run_index=0,
            data_group=0,
            sample_interval_s=10.0,
            resource_series=np.ones((4, 3)),
            throughput_series=np.full(4, 100.0),
            plan_matrix=np.ones((2, 3)),
            plan_txn_names=["NewOrder", "Payment"],
            throughput=100.0,
            latency_ms=20.0,
            per_txn_latency_ms={"NewOrder": 25.0, "Payment": 15.0},
            per_txn_weights={"NewOrder": 0.6, "Payment": 0.4},
            bottleneck="cpu",
        )

    def corrupt(self, result, field, value):
        if field in ("resource_series", "throughput_series", "plan_matrix"):
            array = getattr(result, field).copy()
            array.flat[0] = value
            return clone_with(result, **{field: array})
        return clone_with(result, **{field: value})

    @pytest.mark.parametrize(
        "field",
        ["resource_series", "throughput_series", "plan_matrix",
         "throughput", "latency_ms"],
    )
    @pytest.mark.parametrize("value", [np.nan, np.inf, -np.inf])
    def test_every_format_rejects(self, result, field, value, tmp_path):
        bad = self.corrupt(result, field, value)
        with pytest.raises(RepositoryError, match="non-finite"):
            ensure_finite(bad)
        repo = ExperimentRepository([bad])
        with pytest.raises(RepositoryError, match="non-finite"):
            repo.save(tmp_path / "r.json")
        with pytest.raises(RepositoryError, match="non-finite"):
            repo.save_npz(tmp_path / "r.npz")
        with pytest.raises(RepositoryError, match="non-finite"):
            CorpusCache(tmp_path / "cache").put("k" * 64, bad)

    def test_non_finite_per_txn_latency_rejected(self, result):
        bad = clone_with(
            result,
            per_txn_latency_ms={**result.per_txn_latency_ms, "x": np.nan},
        )
        with pytest.raises(RepositoryError, match="non-finite"):
            ensure_finite(bad)

    def test_finite_result_passes(self, result):
        ensure_finite(result)
