"""Property-based tests (hypothesis) for the workload synthesizer.

Three contracts over the whole sampled spec space, not just the
hand-picked examples:

- every spec the sampler draws passes :class:`WorkloadSpec` validation
  and is well-formed (normalized weights, read-only consistency);
- spec serialization round-trips exactly, including through JSON text;
- sampling is index-keyed: any batch size, partitioning, or ``jobs``
  value yields bit-identical specs for a fixed seed.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    WorkloadSpec,
    sample_spec,
    sample_specs,
    workload_by_name,
)
from repro.workloads.catalog import WORKLOAD_NAMES

INDICES = st.integers(min_value=0, max_value=10_000)
SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


class TestSampledSpecsAreValid:
    @given(INDICES, SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_sampled_spec_validates(self, index, seed):
        """Construction re-runs ``__post_init__`` validation; reaching the
        assertions below means every drawn field was in range."""
        spec = sample_spec(index, seed=seed)
        assert spec.name == f"synth-{seed}-{index:05d}"
        assert spec.n_transaction_types >= 2
        assert abs(float(spec.weights.sum()) - 1.0) < 1e-9
        for txn in spec.transactions:
            assert txn.read_only == (txn.logical_writes == 0.0)

    @given(INDICES, SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_read_only_mix_has_no_write_knobs(self, index, seed):
        """Checkpoint bursts and contention require writers."""
        spec = sample_spec(index, seed=seed)
        if all(t.read_only for t in spec.transactions):
            assert spec.contention_factor == 0.0
            assert spec.checkpoint_intensity == 0.0


class TestSerializationRoundTrip:
    @given(INDICES, SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_sampled_spec_round_trips_exactly(self, index, seed):
        spec = sample_spec(index, seed=seed)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    @given(INDICES, SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_round_trip_survives_json_text(self, index, seed):
        """repr round-tripping makes the JSON hop bit-exact for floats."""
        spec = sample_spec(index, seed=seed)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert WorkloadSpec.from_dict(payload) == spec

    @given(st.sampled_from(WORKLOAD_NAMES))
    @settings(max_examples=6, deadline=None)
    def test_catalog_specs_round_trip_exactly(self, name):
        spec = workload_by_name(name)
        assert WorkloadSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec


class TestSamplingDeterminism:
    @given(st.integers(min_value=1, max_value=12), SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_per_index_draws(self, n, seed):
        batch = sample_specs(n, seed=seed)
        assert batch == [sample_spec(i, seed=seed) for i in range(n)]

    @given(st.integers(min_value=1, max_value=12), SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_prefix_stability(self, n, seed):
        """Growing the batch never rewrites earlier specs."""
        assert sample_specs(n, seed=seed) == sample_specs(
            n + 3, seed=seed
        )[:n]

    @given(
        st.integers(min_value=1, max_value=8),
        SEEDS,
        st.sampled_from([None, 1, 2, 4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_jobs_invariance(self, n, seed, jobs):
        """Bit-identical output at any ``jobs=`` value."""
        assert sample_specs(n, seed=seed, jobs=jobs) == sample_specs(
            n, seed=seed
        )

    @given(st.integers(min_value=0, max_value=100), SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_distinct_seeds_decorrelate(self, index, seed):
        assert sample_spec(index, seed=seed) != sample_spec(
            index, seed=seed + 1
        )
