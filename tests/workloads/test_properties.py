"""Property-based tests (hypothesis) for workload-substrate invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import SKU, workload_by_name
from repro.workloads.engine import ExecutionEngine, amdahl_speedup
from repro.workloads.engine.bufferpool import BufferPoolModel
from repro.workloads.engine.lockmanager import LockManagerModel
from repro.workloads.sampling import augmented_throughputs, systematic_subexperiments

WORKLOAD_NAMES = st.sampled_from(["tpcc", "twitter", "ycsb", "tpch"])


class TestEngineMonotonicity:
    @given(
        WORKLOAD_NAMES,
        st.integers(1, 5),
        st.integers(1, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_throughput_never_decreases_with_cpus(
        self, name, cpu_exponent, terminals
    ):
        workload = workload_by_name(name)
        engine = ExecutionEngine(workload)
        low = engine.steady_state(
            SKU(cpus=2**cpu_exponent, memory_gb=32.0), terminals, noisy=False
        ).throughput
        high = engine.steady_state(
            SKU(cpus=2 ** (cpu_exponent + 1), memory_gb=32.0),
            terminals,
            noisy=False,
        ).throughput
        assert high >= low - 1e-9

    @given(WORKLOAD_NAMES, st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_throughput_never_decreases_with_memory(self, name, step):
        workload = workload_by_name(name)
        engine = ExecutionEngine(workload)
        low = engine.steady_state(
            SKU(cpus=8, memory_gb=8.0 * step), 8, noisy=False
        ).throughput
        high = engine.steady_state(
            SKU(cpus=8, memory_gb=8.0 * (step + 1)), 8, noisy=False
        ).throughput
        assert high >= low - 1e-9

    @given(WORKLOAD_NAMES, st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_sublinear_scaling(self, name, cpus):
        """Doubling CPUs never more than doubles throughput."""
        workload = workload_by_name(name)
        engine = ExecutionEngine(workload)
        base = engine.steady_state(
            SKU(cpus=cpus, memory_gb=32.0), 32, noisy=False
        ).throughput
        doubled = engine.steady_state(
            SKU(cpus=2 * cpus, memory_gb=32.0), 32, noisy=False
        ).throughput
        assert doubled <= 2 * base + 1e-6


class TestComponentModels:
    @given(st.integers(1, 128), st.floats(0.0, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_amdahl_bounds(self, cpus, parallel_fraction):
        speedup = amdahl_speedup(cpus, parallel_fraction)
        assert 1.0 - 1e-12 <= speedup <= cpus + 1e-9

    @given(WORKLOAD_NAMES, st.floats(4.0, 256.0))
    @settings(max_examples=40, deadline=None)
    def test_miss_ratio_in_unit_interval(self, name, memory_gb):
        model = BufferPoolModel(
            workload_by_name(name), SKU(cpus=4, memory_gb=memory_gb)
        )
        assert 0.0 <= model.miss_ratio() <= 1.0

    @given(WORKLOAD_NAMES, st.integers(1, 256))
    @settings(max_examples=40, deadline=None)
    def test_conflict_probability_bounds(self, name, terminals):
        model = LockManagerModel(workload_by_name(name))
        probability = model.conflict_probability(terminals)
        assert 0.0 <= probability <= 0.85
        assert model.wait_inflation(terminals) >= 1.0


class TestSamplingProperties:
    @given(st.integers(2, 12))
    @settings(max_examples=10, deadline=None)
    def test_subexperiments_partition_samples(self, tpcc_run, n_subexperiments):
        subs = systematic_subexperiments(
            tpcc_run, n_subexperiments=n_subexperiments
        )
        total = sum(s.n_samples for s in subs)
        assert total == tpcc_run.n_samples
        reassembled = np.sort(
            np.concatenate([s.throughput_series for s in subs])
        )
        np.testing.assert_allclose(
            reassembled, np.sort(tpcc_run.throughput_series)
        )

    @given(st.integers(0, 10**6), st.floats(0.05, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_augmented_values_within_series_range(
        self, tpcc_run, seed, fraction
    ):
        values = augmented_throughputs(
            tpcc_run, fraction=fraction, random_state=seed
        )
        assert values.min() >= tpcc_run.throughput_series.min() - 1e-9
        assert values.max() <= tpcc_run.throughput_series.max() + 1e-9
