"""Tests of the simulated DBMS engine components."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads.catalog import tpcc, tpch, twitter, ycsb
from repro.workloads.engine.bufferpool import BufferPoolModel
from repro.workloads.engine.cpu import CPUModel, amdahl_speedup
from repro.workloads.engine.execution import ExecutionEngine
from repro.workloads.engine.lockmanager import LockManagerModel
from repro.workloads.engine.roofline import hardware_ceilings, saturation_cpus
from repro.workloads.sku import SKU


def sku(cpus=8, memory_gb=32.0):
    return SKU(cpus=cpus, memory_gb=memory_gb)


class TestAmdahl:
    def test_single_cpu_no_speedup(self):
        assert amdahl_speedup(1, 0.9) == pytest.approx(1.0)

    def test_fully_serial_never_speeds_up(self):
        assert amdahl_speedup(16, 0.0) == pytest.approx(1.0)

    def test_known_value(self):
        # p=0.5, 2 cpus: 1 / (0.5 + 0.25) = 4/3.
        assert amdahl_speedup(2, 0.5) == pytest.approx(4 / 3)

    def test_monotone_in_cpus(self):
        speedups = [amdahl_speedup(c, 0.9) for c in (1, 2, 4, 8, 16)]
        assert speedups == sorted(speedups)
        assert speedups[-1] < 16  # strictly sub-linear

    def test_bounded_by_serial_fraction(self):
        assert amdahl_speedup(10**6, 0.9) < 1 / (1 - 0.9) + 1e-6

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            amdahl_speedup(0, 0.5)
        with pytest.raises(ValidationError):
            amdahl_speedup(4, 1.0)


class TestCPUModel:
    def test_throughput_bound_monotone_in_cpus(self):
        model = CPUModel(tpcc())
        bounds = [model.throughput_bound(sku(c), 32) for c in (2, 4, 8, 16)]
        assert bounds == sorted(bounds)

    def test_terminal_cap_reduces_speedup(self):
        model = CPUModel(tpcc())
        few = model.speedup(sku(16), 2)
        many = model.speedup(sku(16), 32)
        assert few < many

    def test_single_terminal_analytical_uses_cores(self):
        model = CPUModel(tpch())
        assert model.speedup(sku(16), 1) > 4.0

    def test_invalid_terminals(self):
        with pytest.raises(ValidationError):
            CPUModel(tpcc()).speedup(sku(), 0)


class TestBufferPool:
    def test_fitting_working_set_no_misses(self):
        model = BufferPoolModel(tpcc(), sku(memory_gb=64.0))
        assert model.miss_ratio() == 0.0

    def test_oversized_working_set_misses(self):
        model = BufferPoolModel(ycsb(), sku(memory_gb=32.0))
        assert 0.0 < model.miss_ratio() < 1.0

    def test_more_memory_fewer_misses(self):
        small = BufferPoolModel(ycsb(), sku(memory_gb=32.0)).miss_ratio()
        large = BufferPoolModel(ycsb(), sku(memory_gb=64.0)).miss_ratio()
        assert large < small

    def test_skew_attenuates_misses(self):
        from dataclasses import replace

        uniform = replace(ycsb(), access_skew=0.0)
        skewed = replace(ycsb(), access_skew=0.9)
        miss_uniform = BufferPoolModel(uniform, sku(memory_gb=32.0)).miss_ratio()
        miss_skewed = BufferPoolModel(skewed, sku(memory_gb=32.0)).miss_ratio()
        assert miss_skewed < miss_uniform

    def test_sequential_scans_stall_less_than_random(self):
        # TPC-H reads orders of magnitude more pages than Twitter but its
        # sequential prefetch keeps the per-page stall tiny.
        tpch_model = BufferPoolModel(tpch(), sku(memory_gb=16.0))
        twitter_model = BufferPoolModel(twitter(), sku(memory_gb=4.0))
        tpch_stall_per_read = tpch_model.io_stall_seconds_per_txn() / max(
            tpch_model.physical_reads_per_txn(), 1e-9
        )
        twitter_stall_per_read = (
            twitter_model.io_stall_seconds_per_txn()
            / max(twitter_model.physical_reads_per_txn(), 1e-9)
        )
        assert tpch_stall_per_read < twitter_stall_per_read

    def test_write_amortization_below_logical(self):
        model = BufferPoolModel(tpcc(), sku())
        assert model.physical_writes_per_txn() < tpcc().mix_mean(
            "logical_writes"
        )

    def test_memory_utilization_bounds(self):
        for workload in (tpcc(), tpch(), ycsb()):
            value = BufferPoolModel(workload, sku()).memory_utilization()
            assert 0.0 <= value <= 1.0

    def test_spill_factor_at_least_one(self):
        assert BufferPoolModel(tpch(), sku(memory_gb=8.0)).spill_factor() >= 1.0


class TestLockManager:
    def test_serial_run_no_conflicts(self):
        assert LockManagerModel(tpcc()).conflict_probability(1) == 0.0

    def test_conflicts_grow_with_concurrency(self):
        model = LockManagerModel(tpcc())
        probs = [model.conflict_probability(n) for n in (2, 8, 32)]
        assert probs == sorted(probs)

    def test_read_only_workload_conflicts_less(self):
        write_heavy = LockManagerModel(tpcc()).conflict_probability(32)
        read_only = LockManagerModel(tpch()).conflict_probability(32)
        assert read_only < write_heavy

    def test_wait_inflation_at_least_one(self):
        model = LockManagerModel(twitter())
        for n in (1, 4, 32):
            assert model.wait_inflation(n) >= 1.0

    def test_probability_capped(self):
        assert LockManagerModel(tpcc()).conflict_probability(10**6) <= 0.85


class TestExecutionEngine:
    def test_cpu_scaling_shapes(self):
        """The headline scaling behaviours the paper relies on."""
        curves = {}
        for workload in (tpcc(), twitter(), tpch()):
            engine = ExecutionEngine(workload)
            terminals = 1 if workload.name == "tpch" else 32
            curves[workload.name] = [
                engine.steady_state(sku(c), terminals, noisy=False).throughput
                for c in (2, 4, 8, 16)
            ]
        for name, curve in curves.items():
            assert curve == sorted(curve), name  # throughput non-decreasing
        # Twitter saturates hard (hot-key latching); TPC-H scales furthest.
        gain = {n: c[-1] / c[0] for n, c in curves.items()}
        assert gain["twitter"] < gain["tpcc"] < gain["tpch"] < 8.0

    def test_interference_groups_ordered(self):
        engine = ExecutionEngine(tpcc())
        values = [
            engine.steady_state(sku(), 8, data_group=g, noisy=False).throughput
            for g in (0, 1, 2)
        ]
        assert values[0] > values[1] > values[2]

    def test_noise_is_reproducible(self):
        engine = ExecutionEngine(tpcc())
        a = engine.steady_state(sku(), 8, random_state=1).throughput
        b = engine.steady_state(sku(), 8, random_state=1).throughput
        assert a == b

    def test_latency_consistent_with_interactive_law(self):
        engine = ExecutionEngine(tpcc())
        op = engine.steady_state(sku(), 8, noisy=False)
        assert op.latency_ms == pytest.approx(8 / op.throughput * 1000.0)

    def test_utilizations_bounded(self):
        for workload in (tpcc(), twitter(), ycsb(), tpch()):
            terminals = 1 if workload.name == "tpch" else 8
            op = ExecutionEngine(workload).steady_state(
                sku(), terminals, noisy=False
            )
            assert 0.0 <= op.cpu_utilization <= 1.0
            assert 0.0 <= op.cpu_effective <= op.cpu_utilization
            assert 0.0 <= op.memory_utilization <= 1.0
            assert op.iops >= 0.0

    def test_read_write_ratio_separates_types(self):
        analytical = ExecutionEngine(tpch()).steady_state(sku(), 1, noisy=False)
        transactional = ExecutionEngine(tpcc()).steady_state(
            sku(), 8, noisy=False
        )
        assert analytical.read_write_ratio > 100 * transactional.read_write_ratio

    def test_per_txn_latencies_cover_all_types(self):
        op = ExecutionEngine(tpcc()).steady_state(sku(), 8, noisy=False)
        assert set(op.per_txn_latency_ms) == {
            t.name for t in tpcc().transactions
        }

    def test_weighted_per_txn_latency_near_aggregate(self):
        workload = tpcc()
        op = ExecutionEngine(workload).steady_state(sku(), 8, noisy=False)
        weights = workload.weights
        rollup = sum(
            w * op.per_txn_latency_ms[t.name]
            for w, t in zip(weights, workload.transactions)
        )
        assert rollup == pytest.approx(op.latency_ms, rel=0.05)

    def test_bottleneck_reported(self):
        op = ExecutionEngine(tpcc()).steady_state(sku(), 8, noisy=False)
        assert op.bottleneck in ("cpu", "io", "concurrency")
        assert op.bounds[op.bottleneck] == min(op.bounds.values())

    def test_buffer_model_memoized_per_sku(self):
        engine = ExecutionEngine(tpcc())
        small, large = sku(cpus=4), sku(cpus=16)
        assert engine.buffer_model(small) is engine.buffer_model(small)
        assert engine.buffer_model(small) is not engine.buffer_model(large)
        # Memoization must not leak across (equal-valued) SKU instances
        # by identity: SKU is frozen, so equal SKUs share one model.
        assert engine.buffer_model(sku(cpus=4)) is engine.buffer_model(small)

    def test_memoized_models_match_fresh_construction(self):
        """Engine-held models must not change any operating point."""
        engine = ExecutionEngine(tpcc())
        reference = ExecutionEngine(tpcc())
        for cpus in (2, 8, 16):
            a = engine.steady_state(sku(cpus=cpus), 8, random_state=5)
            b = reference.steady_state(sku(cpus=cpus), 8, random_state=5)
            assert a.throughput == b.throughput
            assert a.latency_ms == b.latency_ms
            assert a.bounds == b.bounds
            assert a.per_txn_latency_ms == b.per_txn_latency_ms


class TestRoofline:
    def test_ceilings_consistent_with_engine(self):
        ceilings = hardware_ceilings(tpcc(), sku(), 8)
        engine_bounds = ExecutionEngine(tpcc()).throughput_bounds(sku(), 8)
        assert ceilings.cpu_bound == pytest.approx(engine_bounds["cpu"])
        assert ceilings.effective == pytest.approx(min(engine_bounds.values()))

    def test_compute_bound_at_low_cpus(self):
        assert hardware_ceilings(tpcc(), sku(cpus=2), 32).compute_bound

    def test_saturation_point_exists_for_capped_workload(self):
        point = saturation_cpus(ycsb(), memory_gb=32.0, terminals=32)
        assert 2 < point < 64

    def test_saturation_monotone_in_memory(self):
        low = saturation_cpus(ycsb(), memory_gb=32.0, terminals=8)
        high = saturation_cpus(ycsb(), memory_gb=96.0, terminals=8)
        assert high >= low
