import pytest

from repro.exceptions import ValidationError
from repro.workloads.catalog import (
    WORKLOAD_NAMES,
    production_workload,
    standard_workloads,
    tpcc,
    tpcds,
    tpch,
    twitter,
    workload_by_name,
    ycsb,
)
from repro.workloads.spec import WorkloadType


class TestTable1Schema:
    """Schema statistics per Table 1 of the paper."""

    def test_tpcc(self):
        spec = tpcc()
        assert (spec.tables, spec.columns, spec.indexes) == (9, 92, 1)
        assert spec.n_transaction_types == 5
        assert spec.workload_type is WorkloadType.TRANSACTIONAL
        assert spec.read_only_fraction == pytest.approx(0.08)

    def test_tpch(self):
        spec = tpch()
        assert (spec.tables, spec.columns, spec.indexes) == (8, 61, 23)
        assert spec.n_transaction_types == 22
        assert spec.workload_type is WorkloadType.ANALYTICAL
        assert spec.read_only_fraction == pytest.approx(1.0)

    def test_tpcds(self):
        spec = tpcds()
        assert (spec.tables, spec.columns, spec.indexes) == (24, 425, 0)
        assert spec.n_transaction_types == 99
        assert spec.read_only_fraction == pytest.approx(1.0)

    def test_twitter(self):
        spec = twitter()
        assert (spec.tables, spec.columns, spec.indexes) == (5, 18, 4)
        assert spec.n_transaction_types == 5
        # 99% read-only per Table 1 (footnote: treated as analytical).
        assert spec.read_only_fraction == pytest.approx(0.99)
        assert spec.workload_type is WorkloadType.ANALYTICAL

    def test_ycsb(self):
        spec = ycsb()
        assert (spec.tables, spec.columns, spec.indexes) == (1, 11, 0)
        # Six operation types (the Example 1 mixture).
        assert spec.n_transaction_types == 6
        assert spec.read_only_fraction == pytest.approx(0.50)
        assert spec.workload_type is WorkloadType.MIXED

    def test_production_workload(self):
        spec = production_workload()
        assert spec.n_transaction_types >= 500
        assert spec.workload_type is WorkloadType.MIXED
        assert spec.read_only_fraction > 0.85  # "mostly" read-only


class TestCatalogAccess:
    def test_workload_by_name(self):
        for name in WORKLOAD_NAMES:
            assert workload_by_name(name).name == name

    def test_case_insensitive(self):
        assert workload_by_name("TPCC").name == "tpcc"

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown workload"):
            workload_by_name("oracle")

    def test_standard_workloads_excludes_pw(self):
        names = {w.name for w in standard_workloads()}
        assert names == {"tpcc", "tpch", "tpcds", "twitter", "ycsb"}

    def test_deterministic_generation(self):
        a = tpch()
        b = tpch()
        assert [t.cpu_ms for t in a.transactions] == [
            t.cpu_ms for t in b.transactions
        ]

    def test_pw_minimum_statements_enforced(self):
        with pytest.raises(ValidationError, match="500"):
            production_workload(n_statements=100)


class TestWorkloadCharacter:
    def test_analytical_queries_are_heavy(self):
        light = twitter().mix_mean("cpu_ms")
        heavy = tpch().mix_mean("cpu_ms")
        # "Analytical workload queries can be several orders of magnitude
        # slower" (Section 2).
        assert heavy / light > 1000

    def test_twitter_rows_are_small(self):
        assert twitter().mix_mean("row_size_bytes") < 200

    def test_ycsb_rows_are_wide(self):
        assert ycsb().mix_mean("row_size_bytes") > 1000

    def test_tpch_memory_hungry(self):
        assert tpch().mix_mean("memory_grant_mb") > 100

    def test_contention_ordering(self):
        # Hot-key Twitter and write-heavy TPC-C contend; TPC-H does not.
        assert twitter().contention_factor > tpch().contention_factor
        assert tpcc().contention_factor > tpch().contention_factor
