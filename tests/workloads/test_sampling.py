import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads.sampling import (
    augmented_throughputs,
    random_downsample,
    systematic_subexperiments,
)


class TestSystematicSubexperiments:
    def test_count_and_indices(self, tpcc_run):
        subs = systematic_subexperiments(tpcc_run, n_subexperiments=10)
        assert len(subs) == 10
        assert [s.subsample_index for s in subs] == list(range(10))

    def test_resource_samples_partitioned(self, tpcc_run):
        subs = systematic_subexperiments(tpcc_run, n_subexperiments=10)
        total = sum(s.n_samples for s in subs)
        assert total == tpcc_run.n_samples
        reassembled = np.concatenate(
            [s.resource_series[:, 0] for s in subs]
        )
        assert sorted(reassembled) == sorted(tpcc_run.resource_series[:, 0])

    def test_each_subexperiment_sees_every_query_once(self, tpcc_run):
        subs = systematic_subexperiments(tpcc_run)
        for sub in subs:
            assert sorted(sub.plan_txn_names) == sorted(
                set(tpcc_run.plan_txn_names)
            )
            assert sub.plan_matrix.shape[0] == 5

    def test_throughput_near_parent(self, tpcc_run):
        subs = systematic_subexperiments(tpcc_run)
        for sub in subs:
            assert sub.throughput == pytest.approx(tpcc_run.throughput, rel=0.3)

    def test_subexperiments_differ(self, tpcc_run):
        subs = systematic_subexperiments(tpcc_run)
        throughputs = {round(s.throughput, 6) for s in subs}
        assert len(throughputs) > 1

    def test_deterministic(self, tpcc_run):
        a = systematic_subexperiments(tpcc_run)
        b = systematic_subexperiments(tpcc_run)
        for sub_a, sub_b in zip(a, b):
            assert sub_a.latency_ms == sub_b.latency_ms
            assert sub_a.per_txn_latency_ms == sub_b.per_txn_latency_ms

    def test_per_txn_latency_noisier_than_workload(self, tpcc_run):
        """The Figure 1 asymmetry: per-type estimates vary more."""
        subs = systematic_subexperiments(tpcc_run)
        workload_cv = np.std([s.latency_ms for s in subs]) / np.mean(
            [s.latency_ms for s in subs]
        )
        name = tpcc_run.plan_txn_names[0]
        txn_cv = np.std(
            [s.per_txn_latency_ms[name] for s in subs]
        ) / np.mean([s.per_txn_latency_ms[name] for s in subs])
        assert txn_cv > workload_cv

    def test_too_many_subexperiments(self, tpcc_run):
        with pytest.raises(ValidationError):
            systematic_subexperiments(tpcc_run, n_subexperiments=10**6)

    def test_invalid_count(self, tpcc_run):
        with pytest.raises(ValidationError):
            systematic_subexperiments(tpcc_run, n_subexperiments=0)


class TestRandomDownsample:
    def test_series_count_and_size(self, tpcc_run):
        series = random_downsample(
            tpcc_run, n_series=10, fraction=0.1, random_state=0
        )
        assert len(series) == 10
        assert all(s.size == 36 for s in series)

    def test_values_come_from_parent(self, tpcc_run):
        series = random_downsample(tpcc_run, random_state=0)
        parent = set(tpcc_run.throughput_series.tolist())
        for s in series:
            assert set(s.tolist()) <= parent

    def test_without_replacement(self, tpcc_run):
        series = random_downsample(
            tpcc_run, n_series=1, fraction=0.5, random_state=0
        )[0]
        assert len(series) == len(set(series.tolist()))

    def test_invalid_fraction(self, tpcc_run):
        with pytest.raises(ValidationError):
            random_downsample(tpcc_run, fraction=0.0)

    def test_full_fraction_is_whole_series(self, tpcc_run):
        series = random_downsample(
            tpcc_run, n_series=1, fraction=1.0, random_state=0
        )[0]
        assert series.size == tpcc_run.throughput_series.size


class TestAugmentedThroughputs:
    def test_thirty_points_from_three_runs(self, tpcc_run):
        values = augmented_throughputs(tpcc_run, n_series=10, random_state=0)
        assert values.shape == (10,)

    def test_centered_on_run_throughput(self, tpcc_run):
        values = augmented_throughputs(tpcc_run, random_state=0)
        assert values.mean() == pytest.approx(tpcc_run.throughput, rel=0.15)

    def test_observations_spread(self, tpcc_run):
        values = augmented_throughputs(tpcc_run, random_state=0)
        assert values.std() / values.mean() > 0.01

    def test_seed_controls_augmentation(self, tpcc_run):
        a = augmented_throughputs(tpcc_run, random_state=1)
        b = augmented_throughputs(tpcc_run, random_state=1)
        np.testing.assert_array_equal(a, b)
        c = augmented_throughputs(tpcc_run, random_state=2)
        assert not np.array_equal(a, c)
