"""Determinism and correctness of the parallel grid executor.

The suite locks down the property the whole optimisation rests on: a
corpus built in parallel is **bit-identical** to one built serially with
the same ``random_state``.  Everything here uses tiny grids (short
durations, few runs) so the equivalence proofs stay inside the fast PR
gate.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.workloads import (
    SKU,
    ExperimentRunner,
    enumerate_grid,
    execute_grid,
    repositories_equal,
    results_equal,
    run_experiments,
    workload_by_name,
)
from repro.workloads.corpus import default_terminals
from repro.workloads.gridexec import GridTask, resolve_jobs

WORKLOADS = ["tpcc", "tpch"]
SKUS = [SKU(cpus=4, memory_gb=32.0), SKU(cpus=8, memory_gb=32.0)]


def small_grid(random_state=123):
    return dict(
        workloads=[workload_by_name(n) for n in WORKLOADS],
        skus=SKUS,
        terminals_for=lambda w: (1,) if w.name == "tpch" else (2, 4),
        n_runs=2,
        duration_s=120.0,
        random_state=random_state,
    )


def build(jobs=None, random_state=123):
    kw = small_grid(random_state)
    return run_experiments(
        kw.pop("workloads"), kw.pop("skus"), jobs=jobs, **kw
    )


class TestEnumerateGrid:
    def test_grid_shape_and_order(self):
        kw = small_grid()
        tasks = enumerate_grid(
            kw["workloads"], kw["skus"],
            terminals_for=kw["terminals_for"], n_runs=2,
            duration_s=120.0, sample_interval_s=10.0, random_state=123,
        )
        # tpcc: 2 SKUs x 2 terminal levels x 2 runs; tpch: 2 x 1 x 2.
        assert len(tasks) == 8 + 4
        assert [t.index for t in tasks] == list(range(12))
        assert tasks[0].workload.name == "tpcc"
        assert tasks[-1].workload.name == "tpch"
        # Runs iterate fastest, then terminals, then SKUs.
        assert (tasks[0].run_index, tasks[1].run_index) == (0, 1)
        assert tasks[0].terminals == tasks[1].terminals

    def test_seeds_are_deterministic_and_distinct(self):
        kw = small_grid()
        common = dict(
            terminals_for=kw["terminals_for"], n_runs=2,
            duration_s=120.0, sample_interval_s=10.0,
        )
        a = enumerate_grid(kw["workloads"], kw["skus"],
                           random_state=123, **common)
        b = enumerate_grid(kw["workloads"], kw["skus"],
                           random_state=123, **common)
        c = enumerate_grid(kw["workloads"], kw["skus"],
                           random_state=124, **common)
        assert [t.seed for t in a] == [t.seed for t in b]
        assert [t.seed for t in a] != [t.seed for t in c]
        assert len({t.seed for t in a}) == len(a)

    def test_rejects_zero_runs(self):
        kw = small_grid()
        with pytest.raises(ValidationError):
            enumerate_grid(
                kw["workloads"], kw["skus"],
                terminals_for=default_terminals, n_runs=0,
                duration_s=120.0, sample_interval_s=10.0, random_state=0,
            )


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            resolve_jobs(-2)


class TestDeterminismEquivalence:
    """Serial, jobs=1, and jobs=4 builds are bit-identical."""

    @pytest.fixture(scope="class")
    def serial(self):
        return build(jobs=None)

    def test_jobs1_bit_identical_to_serial(self, serial):
        assert repositories_equal(serial, build(jobs=1))

    def test_jobs4_bit_identical_to_serial(self, serial):
        parallel = build(jobs=4)
        assert repositories_equal(serial, parallel)

    def test_experiment_id_sets_identical(self, serial):
        parallel = build(jobs=4)
        assert [r.experiment_id for r in serial] == [
            r.experiment_id for r in parallel
        ]

    def test_seeds_recorded_in_metadata_match(self, serial):
        parallel = build(jobs=4)
        assert [r.metadata["seed"] for r in serial] == [
            r.metadata["seed"] for r in parallel
        ]

    def test_different_random_state_differs(self, serial):
        other = build(jobs=None, random_state=321)
        assert not repositories_equal(serial, other)


class TestExecuteGrid:
    def test_results_in_task_order(self):
        kw = small_grid()
        tasks = enumerate_grid(
            kw["workloads"], kw["skus"],
            terminals_for=kw["terminals_for"], n_runs=2,
            duration_s=120.0, sample_interval_s=10.0, random_state=123,
        )
        results = execute_grid(tasks, jobs=None)
        assert len(results) == len(tasks)
        for task, result in zip(tasks, results):
            assert result.workload_name == task.workload.name
            assert result.terminals == task.terminals
            assert result.run_index == task.run_index
            assert result.metadata["seed"] == task.seed

    def test_report_attached(self):
        kw = small_grid()
        tasks = enumerate_grid(
            kw["workloads"], kw["skus"],
            terminals_for=lambda w: (1,), n_runs=1,
            duration_s=60.0, sample_interval_s=10.0, random_state=9,
        )
        results = execute_grid(tasks, jobs=1)
        report = results.report
        assert report.n_tasks == len(tasks)
        assert report.n_workers == 1
        assert report.n_executed == len(tasks)
        assert report.cache_hits == 0
        assert report.to_dict()["n_tasks"] == len(tasks)

    def test_explicit_seed_matches_runner_draw(self):
        """A task's pre-drawn seed reproduces the runner's own draw."""
        workload = workload_by_name("twitter")
        sku = SKUS[0]
        implicit = ExperimentRunner(workload, random_state=77).run(
            sku, terminals=4, duration_s=120.0
        )
        explicit = ExperimentRunner(workload).run(
            sku, terminals=4, duration_s=120.0,
            seed=implicit.metadata["seed"],
        )
        assert results_equal(implicit, explicit)

    def test_task_id_matches_experiment_id(self):
        task = GridTask(
            index=0, workload=workload_by_name("tpcc"), sku=SKUS[0],
            terminals=2, run_index=1, data_group=1, duration_s=60.0,
            sample_interval_s=10.0, plan_observations=3, seed=42,
        )
        results = execute_grid([task])
        assert results[0].experiment_id == task.task_id
