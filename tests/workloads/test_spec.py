import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads.spec import TransactionType, WorkloadSpec, WorkloadType


def make_txn(**overrides):
    defaults = dict(
        name="t",
        weight=1.0,
        read_only=True,
        cpu_ms=1.0,
        logical_reads=10,
        logical_writes=0,
        rows_touched=5,
        rows_scanned=5,
        row_size_bytes=100,
        table_cardinality=1e6,
        plan_complexity=2.0,
        memory_grant_mb=1.0,
        locks_acquired=3,
    )
    defaults.update(overrides)
    return TransactionType(**defaults)


def make_workload(transactions):
    return WorkloadSpec(
        name="w",
        workload_type=WorkloadType.MIXED,
        tables=1,
        columns=5,
        indexes=0,
        transactions=tuple(transactions),
        working_set_gb=10.0,
        parallel_fraction=0.8,
        contention_factor=0.2,
    )


class TestTransactionType:
    def test_valid_construction(self):
        assert make_txn().name == "t"

    def test_zero_weight_rejected(self):
        with pytest.raises(ValidationError, match="weight"):
            make_txn(weight=0.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_weight_rejected(self, bad):
        """NaN fails every comparison, so ``<= 0`` alone would pass it."""
        with pytest.raises(ValidationError, match="weight"):
            make_txn(weight=bad)

    def test_zero_cpu_rejected(self):
        with pytest.raises(ValidationError, match="cpu_ms"):
            make_txn(cpu_ms=0.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_cpu_rejected(self, bad):
        with pytest.raises(ValidationError, match="cpu_ms"):
            make_txn(cpu_ms=bad)

    @pytest.mark.parametrize(
        "field",
        [
            "logical_reads",
            "rows_touched",
            "rows_scanned",
            "row_size_bytes",
            "table_cardinality",
            "plan_complexity",
            "memory_grant_mb",
            "locks_acquired",
        ],
    )
    def test_non_finite_cost_field_rejected(self, field):
        with pytest.raises(ValidationError, match=field):
            make_txn(**{field: float("nan")})

    def test_negative_cost_field_rejected(self):
        with pytest.raises(ValidationError, match="logical_reads"):
            make_txn(logical_reads=-1.0)

    def test_read_only_with_writes_rejected(self):
        with pytest.raises(ValidationError, match="read_only"):
            make_txn(read_only=True, logical_writes=5)

    def test_hot_spot_bounds(self):
        with pytest.raises(ValidationError, match="hot_spot"):
            make_txn(hot_spot_affinity=1.5)


class TestWorkloadSpec:
    def test_weights_normalized(self):
        spec = make_workload(
            [make_txn(name="a", weight=3.0), make_txn(name="b", weight=1.0)]
        )
        np.testing.assert_allclose(spec.weights, [0.75, 0.25])

    def test_read_only_fraction(self):
        spec = make_workload(
            [
                make_txn(name="r", weight=1.0, read_only=True),
                make_txn(
                    name="w", weight=1.0, read_only=False, logical_writes=3
                ),
            ]
        )
        assert spec.read_only_fraction == pytest.approx(0.5)

    def test_mix_mean(self):
        spec = make_workload(
            [
                make_txn(name="a", weight=1.0, cpu_ms=1.0),
                make_txn(name="b", weight=1.0, cpu_ms=3.0),
            ]
        )
        assert spec.mix_mean("cpu_ms") == pytest.approx(2.0)

    def test_transaction_lookup(self):
        spec = make_workload([make_txn(name="x")])
        assert spec.transaction("x").name == "x"
        with pytest.raises(ValidationError, match="no transaction"):
            spec.transaction("missing")

    def test_empty_transactions_rejected(self):
        with pytest.raises(ValidationError, match="no transactions"):
            make_workload([])

    def test_parallel_fraction_bounds(self):
        with pytest.raises(ValidationError, match="parallel_fraction"):
            WorkloadSpec(
                name="w",
                workload_type=WorkloadType.MIXED,
                tables=1,
                columns=1,
                indexes=0,
                transactions=(make_txn(),),
                working_set_gb=1.0,
                parallel_fraction=1.0,
                contention_factor=0.0,
            )

    def test_access_skew_bounds(self):
        with pytest.raises(ValidationError, match="access_skew"):
            WorkloadSpec(
                name="w",
                workload_type=WorkloadType.MIXED,
                tables=1,
                columns=1,
                indexes=0,
                transactions=(make_txn(),),
                working_set_gb=1.0,
                parallel_fraction=0.5,
                contention_factor=0.0,
                access_skew=2.0,
            )

    def test_n_transaction_types(self):
        spec = make_workload([make_txn(name=f"t{i}") for i in range(4)])
        assert spec.n_transaction_types == 4

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0])
    def test_non_finite_working_set_rejected(self, bad):
        kwargs = dict(
            name="w",
            workload_type=WorkloadType.MIXED,
            tables=1,
            columns=1,
            indexes=0,
            transactions=(make_txn(),),
            working_set_gb=bad,
            parallel_fraction=0.5,
            contention_factor=0.0,
        )
        with pytest.raises(ValidationError, match="working_set_gb"):
            WorkloadSpec(**kwargs)

    @pytest.mark.parametrize(
        "field", ["contention_factor", "checkpoint_intensity", "base_noise"]
    )
    def test_non_finite_workload_knob_rejected(self, field):
        kwargs = dict(
            name="w",
            workload_type=WorkloadType.MIXED,
            tables=1,
            columns=1,
            indexes=0,
            transactions=(make_txn(),),
            working_set_gb=1.0,
            parallel_fraction=0.5,
            contention_factor=0.0,
        )
        kwargs[field] = float("nan")
        with pytest.raises(ValidationError, match=field):
            WorkloadSpec(**kwargs)


class TestSerialization:
    def test_round_trip_is_exact(self):
        spec = make_workload(
            [
                make_txn(name="a", weight=1.25, cpu_ms=0.1 + 0.2),
                make_txn(
                    name="b",
                    weight=2.0,
                    read_only=False,
                    logical_writes=7.0,
                    hot_spot_affinity=0.3,
                ),
            ]
        )
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_revalidates(self):
        payload = make_workload([make_txn()]).to_dict()
        payload["transactions"][0]["weight"] = float("nan")
        with pytest.raises(ValidationError, match="weight"):
            WorkloadSpec.from_dict(payload)
