import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads.catalog import tpcc, tpch
from repro.workloads.engine.execution import ExecutionEngine
from repro.workloads.features import RESOURCE_FEATURES
from repro.workloads.sku import SKU
from repro.workloads.telemetry import TelemetrySampler


@pytest.fixture(scope="module")
def tpcc_series():
    workload = tpcc()
    op = ExecutionEngine(workload).steady_state(
        SKU(cpus=8, memory_gb=32.0), 8, noisy=False
    )
    sampler = TelemetrySampler(workload)
    return op, sampler.sample(op, n_samples=360, random_state=0)


class TestSample:
    def test_shape(self, tpcc_series):
        _, series = tpcc_series
        assert series.shape == (360, 7)

    def test_non_negative(self, tpcc_series):
        _, series = tpcc_series
        assert np.all(series >= 0)

    def test_percent_channels_capped(self, tpcc_series):
        _, series = tpcc_series
        for name in ("CPU_UTILIZATION", "CPU_EFFECTIVE", "MEM_UTILIZATION"):
            column = series[:, RESOURCE_FEATURES.index(name)]
            assert column.max() <= 100.0

    def test_tracks_operating_point(self, tpcc_series):
        op, series = tpcc_series
        cpu = series[:, RESOURCE_FEATURES.index("CPU_UTILIZATION")]
        assert cpu.mean() == pytest.approx(op.cpu_utilization * 100.0, rel=0.25)
        iops = series[:, RESOURCE_FEATURES.index("IOPS_TOTAL")]
        assert iops.mean() == pytest.approx(op.iops, rel=0.5)

    def test_warmup_ramp_visible(self, tpcc_series):
        _, series = tpcc_series
        cpu = series[:, RESOURCE_FEATURES.index("CPU_UTILIZATION")]
        assert cpu[:5].mean() < cpu[50:100].mean()

    def test_reproducible(self, tpcc_series):
        op, _ = tpcc_series
        sampler = TelemetrySampler(tpcc())
        a = sampler.sample(op, n_samples=100, random_state=3)
        b = sampler.sample(op, n_samples=100, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_minimum_samples_enforced(self, tpcc_series):
        op, _ = tpcc_series
        with pytest.raises(ValidationError):
            TelemetrySampler(tpcc()).sample(op, n_samples=2)


class TestLockWaitBursts:
    def test_lock_wait_dominated_by_environment(self):
        """LOCK_WAIT_ABS must have huge variance but carry little workload
        signal — the Table 3 variance trap."""
        column = RESOURCE_FEATURES.index("LOCK_WAIT_ABS")
        means = {"tpcc": [], "tpch": []}
        for workload, key in ((tpcc(), "tpcc"), (tpch(), "tpch")):
            terminals = 1 if key == "tpch" else 8
            op = ExecutionEngine(workload).steady_state(
                SKU(cpus=8, memory_gb=32.0), terminals, noisy=False
            )
            sampler = TelemetrySampler(workload)
            for seed in range(12):
                series = sampler.sample(op, n_samples=120, random_state=seed)
                means[key].append(series[:, column].mean())
        # Across runs the calm/stormy lottery makes both workloads span the
        # same wide range: distributions overlap heavily.
        assert max(means["tpch"]) > min(means["tpcc"])
        assert max(means["tpcc"]) > min(means["tpch"])

    def test_bimodal_burst_rates(self):
        workload = tpcc()
        op = ExecutionEngine(workload).steady_state(
            SKU(cpus=8, memory_gb=32.0), 8, noisy=False
        )
        sampler = TelemetrySampler(workload)
        column = RESOURCE_FEATURES.index("LOCK_WAIT_ABS")
        burst_fractions = []
        for seed in range(16):
            series = sampler.sample(op, n_samples=200, random_state=seed)
            burst_fractions.append(
                float(np.mean(series[:, column] > 1000.0))
            )
        # Some runs are calm (few bursts), others stormy (mostly bursts).
        assert min(burst_fractions) < 0.3
        assert max(burst_fractions) > 0.6


class TestCheckpointWave:
    def test_write_heavy_iops_burstier(self):
        column = RESOURCE_FEATURES.index("IOPS_TOTAL")
        ratios = {}
        for workload in (tpcc(), tpch()):
            terminals = 1 if workload.name == "tpch" else 8
            op = ExecutionEngine(workload).steady_state(
                SKU(cpus=8, memory_gb=32.0), terminals, noisy=False
            )
            series = TelemetrySampler(workload).sample(
                op, n_samples=360, random_state=1
            )
            values = series[:, column]
            ratios[workload.name] = values.std() / values.mean()
        assert ratios["tpcc"] > ratios["tpch"]
