import pytest

from repro.exceptions import ValidationError
from repro.workloads.features import (
    ALL_FEATURES,
    PLAN_FEATURES,
    RESOURCE_FEATURES,
    feature_index,
    feature_kind,
    plan_indices,
    resource_indices,
)


class TestRegistry:
    def test_counts_match_paper(self):
        # Table 2: 7 resource channels + 22 plan statistics = 29 features.
        assert len(RESOURCE_FEATURES) == 7
        assert len(PLAN_FEATURES) == 22
        assert len(ALL_FEATURES) == 29

    def test_no_duplicates(self):
        assert len(set(ALL_FEATURES)) == 29

    def test_resource_first_ordering(self):
        assert ALL_FEATURES[:7] == RESOURCE_FEATURES
        assert ALL_FEATURES[7:] == PLAN_FEATURES

    def test_key_paper_features_present(self):
        for name in (
            "CPU_UTILIZATION",
            "LOCK_WAIT_ABS",
            "AvgRowSize",
            "CachedPlanSize",
            "TableCardinality",
            "EstimatedAvailableDegreeOfParallelism",
        ):
            assert name in ALL_FEATURES


class TestLookups:
    def test_feature_index_round_trip(self):
        for i, name in enumerate(ALL_FEATURES):
            assert feature_index(name) == i

    def test_feature_index_unknown(self):
        with pytest.raises(ValidationError, match="unknown feature"):
            feature_index("NotAFeature")

    def test_feature_kind(self):
        assert feature_kind("CPU_UTILIZATION") == "resource"
        assert feature_kind("AvgRowSize") == "plan"

    def test_feature_kind_unknown(self):
        with pytest.raises(ValidationError):
            feature_kind("Nope")

    def test_index_partitions(self):
        assert sorted(resource_indices() + plan_indices()) == list(range(29))
