import pytest

from repro.exceptions import ValidationError
from repro.workloads import SKU, workload_by_name
from repro.workloads.catalog import tpcc, tpch, ycsb
from repro.workloads.engine import ExecutionEngine, LogManagerModel


class TestLogVolume:
    def test_read_only_workload_logs_nothing(self):
        model = LogManagerModel(tpch())
        assert model.bytes_logged_per_txn() == 0.0
        assert model.throughput_bound(SKU(cpus=4, memory_gb=32.0)) == float(
            "inf"
        )

    def test_write_heavy_workload_logs_kilobytes(self):
        model = LogManagerModel(tpcc())
        bytes_per_txn = model.bytes_logged_per_txn()
        assert 1000 < bytes_per_txn < 50000

    def test_volume_scales_with_throughput(self):
        model = LogManagerModel(tpcc())
        assert model.log_volume_mb_s(2000) == pytest.approx(
            2 * model.log_volume_mb_s(1000)
        )


class TestLogBound:
    def test_not_binding_on_default_skus(self):
        """The paper's SKUs never log-bind the standard benchmarks —
        calibration-critical: Table 6 results must stay CPU/contention
        limited."""
        for workload in (tpcc(), ycsb()):
            engine = ExecutionEngine(workload)
            for cpus in (2, 16):
                op = engine.steady_state(
                    SKU(cpus=cpus, memory_gb=32.0), 32, noisy=False
                )
                assert op.bottleneck != "log"
                assert op.bounds["log"] > op.throughput

    def test_throttled_log_binds(self):
        """A log-throttled cloud tier caps write throughput."""
        workload = tpcc()
        engine = ExecutionEngine(workload)
        throttled = SKU(cpus=16, memory_gb=32.0, log_bandwidth_mb_s=2.0)
        op = engine.steady_state(throttled, 32, noisy=False)
        assert op.bottleneck == "log"
        unthrottled = engine.steady_state(
            SKU(cpus=16, memory_gb=32.0), 32, noisy=False
        )
        assert op.throughput < unthrottled.throughput

    def test_bandwidth_scales_bound(self):
        model = LogManagerModel(tpcc())
        slow = model.throughput_bound(
            SKU(cpus=4, memory_gb=32.0, log_bandwidth_mb_s=10.0)
        )
        fast = model.throughput_bound(
            SKU(cpus=4, memory_gb=32.0, log_bandwidth_mb_s=100.0)
        )
        assert fast == pytest.approx(10 * slow)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValidationError, match="log_bandwidth"):
            SKU(cpus=2, memory_gb=8.0, log_bandwidth_mb_s=0.0)

    def test_ceilings_include_log(self):
        from repro.workloads.engine import hardware_ceilings

        ceilings = hardware_ceilings(
            tpcc(), SKU(cpus=16, memory_gb=32.0, log_bandwidth_mb_s=2.0), 32
        )
        assert ceilings.log_bound < ceilings.cpu_bound
        assert ceilings.ceiling == ceilings.log_bound

    def test_repository_round_trip_preserves_bandwidth(self, tmp_path):
        from repro.workloads import ExperimentRepository, ExperimentRunner

        runner = ExperimentRunner(workload_by_name("tpcc"), random_state=0)
        result = runner.run(
            SKU(cpus=4, memory_gb=32.0, log_bandwidth_mb_s=55.0),
            terminals=4,
            duration_s=600.0,
        )
        path = tmp_path / "r.json"
        ExperimentRepository([result]).save(path)
        loaded = ExperimentRepository.load(path)
        assert loaded[0].sku.log_bandwidth_mb_s == 55.0
