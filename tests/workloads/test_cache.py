"""Content-addressed corpus cache: keys, hit/miss paths, invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RepositoryError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.workloads import (
    SKU,
    CorpusCache,
    enumerate_grid,
    execute_grid,
    paper_corpus,
    repositories_equal,
    results_equal,
    run_experiments,
    task_fingerprint,
    workload_by_name,
)
from repro.workloads.cache import as_cache
from repro.workloads.runner import clone_with


@pytest.fixture
def fresh_metrics():
    """Install an isolated registry; restore the previous one after."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def tiny_tasks(random_state=5, duration_s=120.0):
    return enumerate_grid(
        [workload_by_name("tpcc")],
        [SKU(cpus=4, memory_gb=32.0)],
        terminals_for=lambda w: (2,),
        n_runs=2,
        duration_s=duration_s,
        sample_interval_s=10.0,
        random_state=random_state,
    )


class TestTaskFingerprint:
    def test_stable_across_calls(self):
        a, b = tiny_tasks(), tiny_tasks()
        assert [task_fingerprint(t) for t in a] == [
            task_fingerprint(t) for t in b
        ]

    def test_sensitive_to_every_input(self):
        task = tiny_tasks()[0]
        base = task_fingerprint(task)
        from dataclasses import replace

        assert task_fingerprint(replace(task, seed=task.seed + 1)) != base
        assert task_fingerprint(replace(task, terminals=9)) != base
        assert task_fingerprint(replace(task, duration_s=999.0)) != base
        assert (
            task_fingerprint(replace(task, sku=SKU(cpus=2, memory_gb=32.0)))
            != base
        )
        assert (
            task_fingerprint(
                replace(task, workload=workload_by_name("ycsb"))
            )
            != base
        )

    def test_insensitive_to_grid_position(self):
        task = tiny_tasks()[0]
        from dataclasses import replace

        assert task_fingerprint(replace(task, index=99)) == task_fingerprint(
            task
        )

    def test_engine_version_invalidates(self):
        task = tiny_tasks()[0]
        assert task_fingerprint(task, version="1.0.0") != task_fingerprint(
            task, version="1.0.1"
        )


class TestCorpusCache:
    def test_roundtrip_single_result(self, tmp_path):
        cache = CorpusCache(tmp_path)
        task = tiny_tasks()[0]
        result = execute_grid([task])[0]
        key = cache.task_key(task)
        assert key not in cache
        cache.put(key, result)
        assert key in cache
        assert len(cache) == 1
        assert results_equal(cache.get(key), result)

    def test_miss_returns_none(self, tmp_path, fresh_metrics):
        cache = CorpusCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert fresh_metrics.counter("corpus_cache.misses_total").value == 1

    def test_corrupt_npz_is_a_miss(self, tmp_path, fresh_metrics):
        cache = CorpusCache(tmp_path)
        task = tiny_tasks()[0]
        result = execute_grid([task])[0]
        key = cache.task_key(task)
        cache.put(key, result)
        npz_path, _ = cache._paths(key)
        npz_path.write_bytes(b"not a zip archive")
        assert cache.get(key) is None
        assert fresh_metrics.counter("corpus_cache.corrupt_total").value == 1

    def test_corrupt_sidecar_is_a_miss(self, tmp_path):
        cache = CorpusCache(tmp_path)
        task = tiny_tasks()[0]
        result = execute_grid([task])[0]
        key = cache.task_key(task)
        cache.put(key, result)
        _, json_path = cache._paths(key)
        json_path.write_text("{truncated")
        assert cache.get(key) is None

    def test_put_rejects_non_finite(self, tmp_path):
        cache = CorpusCache(tmp_path)
        task = tiny_tasks()[0]
        result = execute_grid([task])[0]
        series = result.resource_series.copy()
        series[0, 0] = np.nan
        bad = clone_with(result, resource_series=series)
        with pytest.raises(RepositoryError, match="non-finite"):
            cache.put(cache.task_key(task), bad)

    def test_clear(self, tmp_path):
        cache = CorpusCache(tmp_path)
        tasks = tiny_tasks()
        for task, result in zip(tasks, execute_grid(tasks)):
            cache.put(cache.task_key(task), result)
        assert len(cache) == len(tasks)
        assert cache.clear() == len(tasks)
        assert len(cache) == 0

    def test_put_writes_payload_before_sidecar(self, tmp_path, monkeypatch):
        """Regression for the sidecar-first write-ordering bug.

        A crash between the two writes of ``put`` must leave an orphaned
        *payload* (invisible to lookups, swept by ``clear``), never an
        orphaned sidecar that ``clear()`` and ``__len__`` — which used to
        glob only ``*.npz`` — could not see.
        """
        cache = CorpusCache(tmp_path)
        task = tiny_tasks()[0]
        result = execute_grid([task])[0]
        key = cache.task_key(task)

        import repro.workloads.cache as cache_module

        def crash(path, data):
            raise KeyboardInterrupt("simulated kill between the two writes")

        monkeypatch.setattr(cache_module, "_atomic_write_bytes", crash)
        with pytest.raises(KeyboardInterrupt):
            cache.put(key, result)
        npz_path, json_path = cache.entry_paths(key)
        assert npz_path.exists() and not json_path.exists()
        # The torn entry is a miss, not a visible entry...
        assert key not in cache
        assert len(cache) == 0
        assert cache.get(key) is None
        # ...and clear() sweeps it rather than leaking it.
        assert cache.clear() == 1
        assert not npz_path.exists()

    def test_clear_sweeps_orphaned_sidecars_too(self, tmp_path):
        cache = CorpusCache(tmp_path)
        tasks = tiny_tasks()
        for task, result in zip(tasks, execute_grid(tasks)):
            cache.put(cache.task_key(task), result)
        npz_path, _ = cache.entry_paths(cache.task_key(tasks[0]))
        npz_path.unlink()  # leaves an orphaned sidecar
        assert len(cache) == len(tasks) - 1
        assert cache.clear() == len(tasks)
        assert list(tmp_path.glob("??/*")) == []

    def test_as_cache_normalization(self, tmp_path):
        assert as_cache(None) is None
        cache = CorpusCache(tmp_path)
        assert as_cache(cache) is cache
        assert isinstance(as_cache(tmp_path), CorpusCache)
        assert isinstance(as_cache(str(tmp_path)), CorpusCache)
        with pytest.raises(TypeError):
            as_cache(42)


class TestCacheVerify:
    def populate(self, tmp_path):
        cache = CorpusCache(tmp_path)
        tasks = tiny_tasks()
        for task, result in zip(tasks, execute_grid(tasks, journal=False)):
            cache.put(cache.task_key(task), result)
        return cache, tasks

    def test_clean_store_verifies_clean(self, tmp_path):
        cache, tasks = self.populate(tmp_path)
        outcome = cache.verify()
        assert outcome.clean
        assert outcome.n_entries == outcome.n_ok == len(tasks)
        assert not outcome.repaired
        assert outcome.to_dict()["corrupt"] == []

    def test_verify_classifies_damage(self, tmp_path, fresh_metrics):
        cache, tasks = self.populate(tmp_path)
        keys = [cache.task_key(t) for t in tasks]
        corrupt_npz, _ = cache.entry_paths(keys[0])
        corrupt_npz.write_bytes(b"not a zip archive")
        orphan_npz, orphan_json = cache.entry_paths(keys[1])
        orphan_json.unlink()  # orphaned payload
        outcome = cache.verify()
        assert outcome.corrupt == (keys[0],)
        assert [path.split("/")[-1] for path in outcome.orphaned] == [
            f"{keys[1]}.npz"
        ]
        # The orphan is not an entry; the corrupt one is, and is not ok.
        assert outcome.n_entries == len(tasks) - 1
        assert outcome.n_ok == len(tasks) - 2
        assert not outcome.clean
        assert (
            fresh_metrics.counter("corpus_cache.verify_corrupt_total").value
            == 1
        )
        assert (
            fresh_metrics.counter("corpus_cache.verify_orphans_total").value
            == 1
        )
        # Without repair nothing is deleted.
        assert corrupt_npz.exists() and orphan_npz.exists()

    def test_verify_flags_mismatched_sidecar_key(self, tmp_path):
        cache, tasks = self.populate(tmp_path)
        key_a, key_b = (cache.task_key(t) for t in tasks[:2])
        # Swap entry A's files under entry B's name: each deserializes
        # fine but the sidecar no longer matches its address.
        for src, dst in zip(cache.entry_paths(key_a), cache.entry_paths(key_b)):
            dst.write_bytes(src.read_bytes())
        outcome = cache.verify()
        assert key_b in outcome.corrupt

    def test_verify_flags_leftover_tempfiles(self, tmp_path):
        cache, tasks = self.populate(tmp_path)
        shard = next(p for p in tmp_path.iterdir() if p.is_dir())
        stray = shard / ".tmp-abandoned.npz"
        stray.write_bytes(b"half a write")
        outcome = cache.verify()
        assert any(".tmp-" in path for path in outcome.orphaned)
        cache.verify(repair=True)
        assert not stray.exists()

    def test_repair_deletes_only_the_damage(self, tmp_path):
        cache, tasks = self.populate(tmp_path)
        keys = [cache.task_key(t) for t in tasks]
        npz_path, json_path = cache.entry_paths(keys[0])
        json_path.write_text("{torn")
        outcome = cache.verify(repair=True)
        assert outcome.repaired
        assert outcome.corrupt == (keys[0],)
        assert not npz_path.exists() and not json_path.exists()
        assert len(cache) == len(tasks) - 1
        assert cache.verify().clean

    def test_empty_cache_is_clean(self, tmp_path):
        assert CorpusCache(tmp_path).verify().clean


class TestCachedGridExecution:
    def build(self, cache=None, jobs=None, **kw):
        return run_experiments(
            [workload_by_name("tpcc"), workload_by_name("twitter")],
            [SKU(cpus=4, memory_gb=32.0)],
            terminals_for=lambda w: (2,),
            n_runs=2,
            duration_s=120.0,
            random_state=11,
            cache=cache,
            jobs=jobs,
            **kw,
        )

    def test_warm_rebuild_executes_nothing(self, tmp_path, fresh_metrics):
        cold = self.build(cache=tmp_path)
        assert fresh_metrics.counter("runner.experiments_total").value == 4
        set_metrics(MetricsRegistry())
        from repro.obs.metrics import get_metrics

        warm = self.build(cache=tmp_path)
        registry = get_metrics()
        assert registry.counter("runner.experiments_total").value == 0
        assert registry.counter("corpus_cache.hits_total").value == 4
        assert repositories_equal(cold, warm)

    def test_cache_path_equals_no_cache_path(self, tmp_path):
        assert repositories_equal(self.build(cache=tmp_path), self.build())

    def test_warm_parallel_rebuild_equal(self, tmp_path):
        cold = self.build(cache=tmp_path)
        warm = self.build(cache=tmp_path, jobs=3)
        assert repositories_equal(cold, warm)

    def test_partial_cache_fills_missing_tasks(self, tmp_path, fresh_metrics):
        cache = CorpusCache(tmp_path)
        cold = self.build(cache=cache)
        # Evict half the entries; the rebuild recomputes exactly those.
        tasks = enumerate_grid(
            [workload_by_name("tpcc"), workload_by_name("twitter")],
            [SKU(cpus=4, memory_gb=32.0)],
            terminals_for=lambda w: (2,),
            n_runs=2,
            duration_s=120.0,
            sample_interval_s=10.0,
            random_state=11,
        )
        for task in tasks[::2]:
            npz_path, json_path = cache._paths(cache.task_key(task))
            npz_path.unlink()
            json_path.unlink()
        set_metrics(MetricsRegistry())
        from repro.obs.metrics import get_metrics

        rebuilt = self.build(cache=cache)
        assert get_metrics().counter("runner.experiments_total").value == 2
        assert repositories_equal(cold, rebuilt)

    def test_warm_paper_corpus_rebuild_executes_nothing(
        self, tmp_path, fresh_metrics
    ):
        """The ISSUE acceptance criterion, on a scaled-down paper corpus."""
        kw = dict(
            n_runs=1, n_subexperiments=5, duration_s=300.0,
            random_state=0, cache=tmp_path,
        )
        cold = paper_corpus(**kw)
        assert fresh_metrics.counter("runner.experiments_total").value > 0
        set_metrics(MetricsRegistry())
        from repro.obs.metrics import get_metrics

        warm = paper_corpus(**kw)
        assert get_metrics().counter("runner.experiments_total").value == 0
        assert repositories_equal(cold, warm)
