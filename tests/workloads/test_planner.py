import numpy as np
import pytest

from repro.workloads.catalog import tpcc, tpch, twitter, ycsb
from repro.workloads.engine.planner import QueryPlanner
from repro.workloads.features import PLAN_FEATURES
from repro.workloads.sku import SKU


def planner_for(workload, cpus=16, memory_gb=32.0):
    return QueryPlanner(workload, SKU(cpus=cpus, memory_gb=memory_gb))


class TestPlanRows:
    def test_all_features_present(self, rng):
        workload = tpcc()
        row = planner_for(workload).plan_row(workload.transactions[0], rng)
        assert set(row) == set(PLAN_FEATURES)

    def test_values_non_negative(self, rng):
        workload = tpch()
        for txn in workload.transactions[:5]:
            row = planner_for(workload).plan_row(txn, rng)
            assert all(v >= 0 for v in row.values())

    def test_avg_row_size_tracks_profile(self, rng):
        workload = twitter()
        txn = workload.transaction("GetTweet")
        row = planner_for(workload).plan_row(txn, rng)
        assert row["AvgRowSize"] == pytest.approx(145, rel=0.3)

    def test_granted_memory_capped_by_available(self, rng):
        workload = tpch()  # grants in the GB range
        planner = planner_for(workload, memory_gb=8.0)
        for txn in workload.transactions[:8]:
            row = planner.plan_row(txn, rng)
            assert row["GrantedMemory"] <= row["EstimatedAvailableMemoryGrant"] * 1.1

    def test_dop_is_pure_hardware_property(self, rng):
        rows = {}
        for workload in (tpcc(), twitter()):
            planner = planner_for(workload, cpus=8)
            rows[workload.name] = planner.plan_row(
                workload.transactions[0], rng
            )["EstimatedAvailableDegreeOfParallelism"]
        # Identical across workloads on the same SKU: uninformative, as the
        # paper finds.
        assert rows["tpcc"] == rows["twitter"] == 8.0

    def test_dop_capped_at_eight(self, rng):
        workload = tpcc()
        row = planner_for(workload, cpus=64).plan_row(
            workload.transactions[0], rng
        )
        assert row["EstimatedAvailableDegreeOfParallelism"] == 8.0

    def test_rebinds_rewinds_tiny(self, rng):
        workload = tpcc()
        planner = planner_for(workload)
        values = [
            planner.plan_row(workload.transactions[0], rng)["EstimateRebinds"]
            for _ in range(50)
        ]
        assert np.mean(values) < 1.0


class TestObservePlans:
    def test_row_count(self):
        workload = tpcc()
        matrix, names = planner_for(workload).observe_plans(
            observations_per_query=3, random_state=0
        )
        assert matrix.shape == (15, 22)  # 5 transactions x 3 observations
        assert len(names) == 15

    def test_each_query_observed_equally(self):
        workload = ycsb()
        _, names = planner_for(workload).observe_plans(
            observations_per_query=3, random_state=0
        )
        from collections import Counter

        assert set(Counter(names).values()) == {3}

    def test_deterministic_with_seed(self):
        workload = twitter()
        a, _ = planner_for(workload).observe_plans(random_state=7)
        b, _ = planner_for(workload).observe_plans(random_state=7)
        np.testing.assert_array_equal(a, b)

    def test_workload_signatures_differ(self):
        """Plan features must separate analytic from point-lookup workloads."""
        idx = PLAN_FEATURES.index("EstimatedRowsRead")
        tpch_rows, _ = planner_for(tpch()).observe_plans(random_state=0)
        twitter_rows, _ = planner_for(twitter()).observe_plans(random_state=0)
        assert tpch_rows[:, idx].mean() > 1000 * twitter_rows[:, idx].mean()
