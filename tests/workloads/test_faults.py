"""Crash-safety of the grid executor under deterministic fault injection.

Every failure mode an hours-long corpus build meets — transient task
exceptions, dying worker processes, poisoned telemetry, torn cache
writes, and a SIGKILL of the build itself — is injected here through
:mod:`repro.workloads.faults` and must leave the build either complete
and **bit-identical** to an undisturbed one, or incomplete with the
failed tasks quarantined on the report; never aborted, never silently
wrong.

The CI fault matrix replays this file once per injector class by setting
``REPRO_FAULT_CLASS``; tests for other classes skip, the harness and
resume tests run in every leg.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.workloads import (
    SKU,
    CorpusCache,
    FaultPlan,
    KillSwitch,
    ResumeJournal,
    RetryPolicy,
    TaskExceptionInjector,
    TelemetryFaultInjector,
    TornWriteInjector,
    WorkerDeathInjector,
    enumerate_grid,
    execute_grid,
    repositories_equal,
    run_experiments,
    workload_by_name,
)
from repro.workloads.faults import (
    INJECTOR_CLASSES,
    InjectedKill,
    InjectedTaskError,
    InjectedWorkerDeath,
)
from repro.workloads.gridexec import as_retry_policy

#: Set by the CI fault-matrix job to run one injector class per leg.
FAULT_CLASS = os.environ.get("REPRO_FAULT_CLASS")

#: Retries without sleeping — the backoff schedule is tested separately.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


def fault_class(name):
    """Skip unless this matrix leg (if any) selects injector ``name``."""
    return pytest.mark.skipif(
        FAULT_CLASS is not None and FAULT_CLASS != name,
        reason=f"REPRO_FAULT_CLASS={FAULT_CLASS} selects another injector",
    )


@pytest.fixture
def fresh_metrics():
    """Install an isolated registry; restore the previous one after."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def tiny_tasks(random_state=17, n_runs=2):
    return enumerate_grid(
        [workload_by_name("tpcc"), workload_by_name("twitter")],
        [SKU(cpus=4, memory_gb=32.0)],
        terminals_for=lambda w: (2,),
        n_runs=n_runs,
        duration_s=120.0,
        sample_interval_s=10.0,
        random_state=random_state,
    )


@pytest.fixture(scope="module")
def clean_results():
    """An undisturbed serial build, the bit-identical reference."""
    return list(execute_grid(tiny_tasks(), journal=False))


class TestRetryPolicy:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_base_s=-1.0)

    def test_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_cap_s=3.0)
        assert policy.delay_s(1) == 0.5
        assert policy.delay_s(2) == 1.0
        assert policy.delay_s(3) == 2.0
        assert policy.delay_s(4) == 3.0  # capped
        assert policy.delay_s(10) == 3.0

    def test_zero_base_never_sleeps(self):
        assert RetryPolicy(backoff_base_s=0.0).delay_s(5) == 0.0

    def test_as_retry_policy(self):
        assert as_retry_policy(None) == RetryPolicy()
        assert as_retry_policy(5).max_attempts == 5
        policy = RetryPolicy(max_attempts=2)
        assert as_retry_policy(policy) is policy
        with pytest.raises(TypeError):
            as_retry_policy("twice")


class TestResumeJournal:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ResumeJournal(path)
        assert len(journal) == 0
        journal.record("a" * 64, "tpcc@4c32gx2t-r0g0")
        journal.record("b" * 64)
        assert "a" * 64 in journal
        assert len(journal) == 2
        reloaded = ResumeJournal(path)
        assert reloaded.keys() == {"a" * 64, "b" * 64}

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ResumeJournal(path)
        journal.record("a" * 64)
        journal.record("a" * 64)
        assert len(path.read_text().splitlines()) == 1

    def test_tolerates_torn_tail(self, tmp_path):
        """A SIGKILL mid-append leaves a torn last line; it is skipped."""
        path = tmp_path / "journal.jsonl"
        journal = ResumeJournal(path)
        journal.record("a" * 64)
        journal.record("b" * 64)
        with path.open("a") as handle:
            handle.write('{"key": "cccc')  # torn by the kill
        reloaded = ResumeJournal(path)
        assert reloaded.keys() == {"a" * 64, "b" * 64}
        # Appending after a torn tail keeps the file parseable.
        reloaded.record("d" * 64)
        assert ResumeJournal(path).keys() == {"a" * 64, "b" * 64, "d" * 64}

    def test_missing_file_is_empty(self, tmp_path):
        assert len(ResumeJournal(tmp_path / "absent.jsonl")) == 0


class TestInjectorDeterminism:
    @pytest.mark.parametrize("name", sorted(INJECTOR_CLASSES))
    def test_selection_is_stable_and_seeded(self, name):
        cls = INJECTOR_CLASSES[name]
        tasks = tiny_tasks()
        chosen = [cls(0.5, seed=1).selects(t) for t in tasks]
        assert chosen == [cls(0.5, seed=1).selects(t) for t in tasks]
        assert chosen != [cls(0.5, seed=2).selects(t) for t in tasks]
        assert all(cls(1.0).selects(t) for t in tasks)
        assert not any(cls(0.0).selects(t) for t in tasks)

    def test_max_failures_bounds_attempts(self):
        task = tiny_tasks()[0]
        injector = TaskExceptionInjector(1.0, max_failures=2)
        assert injector.fires(task, 0)
        assert injector.fires(task, 1)
        assert not injector.fires(task, 2)

    def test_injection_is_counted(self, fresh_metrics):
        TaskExceptionInjector(1.0).fires(tiny_tasks()[0], 0)
        assert fresh_metrics.counter("faults.injected_total").value == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TaskExceptionInjector(1.5)
        with pytest.raises(ValueError):
            TaskExceptionInjector(1.0, max_failures=-1)
        with pytest.raises(ValueError):
            TelemetryFaultInjector(mode="flip")
        with pytest.raises(ValueError):
            TornWriteInjector(mode="shred")
        with pytest.raises(ValueError):
            KillSwitch(-1)


@fault_class("task-exception")
class TestTaskExceptionFaults:
    def test_transient_failures_are_retried(
        self, clean_results, fresh_metrics
    ):
        faults = FaultPlan(TaskExceptionInjector(1.0, max_failures=1))
        results = execute_grid(
            tiny_tasks(), retry=FAST_RETRY, faults=faults, journal=False
        )
        report = results.report
        assert report.n_quarantined == 0
        assert report.n_retried == len(results)
        assert fresh_metrics.counter("gridexec.retries_total").value == len(
            results
        )
        for clean, faulted in zip(clean_results, results):
            assert np.array_equal(
                clean.throughput_series, faulted.throughput_series
            )

    def test_persistent_failures_are_quarantined_not_fatal(
        self, fresh_metrics
    ):
        tasks = tiny_tasks()
        faults = FaultPlan(
            TaskExceptionInjector(0.5, seed=7, max_failures=99)
        )
        doomed = {t.task_id for t in tasks if faults.injectors[0].selects(t)}
        assert 0 < len(doomed) < len(tasks)  # the rate splits this grid
        results = execute_grid(
            tasks, retry=FAST_RETRY, faults=faults, journal=False
        )
        report = results.report
        assert {task_id for task_id, _ in report.quarantined} == doomed
        assert report.n_quarantined == len(doomed)
        assert report.n_executed == len(tasks) - len(doomed)
        for task, result in zip(tasks, results):
            assert (result is None) == (task.task_id in doomed)
        for _, reason in report.quarantined:
            assert InjectedTaskError.__name__ in reason
        assert fresh_metrics.counter(
            "gridexec.quarantined_total"
        ).value == len(doomed)

    def test_run_experiments_drops_quarantined(self):
        faults = FaultPlan(
            TaskExceptionInjector(0.5, seed=7, max_failures=99)
        )
        repository = run_experiments(
            [workload_by_name("tpcc"), workload_by_name("twitter")],
            [SKU(cpus=4, memory_gb=32.0)],
            terminals_for=lambda w: (2,),
            n_runs=2,
            duration_s=120.0,
            random_state=17,
            retry=FAST_RETRY,
            faults=faults,
        )
        assert 0 < len(repository) < 4

    def test_parallel_retry_matches_clean_build(self, clean_results):
        faults = FaultPlan(TaskExceptionInjector(1.0, max_failures=1))
        results = execute_grid(
            tiny_tasks(), jobs=2, retry=FAST_RETRY, faults=faults,
            journal=False,
        )
        assert results.report.n_quarantined == 0
        assert results.report.n_retried == len(results)
        for clean, faulted in zip(clean_results, results):
            assert np.array_equal(
                clean.resource_series, faulted.resource_series
            )


@fault_class("worker-death")
class TestWorkerDeathFaults:
    def test_serial_death_is_retried(self, clean_results):
        faults = FaultPlan(WorkerDeathInjector(1.0, max_failures=1))
        results = execute_grid(
            tiny_tasks(), retry=FAST_RETRY, faults=faults, journal=False
        )
        assert results.report.n_quarantined == 0
        assert results.report.n_retried == len(results)
        for clean, faulted in zip(clean_results, results):
            assert np.array_equal(
                clean.throughput_series, faulted.throughput_series
            )

    def test_dead_workers_never_abort_parallel_build(
        self, clean_results, fresh_metrics
    ):
        """A worker hard-exiting breaks the pool; the build rebuilds it."""
        faults = FaultPlan(WorkerDeathInjector(0.5, seed=5, max_failures=1))
        results = execute_grid(
            tiny_tasks(), jobs=2, retry=FAST_RETRY, faults=faults,
            journal=False,
        )
        report = results.report
        assert report.n_quarantined == 0
        assert report.n_executed == len(results)
        assert report.n_retried > 0
        assert (
            fresh_metrics.counter("gridexec.pool_rebuilds_total").value > 0
        )
        for clean, faulted in zip(clean_results, results):
            assert np.array_equal(
                clean.throughput_series, faulted.throughput_series
            )

    def test_every_worker_dying_still_completes(self, clean_results):
        faults = FaultPlan(WorkerDeathInjector(1.0, max_failures=1))
        results = execute_grid(
            tiny_tasks(), jobs=2, retry=FAST_RETRY, faults=faults,
            journal=False,
        )
        assert results.report.n_quarantined == 0
        for clean, faulted in zip(clean_results, results):
            assert np.array_equal(
                clean.throughput_series, faulted.throughput_series
            )

    def test_serial_mode_raises_instead_of_exiting(self):
        injector = WorkerDeathInjector(1.0, max_failures=1)
        with pytest.raises(InjectedWorkerDeath):
            injector.before_run(tiny_tasks()[0], 0, in_worker=False)


@fault_class("telemetry")
class TestTelemetryFaults:
    def test_nan_window_is_caught_and_retried(self, clean_results):
        """NaN telemetry must never reach the repository or the cache."""
        faults = FaultPlan(TelemetryFaultInjector(1.0, max_failures=1))
        results = execute_grid(
            tiny_tasks(), retry=FAST_RETRY, faults=faults, journal=False
        )
        assert results.report.n_quarantined == 0
        assert results.report.n_retried == len(results)
        for clean, faulted in zip(clean_results, results):
            assert np.isfinite(faulted.throughput_series).all()
            assert np.array_equal(
                clean.throughput_series, faulted.throughput_series
            )

    def test_nan_never_lands_in_the_cache(self, tmp_path):
        faults = FaultPlan(TelemetryFaultInjector(1.0, max_failures=99))
        cache = CorpusCache(tmp_path)
        results = execute_grid(
            tiny_tasks(), cache=cache, retry=FAST_RETRY, faults=faults
        )
        assert results.report.n_quarantined == len(results)
        assert len(cache) == 0

    def test_zero_window_survives_as_finite_data(self):
        """All-zero windows are valid telemetry, not an execution fault."""
        faults = FaultPlan(
            TelemetryFaultInjector(1.0, max_failures=1, mode="zero")
        )
        results = execute_grid(
            tiny_tasks(), retry=FAST_RETRY, faults=faults, journal=False
        )
        report = results.report
        assert report.n_quarantined == 0
        assert report.n_retried == 0
        for result in results:
            window = max(1, result.throughput_series.size // 10)
            assert (result.throughput_series[:window] == 0.0).all()


@fault_class("torn-write")
class TestTornWriteFaults:
    @pytest.mark.parametrize("mode", TornWriteInjector.MODES)
    def test_torn_entries_miss_and_rebuild_recomputes(
        self, tmp_path, mode, fresh_metrics
    ):
        """The regression test for the sidecar-first write-ordering bug."""
        tasks = tiny_tasks()
        cache = CorpusCache(tmp_path)
        faults = FaultPlan(TornWriteInjector(1.0, mode=mode))
        cold = execute_grid(tasks, cache=cache, faults=faults)
        assert cold.report.n_quarantined == 0
        set_metrics(MetricsRegistry())
        warm = execute_grid(tasks, cache=cache)
        registry = get_metrics()
        assert registry.counter("corpus_cache.hits_total").value == 0
        assert warm.report.n_executed == len(tasks)
        for a, b in zip(cold, warm):
            assert np.array_equal(a.throughput_series, b.throughput_series)

    @pytest.mark.parametrize("mode", TornWriteInjector.MODES)
    def test_verify_finds_exactly_the_torn_entries(self, tmp_path, mode):
        tasks = tiny_tasks()
        cache = CorpusCache(tmp_path)
        injector = TornWriteInjector(0.5, seed=11, mode=mode)
        torn = {cache.task_key(t) for t in tasks if injector.selects(t)}
        assert 0 < len(torn) < len(tasks)
        execute_grid(tasks, cache=cache, faults=FaultPlan(injector))
        outcome = cache.verify()
        assert not outcome.clean
        if mode == "drop-sidecar":
            flagged = {
                path.split("/")[-1].split(".")[0]
                for path in outcome.orphaned
            }
        else:
            flagged = set(outcome.corrupt)
        assert flagged == torn

    def test_repair_restores_a_clean_cache(self, tmp_path):
        tasks = tiny_tasks()
        cache = CorpusCache(tmp_path)
        faults = FaultPlan(TornWriteInjector(1.0, mode="truncate-npz"))
        execute_grid(tasks, cache=cache, faults=faults)
        assert not cache.verify().clean
        repaired = cache.verify(repair=True)
        assert repaired.repaired
        assert cache.verify().clean
        assert len(cache) == 0


class TestKillAndResume:
    """The ISSUE acceptance criterion: kill mid-build, resume for free."""

    def kill_then_resume(self, tmp_path, *, jobs=None, kill_after=2):
        tasks = tiny_tasks()
        clean = execute_grid(tasks, journal=False)
        cache = CorpusCache(tmp_path)
        with pytest.raises(InjectedKill):
            execute_grid(
                tasks, jobs=jobs, cache=cache,
                faults=FaultPlan(KillSwitch(kill_after)),
            )
        journal = ResumeJournal(tmp_path / "journal.jsonl")
        assert len(journal) == kill_after
        set_metrics(MetricsRegistry())
        resumed = execute_grid(tasks, jobs=jobs, cache=cache)
        return tasks, clean, resumed, get_metrics()

    def test_resume_recomputes_nothing_completed(
        self, tmp_path, fresh_metrics
    ):
        tasks, clean, resumed, registry = self.kill_then_resume(tmp_path)
        report = resumed.report
        assert report.n_resumed == 2
        assert report.cache_hits == 2
        assert report.n_executed == len(tasks) - 2
        assert registry.counter("runner.experiments_total").value == (
            len(tasks) - 2
        )
        assert registry.counter("gridexec.resumed_total").value == 2
        from repro.workloads.repository import results_equal

        for a, b in zip(clean, resumed):
            assert results_equal(a, b)

    def test_parallel_resume_matches_clean_build(
        self, tmp_path, fresh_metrics
    ):
        tasks, clean, resumed, registry = self.kill_then_resume(
            tmp_path, jobs=2
        )
        assert resumed.report.n_resumed == 2
        assert registry.counter("runner.experiments_total").value == (
            len(tasks) - 2
        )
        from repro.workloads.repository import results_equal

        for a, b in zip(clean, resumed):
            assert results_equal(a, b)

    def test_resume_through_run_experiments(self, tmp_path, fresh_metrics):
        """End to end: a killed corpus build resumes bit-identically."""
        grid = dict(
            workloads=[workload_by_name("tpcc"),
                       workload_by_name("twitter")],
            skus=[SKU(cpus=4, memory_gb=32.0)],
        )
        kw = dict(
            terminals_for=lambda w: (2,),
            n_runs=2,
            duration_s=120.0,
            random_state=17,
        )
        clean = run_experiments(grid["workloads"], grid["skus"], **kw)
        with pytest.raises(InjectedKill):
            run_experiments(
                grid["workloads"], grid["skus"], cache=tmp_path,
                faults=FaultPlan(KillSwitch(2)), **kw,
            )
        set_metrics(MetricsRegistry())
        resumed = run_experiments(
            grid["workloads"], grid["skus"], cache=tmp_path, **kw
        )
        assert get_metrics().counter("runner.experiments_total").value == 2
        assert repositories_equal(clean, resumed)

    def test_journal_false_disables_journalling(self, tmp_path):
        cache = CorpusCache(tmp_path)
        execute_grid(tiny_tasks(), cache=cache, journal=False)
        assert not (tmp_path / "journal.jsonl").exists()

    def test_journal_lines_name_tasks(self, tmp_path):
        cache = CorpusCache(tmp_path)
        tasks = tiny_tasks()
        execute_grid(tasks, cache=cache)
        lines = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert {entry["key"] for entry in lines} == {
            cache.task_key(t) for t in tasks
        }
        assert {entry["task_id"] for entry in lines} == {
            t.task_id for t in tasks
        }
