"""PBench-style headline test: synthesized clones rank closest to their
templates.

For each of the six catalog workloads, record a template experiment,
synthesize a clone from its telemetry alone (:func:`synthesize_clone`),
and assert (a) the clone passes property verification within the declared
decade tolerances and (b) the similarity pipeline — given the full
six-workload reference corpus — ranks the clone nearest to its template,
across at least two distance measures.  This is the end-to-end contract
that makes synthesized workloads usable as pipeline inputs: a clone that
verified but ranked elsewhere would poison similarity-based prediction.
"""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig, WorkloadPredictionPipeline
from repro.workloads import (
    SKU,
    ExperimentRepository,
    ExperimentRunner,
    SynthesisContext,
    expand_subexperiments,
    synthesize_clone,
    workload_by_name,
)
from repro.workloads.catalog import WORKLOAD_NAMES
from repro.workloads.synth import (
    PLAN_PROPERTIES,
    RESOURCE_PROPERTIES,
    _seed_stream,
    simulate_spec,
)

SYNTH_SEED = 7

#: The telemetry channels the synthesizer steers double as the
#: similarity features, so ranking exercises exactly what was matched.
FEATURES = RESOURCE_PROPERTIES + PLAN_PROPERTIES

MEASURES = ("L2,1", "Canb")


def _template(name):
    runner = ExperimentRunner(workload_by_name(name), random_state=123)
    return runner.run(
        SKU(cpus=16, memory_gb=32.0),
        terminals=1 if name in ("tpch", "tpcds") else 8,
        duration_s=600.0,
        seed=42,
    )


@pytest.fixture(scope="module")
def templates():
    """One recorded template experiment per catalog workload."""
    return {name: _template(name) for name in WORKLOAD_NAMES}


@pytest.fixture(scope="module")
def references(templates):
    """The six templates as a sub-experiment reference corpus."""
    return expand_subexperiments(
        ExperimentRepository(list(templates.values())), n_subexperiments=4
    )


@pytest.fixture(scope="module")
def clones(templates):
    """Verified synthesis results, one clone per template."""
    return {
        name: synthesize_clone(template, seed=SYNTH_SEED)
        for name, template in templates.items()
    }


@pytest.fixture(scope="module")
def clone_corpora(templates, clones):
    """Each clone simulated fresh and expanded into sub-experiments."""
    corpora = {}
    for name, result in clones.items():
        context = SynthesisContext.from_result(templates[name])
        runs = simulate_spec(
            result.spec,
            context,
            seeds=_seed_stream(SYNTH_SEED, "verify", 1),
        )
        corpora[name] = expand_subexperiments(
            ExperimentRepository(runs), n_subexperiments=4
        )
    return corpora


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_clone_passes_verification(clones, name):
    result = clones[name]
    report = result.report
    assert report is not None
    failed = ", ".join(
        f"{c.name} (err {c.error:+.3f} dec, tol {c.tolerance})"
        for c in report.failures
    )
    assert report.passed, f"clone of {name!r} missed targets: {failed}"


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_refinement_stays_bounded(clones, name):
    """Trace fitting starts close enough that refinement stays cheap."""
    assert clones[name].refine_iterations <= 8


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_clone_ranks_first(references, clone_corpora, name, measure):
    pipeline = WorkloadPredictionPipeline(
        PipelineConfig(representation="hist", measure=measure)
    )
    ranking = pipeline.rank_similarity(
        references, clone_corpora[name], FEATURES
    )
    ordered = [workload for workload, _ in ranking.ordered]
    assert ranking.nearest == name, (
        f"clone of {name!r} ranked {ordered} under {measure}"
    )
