import pytest

from repro.exceptions import ValidationError
from repro.workloads.sku import (
    SKU,
    paper_cpu_skus,
    production_sku,
    sku_s1,
    sku_s2,
)


class TestSKU:
    def test_default_name(self):
        assert SKU(cpus=4, memory_gb=32.0).name == "4cpu-32gb"

    def test_custom_name(self):
        assert SKU(cpus=4, memory_gb=32.0, name="custom").name == "custom"

    def test_frozen(self):
        sku = SKU(cpus=2, memory_gb=8.0)
        with pytest.raises(AttributeError):
            sku.cpus = 4

    def test_invalid_cpus(self):
        with pytest.raises(ValidationError):
            SKU(cpus=0, memory_gb=8.0)

    def test_invalid_memory(self):
        with pytest.raises(ValidationError):
            SKU(cpus=1, memory_gb=0.0)

    def test_invalid_iops(self):
        with pytest.raises(ValidationError):
            SKU(cpus=1, memory_gb=8.0, iops_capacity=-1)


class TestCatalog:
    def test_paper_skus_cpu_counts(self):
        assert [s.cpus for s in paper_cpu_skus()] == [2, 4, 8, 16]

    def test_paper_skus_fixed_memory(self):
        assert {s.memory_gb for s in paper_cpu_skus()} == {32.0}

    def test_s1_s2_match_section_6_2_3(self):
        assert (sku_s1().cpus, sku_s1().memory_gb) == (4, 32.0)
        assert (sku_s2().cpus, sku_s2().memory_gb) == (8, 64.0)

    def test_production_sku_is_80_vcores(self):
        assert production_sku().cpus == 80
