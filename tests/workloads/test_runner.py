import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads import ExperimentRunner, SKU, workload_by_name
from repro.workloads.features import ALL_FEATURES


class TestExperimentResult:
    def test_telemetry_shapes(self, tpcc_run):
        assert tpcc_run.resource_series.shape == (360, 7)
        assert tpcc_run.throughput_series.shape == (360,)
        assert tpcc_run.plan_matrix.shape == (15, 22)

    def test_feature_vector_ordering(self, tpcc_run):
        vector = tpcc_run.feature_vector()
        assert vector.shape == (29,)
        np.testing.assert_allclose(vector[:7], tpcc_run.resource_means())
        np.testing.assert_allclose(vector[7:], tpcc_run.plan_means())

    def test_feature_samples_lookup(self, tpcc_run):
        for name in ALL_FEATURES:
            samples = tpcc_run.feature_samples(name)
            assert samples.ndim == 1 and samples.size > 0

    def test_feature_samples_unknown(self, tpcc_run):
        with pytest.raises(ValidationError):
            tpcc_run.feature_samples("Bogus")

    def test_experiment_id_format(self, tpcc_run):
        assert tpcc_run.experiment_id == "tpcc@8cpu-32gbx8t-r0g0"

    def test_latency_series_inverse_of_throughput(self, tpcc_run):
        latency = tpcc_run.latency_series_ms()
        np.testing.assert_allclose(
            latency, 8 / tpcc_run.throughput_series * 1000.0
        )

    def test_per_txn_weights_normalized(self, tpcc_run):
        assert sum(tpcc_run.per_txn_weights.values()) == pytest.approx(1.0)


class TestExperimentRunner:
    def test_duration_controls_samples(self):
        runner = ExperimentRunner(workload_by_name("twitter"), random_state=0)
        result = runner.run(
            SKU(cpus=4, memory_gb=32.0), terminals=8, duration_s=600.0
        )
        assert result.n_samples == 60

    def test_throughput_series_centers_on_steady_state(self, tpcc_run):
        # Ignore the warmup ramp at the start.
        steady = tpcc_run.throughput_series[30:]
        assert steady.mean() == pytest.approx(tpcc_run.throughput, rel=0.1)

    def test_repetitions_assign_data_groups(self):
        runner = ExperimentRunner(workload_by_name("twitter"), random_state=0)
        runs = runner.run_repetitions(
            SKU(cpus=4, memory_gb=32.0), terminals=8, duration_s=600.0
        )
        assert [r.data_group for r in runs] == [0, 1, 2]
        assert [r.run_index for r in runs] == [0, 1, 2]

    def test_runner_seed_reproducible(self):
        sku = SKU(cpus=4, memory_gb=32.0)
        a = ExperimentRunner(workload_by_name("tpcc"), random_state=5).run(
            sku, terminals=8, duration_s=600.0
        )
        b = ExperimentRunner(workload_by_name("tpcc"), random_state=5).run(
            sku, terminals=8, duration_s=600.0
        )
        np.testing.assert_array_equal(a.resource_series, b.resource_series)
        assert a.throughput == b.throughput

    def test_invalid_duration(self):
        runner = ExperimentRunner(workload_by_name("tpcc"))
        with pytest.raises(ValidationError):
            runner.run(SKU(cpus=2, memory_gb=32.0), duration_s=0.0)

    def test_plan_observations_parameter(self):
        runner = ExperimentRunner(workload_by_name("tpcc"), random_state=0)
        result = runner.run(
            SKU(cpus=2, memory_gb=32.0),
            terminals=4,
            duration_s=600.0,
            plan_observations=5,
        )
        assert result.plan_matrix.shape[0] == 25

    def test_repetitions_forward_plan_observations(self):
        """``run_repetitions`` must not silently drop ``plan_observations``."""
        runner = ExperimentRunner(workload_by_name("tpcc"), random_state=0)
        runs = runner.run_repetitions(
            SKU(cpus=2, memory_gb=32.0),
            terminals=4,
            n_runs=2,
            duration_s=600.0,
            plan_observations=5,
        )
        assert all(r.plan_matrix.shape[0] == 25 for r in runs)
        assert all(r.metadata["plan_observations"] == 5 for r in runs)

    def test_explicit_seed_overrides_internal_stream(self):
        sku = SKU(cpus=4, memory_gb=32.0)
        a = ExperimentRunner(workload_by_name("tpcc"), random_state=1).run(
            sku, terminals=8, duration_s=600.0, seed=999
        )
        b = ExperimentRunner(workload_by_name("tpcc"), random_state=2).run(
            sku, terminals=8, duration_s=600.0, seed=999
        )
        np.testing.assert_array_equal(a.resource_series, b.resource_series)
        assert a.metadata["seed"] == 999
