import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads import SKU
from repro.workloads.features import PLAN_FEATURES, RESOURCE_FEATURES
from repro.workloads.sampling import systematic_subexperiments
from repro.workloads.traces import (
    experiment_from_traces,
    plan_rows_from_csv,
    plan_rows_to_csv,
    resource_series_from_csv,
    resource_series_to_csv,
)


@pytest.fixture
def raw_traces(rng):
    resource = np.abs(rng.normal(50, 10, size=(40, len(RESOURCE_FEATURES))))
    plans = np.abs(rng.normal(100, 20, size=(6, len(PLAN_FEATURES))))
    names = ["q1", "q2", "q3", "q1", "q2", "q3"]
    throughput = np.abs(rng.normal(500, 30, size=40)) + 1
    return resource, plans, names, throughput


class TestExperimentFromTraces:
    def test_builds_first_class_result(self, raw_traces):
        resource, plans, names, throughput = raw_traces
        result = experiment_from_traces(
            workload_name="mytrace",
            workload_type="mixed",
            sku=SKU(cpus=8, memory_gb=32.0),
            terminals=16,
            resource_series=resource,
            plan_rows=plans,
            plan_txn_names=names,
            throughput_series=throughput,
        )
        assert result.workload_name == "mytrace"
        assert result.metadata["source"] == "trace"
        assert result.feature_vector().shape == (29,)
        assert result.throughput == pytest.approx(throughput.mean())

    def test_feeds_subexperiment_expansion(self, raw_traces):
        resource, plans, names, throughput = raw_traces
        result = experiment_from_traces(
            workload_name="mytrace", workload_type="mixed",
            sku=SKU(cpus=8, memory_gb=32.0), terminals=16,
            resource_series=resource, plan_rows=plans,
            plan_txn_names=names, throughput_series=throughput,
        )
        subs = systematic_subexperiments(result, n_subexperiments=4)
        assert len(subs) == 4
        assert all(s.plan_matrix.shape[0] == 3 for s in subs)

    def test_default_throughput_series(self, raw_traces):
        resource, plans, names, _ = raw_traces
        result = experiment_from_traces(
            workload_name="t", workload_type="mixed",
            sku=SKU(cpus=2, memory_gb=8.0), terminals=4,
            resource_series=resource, plan_rows=plans, plan_txn_names=names,
        )
        assert result.throughput_series.shape == (40,)

    def test_default_weights_from_row_counts(self, raw_traces):
        resource, plans, names, throughput = raw_traces
        result = experiment_from_traces(
            workload_name="t", workload_type="mixed",
            sku=SKU(cpus=2, memory_gb=8.0), terminals=4,
            resource_series=resource, plan_rows=plans,
            plan_txn_names=names, throughput_series=throughput,
        )
        assert result.per_txn_weights == {
            "q1": pytest.approx(1 / 3),
            "q2": pytest.approx(1 / 3),
            "q3": pytest.approx(1 / 3),
        }

    def test_wrong_resource_width(self, raw_traces):
        _, plans, names, _ = raw_traces
        with pytest.raises(ValidationError, match="resource_series"):
            experiment_from_traces(
                workload_name="t", workload_type="mixed",
                sku=SKU(cpus=2, memory_gb=8.0), terminals=4,
                resource_series=np.ones((10, 5)),
                plan_rows=plans, plan_txn_names=names,
            )

    def test_name_row_mismatch(self, raw_traces):
        resource, plans, _, _ = raw_traces
        with pytest.raises(ValidationError, match="plan_txn_names"):
            experiment_from_traces(
                workload_name="t", workload_type="mixed",
                sku=SKU(cpus=2, memory_gb=8.0), terminals=4,
                resource_series=resource, plan_rows=plans,
                plan_txn_names=["only-one"],
            )

    def test_nan_rejected(self, raw_traces):
        resource, plans, names, _ = raw_traces
        resource = resource.copy()
        resource[0, 0] = np.nan
        with pytest.raises(ValidationError, match="NaN"):
            experiment_from_traces(
                workload_name="t", workload_type="mixed",
                sku=SKU(cpus=2, memory_gb=8.0), terminals=4,
                resource_series=resource, plan_rows=plans,
                plan_txn_names=names,
            )


class TestCSVRoundTrip:
    def test_resource_round_trip(self, tpcc_run, tmp_path):
        path = tmp_path / "resource.csv"
        resource_series_to_csv(tpcc_run, path)
        restored = resource_series_from_csv(path)
        np.testing.assert_allclose(restored, tpcc_run.resource_series)

    def test_plan_round_trip(self, tpcc_run, tmp_path):
        path = tmp_path / "plans.csv"
        plan_rows_to_csv(tpcc_run, path)
        matrix, names = plan_rows_from_csv(path)
        np.testing.assert_allclose(matrix, tpcc_run.plan_matrix)
        assert names == tpcc_run.plan_txn_names

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            resource_series_from_csv(tmp_path / "nope.csv")

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValidationError, match="schema"):
            resource_series_from_csv(path)

    def test_non_numeric_cell(self, tmp_path, tpcc_run):
        path = tmp_path / "resource.csv"
        resource_series_to_csv(tpcc_run, path)
        lines = path.read_text().splitlines()
        cells = lines[1].split(",")
        cells[1] = "oops"
        lines[1] = ",".join(cells)
        path.write_text("\n".join(lines))
        with pytest.raises(ValidationError, match="non-numeric"):
            resource_series_from_csv(path)

    def test_empty_data(self, tmp_path):
        path = tmp_path / "empty.csv"
        from repro.workloads.features import RESOURCE_FEATURES

        path.write_text(",".join(["timestamp_s", *RESOURCE_FEATURES]) + "\n")
        with pytest.raises(ValidationError, match="no data rows"):
            resource_series_from_csv(path)
