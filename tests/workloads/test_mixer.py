import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads.catalog import tpcc, tpch, ycsb
from repro.workloads.engine import ExecutionEngine
from repro.workloads.mixer import blend_workloads, reweight_workload
from repro.workloads.sku import SKU
from repro.workloads.spec import WorkloadType


class TestReweight:
    def test_subset_and_weights(self):
        custom = reweight_workload(
            ycsb(), {"ReadRecord": 3.0, "ScanRecord": 1.0}
        )
        assert custom.n_transaction_types == 2
        np.testing.assert_allclose(custom.weights, [0.75, 0.25])

    def test_name_defaults_to_suffix(self):
        assert reweight_workload(ycsb(), {"ReadRecord": 1.0}).name == (
            "ycsb-custom"
        )

    def test_read_only_fraction_shifts(self):
        read_heavy = reweight_workload(
            ycsb(), {"ReadRecord": 9.0, "UpdateRecord": 1.0}
        )
        assert read_heavy.read_only_fraction == pytest.approx(0.9)

    def test_unknown_transaction(self):
        with pytest.raises(ValidationError, match="unknown transactions"):
            reweight_workload(ycsb(), {"Nope": 1.0})

    def test_non_positive_weight(self):
        with pytest.raises(ValidationError, match="positive"):
            reweight_workload(ycsb(), {"ReadRecord": 0.0})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_weight(self, bad):
        """``v <= 0`` alone silently accepts NaN; the finite check must
        catch it before it poisons every downstream weight average."""
        with pytest.raises(ValidationError, match="positive finite"):
            reweight_workload(ycsb(), {"ReadRecord": bad, "ScanRecord": 1.0})

    def test_runs_in_engine(self):
        custom = reweight_workload(
            ycsb(), {"ReadRecord": 1.0, "UpdateRecord": 1.0}, name="rw-mix"
        )
        op = ExecutionEngine(custom).steady_state(
            SKU(cpus=4, memory_gb=32.0), 8, noisy=False
        )
        assert op.throughput > 0


class TestBlend:
    def test_transaction_union_with_prefixes(self):
        blend = blend_workloads([(tpcc(), 1.0), (ycsb(), 1.0)])
        names = {t.name for t in blend.transactions}
        assert "tpcc:NewOrder" in names
        assert "ycsb:ReadRecord" in names
        assert blend.n_transaction_types == 11

    def test_share_weighting(self):
        heavy_tpcc = blend_workloads([(tpcc(), 3.0), (ycsb(), 1.0)])
        tpcc_weight = sum(
            w for t, w in zip(heavy_tpcc.transactions, heavy_tpcc.weights)
            if t.name.startswith("tpcc:")
        )
        assert tpcc_weight == pytest.approx(0.75)

    def test_scalar_properties_averaged(self):
        blend = blend_workloads([(tpcc(), 1.0), (tpch(), 1.0)])
        expected = 0.5 * (tpcc().working_set_gb + tpch().working_set_gb)
        assert blend.working_set_gb == pytest.approx(expected)

    def test_type_inference(self):
        analytical = blend_workloads([(tpch(), 1.0)])
        assert analytical.workload_type is WorkloadType.ANALYTICAL
        transactional = blend_workloads([(tpcc(), 1.0)])
        assert transactional.workload_type is WorkloadType.TRANSACTIONAL
        mixed = blend_workloads([(tpcc(), 1.0), (tpch(), 1.0)])
        assert mixed.workload_type is WorkloadType.MIXED

    def test_explicit_type_respected(self):
        blend = blend_workloads(
            [(tpcc(), 1.0)], workload_type=WorkloadType.MIXED
        )
        assert blend.workload_type is WorkloadType.MIXED

    def test_empty_components(self):
        with pytest.raises(ValidationError):
            blend_workloads([])

    def test_non_positive_share(self):
        with pytest.raises(ValidationError):
            blend_workloads([(tpcc(), 0.0)])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_share(self, bad):
        """A NaN share passes ``<= 0`` and would NaN every blended knob."""
        with pytest.raises(ValidationError, match="positive finite"):
            blend_workloads([(tpcc(), bad), (ycsb(), 1.0)])

    def test_blend_runs_end_to_end(self):
        blend = blend_workloads(
            [(tpcc(), 1.0), (ycsb(), 1.0)], name="htap"
        )
        from repro.workloads.runner import ExperimentRunner

        result = ExperimentRunner(blend, random_state=0).run(
            SKU(cpus=8, memory_gb=32.0), terminals=8, duration_s=600.0
        )
        assert result.workload_name == "htap"
        assert result.plan_matrix.shape[0] == 11 * 3
