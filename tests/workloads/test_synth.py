"""Unit tests for the workload synthesizer (`repro.workloads.synth`).

Covers property measurement and target extraction, verification report
structure and serialization, the spec-space sampler's validation and
telemetry plumbing, trace fitting on catalog templates, and the bounded
refinement loop — including recovery from a deliberately mis-fitted
starting spec.  End-to-end clone quality (all six catalog workloads
passing verification and ranking first) lives in
``test_synth_clone_ranking.py``.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.workloads import (
    SKU,
    ExperimentRunner,
    PropertyTarget,
    RefineSettings,
    SynthesisContext,
    SynthesisReport,
    SynthesisTargets,
    calibration_targets,
    extract_targets,
    measure_properties,
    refine,
    results_equal,
    sample_specs,
    simulate_spec,
    spec_from_trace,
    synthesize,
    synthesize_clone,
    verify_synthesis,
    workload_by_name,
)
from repro.workloads.features import PLAN_FEATURES, RESOURCE_FEATURES
from repro.workloads.synth import (
    DEFAULT_PLAN_TOLERANCE,
    DEFAULT_RESOURCE_TOLERANCE,
    PERF_PROPERTIES,
    PLAN_PROPERTIES,
    RESOURCE_PROPERTIES,
    _seed_stream,
    default_properties,
    default_tolerance,
)


@pytest.fixture(scope="module")
def template():
    """One full TPC-C experiment, the synthesis template for this module."""
    runner = ExperimentRunner(workload_by_name("tpcc"), random_state=123)
    return runner.run(
        SKU(cpus=16, memory_gb=32.0), terminals=8, duration_s=600.0, seed=42
    )


@pytest.fixture(scope="module")
def context(template):
    return SynthesisContext.from_result(template)


@pytest.fixture()
def metrics():
    """A fresh metrics registry installed for the duration of one test."""
    registry = MetricsRegistry()
    set_metrics(registry)
    yield registry
    set_metrics(MetricsRegistry())


class TestPropertyRegistry:
    def test_default_properties_cover_all_kinds(self):
        names = default_properties()
        assert len(names) == len(set(names))
        assert names == (
            tuple(f"resource:{n}" for n in RESOURCE_PROPERTIES)
            + tuple(f"plan:{n}" for n in PLAN_PROPERTIES)
            + tuple(f"perf:{n}" for n in PERF_PROPERTIES)
        )

    def test_lock_wait_is_not_a_property(self):
        """The convoy-lottery channel must stay out of the contract."""
        assert "resource:LOCK_WAIT_ABS" not in default_properties()

    def test_default_tolerances_by_kind(self):
        assert default_tolerance("resource:IOPS_TOTAL") == (
            DEFAULT_RESOURCE_TOLERANCE
        )
        assert default_tolerance("plan:AvgRowSize") == DEFAULT_PLAN_TOLERANCE

    def test_unknown_property_rejected(self):
        with pytest.raises(ValidationError, match="unknown synthesis"):
            default_tolerance("latency")


class TestSeedStreams:
    def test_deterministic_and_purpose_disjoint(self):
        a = _seed_stream(5, "calibration", 4)
        assert a == _seed_stream(5, "calibration", 4)
        assert a != _seed_stream(5, "verify", 4)
        assert a != _seed_stream(6, "calibration", 4)

    def test_prefix_stable(self):
        """Requesting more seeds extends the stream, never rewrites it."""
        assert _seed_stream(1, "verify", 2) == _seed_stream(1, "verify", 5)[:2]

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError, match="seed"):
            _seed_stream(-1, "verify", 1)


class TestMeasureProperties:
    def test_matches_manual_log_means(self, template):
        measured = measure_properties(template)
        iops = template.resource_series[
            :, RESOURCE_FEATURES.index("IOPS_TOTAL")
        ].mean()
        rows = template.plan_matrix[
            :, PLAN_FEATURES.index("StatementEstRows")
        ].mean()
        assert measured["resource:IOPS_TOTAL"] == pytest.approx(
            math.log10(iops + 1e-9)
        )
        assert measured["plan:StatementEstRows"] == pytest.approx(
            math.log10(rows + 1e-9)
        )
        assert measured["perf:throughput"] == pytest.approx(
            math.log10(template.throughput + 1e-9)
        )

    def test_single_result_equals_singleton_list(self, template):
        assert measure_properties(template) == measure_properties([template])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            measure_properties([])

    def test_unknown_property_rejected(self, template):
        with pytest.raises(ValidationError, match="unknown synthesis"):
            measure_properties(template, ("resource:NOPE",))


class TestTargets:
    def test_property_target_validation(self):
        with pytest.raises(ValidationError, match="finite"):
            PropertyTarget("perf:throughput", math.nan, 0.2)
        with pytest.raises(ValidationError, match="tolerance"):
            PropertyTarget("perf:throughput", 1.0, 0.0)
        with pytest.raises(ValidationError, match="tolerance"):
            PropertyTarget("perf:throughput", 1.0, math.inf)

    def test_duplicate_and_empty_rejected(self):
        target = PropertyTarget("perf:throughput", 1.0, 0.2)
        with pytest.raises(ValidationError, match="duplicate"):
            SynthesisTargets(properties=(target, target))
        with pytest.raises(ValidationError, match="at least one"):
            SynthesisTargets(properties=())

    def test_get_and_missing(self):
        targets = SynthesisTargets(
            properties=(PropertyTarget("perf:throughput", 1.0, 0.2),)
        )
        assert targets.get("perf:throughput").target == 1.0
        with pytest.raises(ValidationError, match="no target"):
            targets.get("resource:IOPS_TOTAL")

    def test_round_trip(self, template):
        targets = extract_targets(template)
        clone = SynthesisTargets.from_dict(targets.to_dict())
        assert clone == targets

    def test_extract_uses_defaults_and_overrides(self, template):
        targets = extract_targets(
            template, tolerances={"perf:throughput": 0.05}
        )
        assert targets.get("perf:throughput").tolerance == 0.05
        assert targets.get("plan:AvgRowSize").tolerance == (
            DEFAULT_PLAN_TOLERANCE
        )
        measured = measure_properties(template)
        for prop in targets.properties:
            assert prop.target == measured[prop.name]


class TestSynthesisContext:
    def test_from_result_mirrors_recording_conditions(self, template):
        context = SynthesisContext.from_result(template)
        assert context.sku == template.sku
        assert context.terminals == template.terminals
        assert context.duration_s == template.metadata["duration_s"]
        assert context.sample_interval_s == template.sample_interval_s


class TestSimulateSpec:
    def test_deterministic_for_fixed_seeds(self, context):
        spec = workload_by_name("twitter")
        a = simulate_spec(spec, context, seeds=[11, 12])
        b = simulate_spec(spec, context, seeds=[11, 12])
        assert len(a) == 2
        assert all(results_equal(x, y) for x, y in zip(a, b))

    def test_flows_through_corpus_cache(self, context, tmp_path, metrics):
        """Synthesized corpora are content-addressed like any corpus."""
        spec = workload_by_name("twitter")
        cache_dir = tmp_path / "cache"
        cold = simulate_spec(spec, context, seeds=[3], cache=cache_dir)
        assert metrics.counter("corpus_cache.hits_total").value == 0
        warm = simulate_spec(spec, context, seeds=[3], cache=cache_dir)
        assert metrics.counter("corpus_cache.hits_total").value == 1
        assert results_equal(cold[0], warm[0])


class TestVerifySynthesis:
    def test_self_targets_pass(self, template, context):
        """A catalog workload trivially verifies against its own targets."""
        spec = workload_by_name("tpcc")
        targets = calibration_targets(spec, context=context, seed=5)
        report = verify_synthesis(spec, targets, context=context, seed=5)
        assert report.passed
        assert report.failures == ()
        assert report.n_runs == 2
        assert {c.name for c in report.checks} == set(default_properties())

    def test_impossible_target_fails_and_counts(
        self, template, context, metrics
    ):
        targets = SynthesisTargets(
            properties=(PropertyTarget("perf:throughput", 10.0, 0.1),)
        )
        spec = workload_by_name("tpcc")
        report = verify_synthesis(spec, targets, context=context)
        assert not report.passed
        assert len(report.failures) == 1
        assert report.failures[0].error < 0
        assert metrics.counter("synth.verify_failures_total").value == 1

    def test_report_round_trip_and_render(self, template, context):
        spec = workload_by_name("tpcc")
        targets = calibration_targets(spec, context=context, seed=5)
        report = verify_synthesis(spec, targets, context=context, seed=5)
        clone = SynthesisReport.from_dict(report.to_dict())
        assert clone == report
        rendered = report.render()
        assert "PASSED" in rendered
        assert "perf:throughput" in rendered

    def test_n_runs_validated(self, context):
        targets = SynthesisTargets(
            properties=(PropertyTarget("perf:throughput", 1.0, 0.2),)
        )
        with pytest.raises(ValidationError, match="n_runs"):
            verify_synthesis(
                workload_by_name("tpcc"), targets, context=context, n_runs=0
            )


class TestSampler:
    def test_specs_generated_counter(self, metrics):
        sample_specs(4, seed=2)
        assert metrics.counter("synth.specs_generated_total").value == 4

    def test_negative_n_rejected(self):
        with pytest.raises(ValidationError, match=">= 0"):
            sample_specs(-1)


class TestSpecFromTrace:
    def test_read_only_template_yields_read_only_clone(self):
        runner = ExperimentRunner(workload_by_name("tpch"), random_state=123)
        tpl = runner.run(
            SKU(cpus=16, memory_gb=32.0),
            terminals=1,
            duration_s=600.0,
            seed=42,
        )
        spec = spec_from_trace(tpl)
        assert all(t.read_only for t in spec.transactions)
        assert spec.contention_factor == 0.0

    def test_mix_structure_preserved(self, template):
        spec = spec_from_trace(template, name="copy")
        assert spec.name == "copy"
        original = workload_by_name("tpcc")
        assert [t.name for t in spec.transactions] == [
            t.name for t in original.transactions
        ]
        np.testing.assert_allclose(
            spec.weights, original.weights, atol=1e-12
        )
        assert any(not t.read_only for t in spec.transactions)

    def test_empty_template_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            spec_from_trace([])


class TestRefine:
    def test_settings_validated(self):
        with pytest.raises(ValidationError, match="margin"):
            RefineSettings(margin=0.0)
        with pytest.raises(ValidationError, match="damping"):
            RefineSettings(damping=1.5)
        with pytest.raises(ValidationError, match="max_iters"):
            RefineSettings(max_iters=-1)

    def test_zero_iterations_returns_input_spec(self, template, context):
        targets = extract_targets(template)
        spec = spec_from_trace(template)
        best, iterations, residual = refine(
            spec,
            targets,
            context=context,
            seed=7,
            settings=RefineSettings(max_iters=0),
        )
        assert best == spec
        assert iterations == 0
        assert math.isfinite(residual)

    def test_recovers_from_misfitted_start(self, template, context, metrics):
        """Refinement closes large deliberate errors in the initial spec."""
        targets = extract_targets(template)
        good = spec_from_trace(template)
        bad = replace(
            good,
            transactions=tuple(
                replace(
                    t,
                    cpu_ms=t.cpu_ms * 3.0,
                    logical_writes=t.logical_writes * 0.2,
                )
                for t in good.transactions
            ),
            working_set_gb=good.working_set_gb * 5.0,
            contention_factor=1.2,
        )
        result = synthesize(
            targets, initial_spec=bad, context=context, seed=7
        )
        assert result.refine_iterations >= 1
        assert result.report is not None and result.report.passed
        assert metrics.counter("synth.refine_iters_total").value == (
            result.refine_iterations
        )


class TestSynthesizeClone:
    def test_deterministic(self, template):
        a = synthesize_clone(template, seed=7, verify=False)
        b = synthesize_clone(template, seed=7, verify=False)
        assert a.spec == b.spec
        assert a.refine_iterations == b.refine_iterations
        assert a.residual == b.residual

    def test_residual_is_within_tolerance_fraction(self, template):
        result = synthesize_clone(template, seed=7)
        assert result.report is not None and result.report.passed
        for check in result.report.checks:
            assert abs(check.error) <= check.tolerance
