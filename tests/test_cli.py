"""CLI tests: every subcommand end to end through main()."""

import json

import pytest

from repro.cli import main
from repro.workloads import ExperimentRepository


@pytest.fixture(scope="module")
def repo_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tpcc.json"
    code = main(
        [
            "simulate", "--workload", "tpcc", "--cpus", "8",
            "--terminals", "8", "--runs", "2", "--duration-s", "900",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def mixed_corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.json"
    for i, workload in enumerate(("tpcc", "tpch", "twitter")):
        args = [
            "simulate", "--workload", workload, "--cpus", "8",
            "--terminals", "1" if workload == "tpch" else "8",
            "--runs", "2", "--duration-s", "900", "--seed", str(i),
            "--out", str(path),
        ]
        if i > 0:
            args.append("--append")
        assert main(args) == 0
    return path


class TestSimulate:
    def test_creates_repository(self, repo_file):
        repo = ExperimentRepository.load(repo_file)
        assert len(repo) == 2
        assert repo.workload_names() == ["tpcc"]

    def test_append_mode(self, tmp_path):
        path = tmp_path / "r.json"
        base = [
            "simulate", "--workload", "twitter", "--cpus", "4",
            "--runs", "1", "--duration-s", "600", "--out", str(path),
        ]
        assert main(base) == 0
        assert main(base + ["--append"]) == 0
        assert len(ExperimentRepository.load(path)) == 2

    def test_output_mentions_throughput(self, capsys, tmp_path):
        path = tmp_path / "o.json"
        main(
            [
                "simulate", "--workload", "ycsb", "--runs", "1",
                "--duration-s", "600", "--out", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert "txn/s" in out and "bottleneck" in out


class TestCorpus:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        """One cached paper-corpus build shared by the class."""
        root = tmp_path_factory.mktemp("corpus")
        out = root / "paper.npz"
        cache_dir = root / "cache"
        code = main(
            [
                "corpus", "--kind", "paper", "--runs", "1",
                "--duration-s", "300", "--out", str(out),
                "--cache-dir", str(cache_dir),
                "--manifest-out", str(root / "manifest.json"),
            ]
        )
        assert code == 0
        return out, cache_dir, root / "manifest.json"

    def test_build_writes_repository_and_manifest(self, built, capsys):
        out, cache_dir, manifest_path = built
        assert len(ExperimentRepository.load_npz(out)) > 0
        grid = json.loads(manifest_path.read_text())["extra"]["grid"]
        assert grid["quarantined"] == 0
        assert grid["retried"] == 0
        assert "resumed" in grid

    def test_build_requires_out(self, capsys):
        assert main(["corpus", "--kind", "paper", "--no-cache"]) == 2
        assert "--out is required" in capsys.readouterr().err

    def test_verify_requires_cache_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["corpus", "--verify"]) == 2
        assert "cache directory" in capsys.readouterr().err

    def test_verify_clean_cache(self, built, capsys):
        _, cache_dir, _ = built
        code = main(
            ["corpus", "--verify", "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 corrupt, 0 orphaned" in out

    def test_verify_then_repair_damaged_cache(self, built, capsys):
        _, cache_dir, _ = built
        victim = next(cache_dir.glob("??/*.npz"))
        victim.write_bytes(b"bit rot")
        assert main(
            ["corpus", "--verify", "--cache-dir", str(cache_dir)]
        ) == 1
        assert "1 corrupt" in capsys.readouterr().out
        assert main(
            ["corpus", "--repair", "--cache-dir", str(cache_dir)]
        ) == 0
        assert main(
            ["corpus", "--verify", "--cache-dir", str(cache_dir)]
        ) == 0


class TestSelect:
    def test_ranks_features(self, mixed_corpus_file, capsys):
        code = main(
            [
                "select", "--corpus", str(mixed_corpus_file),
                "--strategy", "fANOVA", "--top-k", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-5 features by fANOVA" in out
        assert out.count(". ") >= 5

    def test_unknown_strategy_exit_code(self, mixed_corpus_file, capsys):
        code = main(
            ["select", "--corpus", str(mixed_corpus_file),
             "--strategy", "Nope"]
        )
        assert code == 2


class TestSimilarity:
    def test_evaluates_method(self, mixed_corpus_file, capsys):
        code = main(
            [
                "similarity", "--corpus", str(mixed_corpus_file),
                "--representation", "hist", "--measure", "L2,1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1-NN accuracy" in out and "NDCG" in out

    def test_feature_subset(self, mixed_corpus_file, capsys):
        code = main(
            [
                "similarity", "--corpus", str(mixed_corpus_file),
                "--features", "AvgRowSize,CachedPlanSize",
            ]
        )
        assert code == 0
        assert "features       : 2" in capsys.readouterr().out

    def test_unknown_measure_is_handled(self, mixed_corpus_file, capsys):
        code = main(
            ["similarity", "--corpus", str(mixed_corpus_file),
             "--measure", "Hausdorff"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestCluster:
    def test_groups_by_workload(self, mixed_corpus_file, capsys):
        code = main(
            [
                "cluster", "--corpus", str(mixed_corpus_file),
                "--clusters", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "purity vs workload labels" in out
        assert "cluster" in out

    def test_kmedoids_method(self, mixed_corpus_file, capsys):
        code = main(
            [
                "cluster", "--corpus", str(mixed_corpus_file),
                "--clusters", "2", "--method", "kmedoids",
            ]
        )
        assert code == 0

    def test_bad_measure_reported(self, mixed_corpus_file, capsys):
        code = main(
            [
                "cluster", "--corpus", str(mixed_corpus_file),
                "--measure", "Nope",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestPredict:
    def test_end_to_end(self, tmp_path, capsys):
        refs = tmp_path / "refs.json"
        for i, workload in enumerate(("tpcc", "twitter")):
            for cpus in ("2", "8"):
                args = [
                    "simulate", "--workload", workload, "--cpus", cpus,
                    "--terminals", "8", "--runs", "2",
                    "--duration-s", "900", "--seed", str(i),
                    "--out", str(refs),
                ]
                if refs.exists():
                    args.append("--append")
                assert main(args) == 0
        target = tmp_path / "target.json"
        assert main(
            [
                "simulate", "--workload", "ycsb", "--cpus", "2",
                "--terminals", "32", "--runs", "2",
                "--duration-s", "900", "--out", str(target),
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "predict", "--references", str(refs),
                "--target", str(target),
                "--source-cpus", "2", "--target-cpus", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Predicted throughput" in out
        assert "Similarity ranking" in out

    def test_missing_file_is_reported(self, tmp_path, capsys):
        code = main(
            [
                "predict", "--references", str(tmp_path / "none.json"),
                "--target", str(tmp_path / "none.json"),
                "--source-cpus", "2", "--target-cpus", "8",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


@pytest.fixture(scope="module")
def prediction_inputs(tmp_path_factory):
    """Reference + target repository files for predict-command tests."""
    root = tmp_path_factory.mktemp("obs")
    refs = root / "refs.json"
    for i, workload in enumerate(("tpcc", "twitter")):
        for cpus in ("2", "8"):
            args = [
                "simulate", "--workload", workload, "--cpus", cpus,
                "--terminals", "8", "--runs", "2", "--duration-s", "900",
                "--seed", str(i), "--out", str(refs),
            ]
            if refs.exists():
                args.append("--append")
            assert main(args) == 0
    target = root / "target.json"
    assert main(
        [
            "simulate", "--workload", "ycsb", "--cpus", "2",
            "--terminals", "32", "--runs", "2", "--duration-s", "900",
            "--out", str(target),
        ]
    ) == 0
    return refs, target


class TestObservabilityFlags:
    def test_predict_writes_trace_metrics_manifest(
        self, prediction_inputs, tmp_path, capsys
    ):
        refs, target = prediction_inputs
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "predict", "--references", str(refs),
                "--target", str(target),
                "--source-cpus", "2", "--target-cpus", "8",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
                "--manifest-out", str(manifest_path),
            ]
        )
        assert code == 0
        assert "Predicted throughput" in capsys.readouterr().out

        # Chrome trace_event schema with nested spans for all stages.
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        names = [event["name"] for event in events]
        assert "cli.predict" in names
        assert "pipeline.predict" in names
        for stage in ("select_features", "rank_similarity", "predict_scaling"):
            assert f"pipeline.stage.{stage}" in names
        assert all(
            event["ph"] == "X" and event["dur"] >= 0.0 for event in events
        )

        # Metrics snapshot with at least 8 distinct series.
        metrics = json.loads(metrics_path.read_text())
        assert len(metrics) >= 8
        assert metrics["pipeline.predictions_total"]["value"] == 1.0
        assert metrics["similarity.pairs_computed"]["value"] > 0
        assert metrics["pipeline.predict.latency_ms"]["count"] == 1

        # Manifest parses back into a RunManifest.
        from repro.obs import RunManifest

        manifest = RunManifest.load(manifest_path)
        assert manifest.reference_workload
        assert manifest.stage_timings_s["total"] > 0.0

    def test_simulate_records_engine_metrics(
        self, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "simulate", "--workload", "tpcc", "--runs", "1",
                "--duration-s", "600", "--out", str(tmp_path / "r.json"),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["runner.experiments_total"]["value"] == 1.0
        for name in (
            "engine.steady_states_total",
            "engine.bufferpool.hit_rate",
            "engine.cpu.amdahl_speedup",
            "engine.lockmanager.conflict_probability",
            "engine.planner.plans_observed_total",
            "telemetry.samples_total",
        ):
            assert name in metrics

    def test_prometheus_format(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "simulate", "--workload", "ycsb", "--runs", "1",
                "--duration-s", "600", "--out", str(tmp_path / "r.json"),
                "--metrics-out", str(metrics_path),
                "--metrics-format", "prometheus",
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE runner_experiments_total counter" in text

    def test_log_level_flag(self, tmp_path, capsys):
        code = main(
            [
                "simulate", "--workload", "ycsb", "--runs", "1",
                "--duration-s", "600", "--out", str(tmp_path / "r.json"),
                "--log-level", "INFO",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "saved 1 experiments" in err

    def test_trace_disabled_by_default(self, prediction_inputs, capsys):
        from repro.obs import get_tracer

        refs, target = prediction_inputs
        assert main(
            [
                "predict", "--references", str(refs),
                "--target", str(target),
                "--source-cpus", "2", "--target-cpus", "8",
            ]
        ) == 0
        capsys.readouterr()
        assert get_tracer().enabled is False
