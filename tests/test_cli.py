"""CLI tests: every subcommand end to end through main()."""

import json
from pathlib import Path

import pytest

from repro.cli import _build_parser, main
from repro.workloads import ExperimentRepository, WorkloadSpec

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def repo_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tpcc.json"
    code = main(
        [
            "simulate", "--workload", "tpcc", "--cpus", "8",
            "--terminals", "8", "--runs", "2", "--duration-s", "900",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def mixed_corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.json"
    for i, workload in enumerate(("tpcc", "tpch", "twitter")):
        args = [
            "simulate", "--workload", workload, "--cpus", "8",
            "--terminals", "1" if workload == "tpch" else "8",
            "--runs", "2", "--duration-s", "900", "--seed", str(i),
            "--out", str(path),
        ]
        if i > 0:
            args.append("--append")
        assert main(args) == 0
    return path


class TestSimulate:
    def test_creates_repository(self, repo_file):
        repo = ExperimentRepository.load(repo_file)
        assert len(repo) == 2
        assert repo.workload_names() == ["tpcc"]

    def test_append_mode(self, tmp_path):
        path = tmp_path / "r.json"
        base = [
            "simulate", "--workload", "twitter", "--cpus", "4",
            "--runs", "1", "--duration-s", "600", "--out", str(path),
        ]
        assert main(base) == 0
        assert main(base + ["--append"]) == 0
        assert len(ExperimentRepository.load(path)) == 2

    def test_output_mentions_throughput(self, capsys, tmp_path):
        path = tmp_path / "o.json"
        main(
            [
                "simulate", "--workload", "ycsb", "--runs", "1",
                "--duration-s", "600", "--out", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert "txn/s" in out and "bottleneck" in out


class TestCorpus:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        """One cached paper-corpus build shared by the class."""
        root = tmp_path_factory.mktemp("corpus")
        out = root / "paper.npz"
        cache_dir = root / "cache"
        code = main(
            [
                "corpus", "--kind", "paper", "--runs", "1",
                "--duration-s", "300", "--out", str(out),
                "--cache-dir", str(cache_dir),
                "--manifest-out", str(root / "manifest.json"),
            ]
        )
        assert code == 0
        return out, cache_dir, root / "manifest.json"

    def test_build_writes_repository_and_manifest(self, built, capsys):
        out, cache_dir, manifest_path = built
        assert len(ExperimentRepository.load_npz(out)) > 0
        grid = json.loads(manifest_path.read_text())["extra"]["grid"]
        assert grid["quarantined"] == 0
        assert grid["retried"] == 0
        assert "resumed" in grid

    def test_build_requires_out(self, capsys):
        assert main(["corpus", "--kind", "paper", "--no-cache"]) == 2
        assert "--out is required" in capsys.readouterr().err

    def test_verify_requires_cache_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["corpus", "--verify"]) == 2
        assert "cache directory" in capsys.readouterr().err

    def test_verify_clean_cache(self, built, capsys):
        _, cache_dir, _ = built
        code = main(
            ["corpus", "--verify", "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 corrupt, 0 orphaned" in out

    def test_verify_then_repair_damaged_cache(self, built, capsys):
        _, cache_dir, _ = built
        victim = next(cache_dir.glob("??/*.npz"))
        victim.write_bytes(b"bit rot")
        assert main(
            ["corpus", "--verify", "--cache-dir", str(cache_dir)]
        ) == 1
        assert "1 corrupt" in capsys.readouterr().out
        assert main(
            ["corpus", "--repair", "--cache-dir", str(cache_dir)]
        ) == 0
        assert main(
            ["corpus", "--verify", "--cache-dir", str(cache_dir)]
        ) == 0


class TestSelect:
    def test_ranks_features(self, mixed_corpus_file, capsys):
        code = main(
            [
                "select", "--corpus", str(mixed_corpus_file),
                "--strategy", "fANOVA", "--top-k", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-5 features by fANOVA" in out
        assert out.count(". ") >= 5

    def test_unknown_strategy_exit_code(self, mixed_corpus_file, capsys):
        code = main(
            ["select", "--corpus", str(mixed_corpus_file),
             "--strategy", "Nope"]
        )
        assert code == 2


class TestSimilarity:
    def test_evaluates_method(self, mixed_corpus_file, capsys):
        code = main(
            [
                "similarity", "--corpus", str(mixed_corpus_file),
                "--representation", "hist", "--measure", "L2,1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1-NN accuracy" in out and "NDCG" in out

    def test_feature_subset(self, mixed_corpus_file, capsys):
        code = main(
            [
                "similarity", "--corpus", str(mixed_corpus_file),
                "--features", "AvgRowSize,CachedPlanSize",
            ]
        )
        assert code == 0
        assert "features       : 2" in capsys.readouterr().out

    def test_unknown_measure_is_usage_error(self, mixed_corpus_file, capsys):
        code = main(
            ["similarity", "--corpus", str(mixed_corpus_file),
             "--measure", "Hausdorff"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCluster:
    def test_groups_by_workload(self, mixed_corpus_file, capsys):
        code = main(
            [
                "cluster", "--corpus", str(mixed_corpus_file),
                "--clusters", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "purity vs workload labels" in out
        assert "cluster" in out

    def test_kmedoids_method(self, mixed_corpus_file, capsys):
        code = main(
            [
                "cluster", "--corpus", str(mixed_corpus_file),
                "--clusters", "2", "--method", "kmedoids",
            ]
        )
        assert code == 0

    def test_bad_measure_is_usage_error(self, mixed_corpus_file, capsys):
        code = main(
            [
                "cluster", "--corpus", str(mixed_corpus_file),
                "--measure", "Nope",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestPredict:
    def test_end_to_end(self, tmp_path, capsys):
        refs = tmp_path / "refs.json"
        for i, workload in enumerate(("tpcc", "twitter")):
            for cpus in ("2", "8"):
                args = [
                    "simulate", "--workload", workload, "--cpus", cpus,
                    "--terminals", "8", "--runs", "2",
                    "--duration-s", "900", "--seed", str(i),
                    "--out", str(refs),
                ]
                if refs.exists():
                    args.append("--append")
                assert main(args) == 0
        target = tmp_path / "target.json"
        assert main(
            [
                "simulate", "--workload", "ycsb", "--cpus", "2",
                "--terminals", "32", "--runs", "2",
                "--duration-s", "900", "--out", str(target),
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "predict", "--references", str(refs),
                "--target", str(target),
                "--source-cpus", "2", "--target-cpus", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Predicted throughput" in out
        assert "Similarity ranking" in out

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "predict", "--references", str(tmp_path / "none.json"),
                "--target", str(tmp_path / "none.json"),
                "--source-cpus", "2", "--target-cpus", "8",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


@pytest.fixture(scope="module")
def prediction_inputs(tmp_path_factory):
    """Reference + target repository files for predict-command tests."""
    root = tmp_path_factory.mktemp("obs")
    refs = root / "refs.json"
    for i, workload in enumerate(("tpcc", "twitter")):
        for cpus in ("2", "8"):
            args = [
                "simulate", "--workload", workload, "--cpus", cpus,
                "--terminals", "8", "--runs", "2", "--duration-s", "900",
                "--seed", str(i), "--out", str(refs),
            ]
            if refs.exists():
                args.append("--append")
            assert main(args) == 0
    target = root / "target.json"
    assert main(
        [
            "simulate", "--workload", "ycsb", "--cpus", "2",
            "--terminals", "32", "--runs", "2", "--duration-s", "900",
            "--out", str(target),
        ]
    ) == 0
    return refs, target


class TestObservabilityFlags:
    def test_predict_writes_trace_metrics_manifest(
        self, prediction_inputs, tmp_path, capsys
    ):
        refs, target = prediction_inputs
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "predict", "--references", str(refs),
                "--target", str(target),
                "--source-cpus", "2", "--target-cpus", "8",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
                "--manifest-out", str(manifest_path),
            ]
        )
        assert code == 0
        assert "Predicted throughput" in capsys.readouterr().out

        # Chrome trace_event schema with nested spans for all stages.
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        names = [event["name"] for event in events]
        assert "cli.predict" in names
        assert "pipeline.predict" in names
        for stage in ("select_features", "rank_similarity", "predict_scaling"):
            assert f"pipeline.stage.{stage}" in names
        assert all(
            event["ph"] == "X" and event["dur"] >= 0.0 for event in events
        )

        # Metrics snapshot with at least 8 distinct series.
        metrics = json.loads(metrics_path.read_text())
        assert len(metrics) >= 8
        assert metrics["pipeline.predictions_total"]["value"] == 1.0
        assert metrics["similarity.pairs_computed"]["value"] > 0
        assert metrics["pipeline.predict.latency_ms"]["count"] == 1

        # Manifest parses back into a RunManifest.
        from repro.obs import RunManifest

        manifest = RunManifest.load(manifest_path)
        assert manifest.reference_workload
        assert manifest.stage_timings_s["total"] > 0.0

    def test_simulate_records_engine_metrics(
        self, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "simulate", "--workload", "tpcc", "--runs", "1",
                "--duration-s", "600", "--out", str(tmp_path / "r.json"),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["runner.experiments_total"]["value"] == 1.0
        for name in (
            "engine.steady_states_total",
            "engine.bufferpool.hit_rate",
            "engine.cpu.amdahl_speedup",
            "engine.lockmanager.conflict_probability",
            "engine.planner.plans_observed_total",
            "telemetry.samples_total",
        ):
            assert name in metrics

    def test_prometheus_format(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "simulate", "--workload", "ycsb", "--runs", "1",
                "--duration-s", "600", "--out", str(tmp_path / "r.json"),
                "--metrics-out", str(metrics_path),
                "--metrics-format", "prometheus",
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE runner_experiments_total counter" in text

    def test_log_level_flag(self, tmp_path, capsys):
        code = main(
            [
                "simulate", "--workload", "ycsb", "--runs", "1",
                "--duration-s", "600", "--out", str(tmp_path / "r.json"),
                "--log-level", "INFO",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "saved 1 experiments" in err

    def test_trace_disabled_by_default(self, prediction_inputs, capsys):
        from repro.obs import get_tracer

        refs, target = prediction_inputs
        assert main(
            [
                "predict", "--references", str(refs),
                "--target", str(target),
                "--source-cpus", "2", "--target-cpus", "8",
            ]
        ) == 0
        capsys.readouterr()
        assert get_tracer().enabled is False


#: Minimal valid argv per pipeline subcommand (file args need not exist:
#: parity tests only parse, they never run the command).
PIPELINE_ARGV = {
    "simulate": ["simulate", "--workload", "ycsb", "--out", "r.json"],
    "corpus": ["corpus", "--kind", "paper", "--out", "c.npz"],
    "select": ["select", "--corpus", "c.json"],
    "similarity": ["similarity", "--corpus", "c.json"],
    "cluster": ["cluster", "--corpus", "c.json"],
    "predict": [
        "predict", "--references", "r.json", "--target", "t.json",
        "--source-cpus", "2", "--target-cpus", "8",
    ],
}


class TestObservabilityFlagParity:
    """Every pipeline subcommand accepts the full observability flag set."""

    @pytest.mark.parametrize("command", sorted(PIPELINE_ARGV))
    def test_accepts_all_observability_flags(self, command):
        argv = PIPELINE_ARGV[command] + [
            "--log-level", "INFO",
            "--trace-out", "trace.json",
            "--metrics-out", "metrics.json",
            "--metrics-format", "prometheus",
            "--ledger", "runs.jsonl",
        ]
        args = _build_parser().parse_args(argv)
        assert args.command == command
        assert args.log_level == "INFO"
        assert args.trace_out == "trace.json"
        assert args.metrics_out == "metrics.json"
        assert args.metrics_format == "prometheus"
        assert args.ledger == "runs.jsonl"

    @pytest.mark.parametrize("command", sorted(PIPELINE_ARGV))
    def test_observability_flags_default_off(self, command):
        args = _build_parser().parse_args(PIPELINE_ARGV[command])
        assert args.trace_out is None
        assert args.metrics_out is None
        assert args.ledger is None


class TestObsCommand:
    @pytest.fixture()
    def ledger_file(self, tmp_path):
        """A ledger with three identical simulate runs recorded."""
        ledger = tmp_path / "runs.jsonl"
        for _ in range(3):
            assert main(
                [
                    "simulate", "--workload", "ycsb", "--runs", "1",
                    "--duration-s", "600",
                    "--out", str(tmp_path / "r.json"),
                    "--ledger", str(ledger),
                ]
            ) == 0
        return ledger

    def test_ledger_lists_runs_across_invocations(self, ledger_file, capsys):
        assert main(["obs", "ledger", "--ledger", str(ledger_file)]) == 0
        out = capsys.readouterr().out
        assert "3 run(s)" in out
        assert out.count("simulate") == 3
        assert out.count("exit 0") == 3

    def test_ledger_json_and_limit(self, ledger_file, capsys):
        assert main(
            ["obs", "ledger", "--ledger", str(ledger_file),
             "--limit", "2", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert all(row["command"] == "simulate" for row in rows)

    def test_report_prints_profile(self, ledger_file, capsys):
        assert main(["obs", "report", "--ledger", str(ledger_file)]) == 0
        out = capsys.readouterr().out
        assert "run     : simulate" in out
        assert "exit    : 0" in out
        assert "total" in out

    def test_report_json_row(self, ledger_file, capsys):
        assert main(
            ["obs", "report", "--ledger", str(ledger_file), "--json"]
        ) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["command"] == "simulate"
        assert row["exit_code"] == 0
        assert row["profile"]["total_wall_s"] > 0.0

    def test_report_run_out_of_range(self, ledger_file, capsys):
        assert main(
            ["obs", "report", "--ledger", str(ledger_file), "--run", "9"]
        ) == 2
        assert "out of range" in capsys.readouterr().err

    def test_report_from_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(
            [
                "simulate", "--workload", "ycsb", "--runs", "1",
                "--duration-s", "600", "--out", str(tmp_path / "r.json"),
                "--trace-out", str(trace),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "report", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "stages (wall / cpu):" in out
        assert "critical path:" in out

    def test_report_without_ledger_is_usage_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert main(["obs", "report"]) == 2
        assert "no ledger given" in capsys.readouterr().err

    def test_diff_stable_runs_pass(self, ledger_file, capsys):
        code = main(
            ["obs", "diff", "--ledger", str(ledger_file),
             "--tolerance", "5.0"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "OK" in out

    def test_diff_empty_ledger_is_usage_error(self, tmp_path, capsys):
        assert main(
            ["obs", "diff", "--ledger", str(tmp_path / "none.jsonl")]
        ) == 2
        assert "no rows" in capsys.readouterr().err

    def test_env_var_ledger_default(self, tmp_path, capsys, monkeypatch):
        ledger = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        assert main(
            [
                "simulate", "--workload", "ycsb", "--runs", "1",
                "--duration-s", "600", "--out", str(tmp_path / "r.json"),
            ]
        ) == 0
        capsys.readouterr()
        assert ledger.exists()
        assert main(["obs", "ledger"]) == 0
        assert "1 run(s)" in capsys.readouterr().out


class TestObsCheckBench:
    @pytest.mark.parametrize(
        "name",
        [
            "BENCH_analysis.json",
            "BENCH_eval.json",
            "BENCH_exec.json",
            "BENCH_synth.json",
        ],
    )
    def test_committed_bench_files_pass(self, name, capsys):
        code = main(
            [
                "obs", "check-bench", str(REPO_ROOT / name),
                "--baseline", str(REPO_ROOT),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "OK" in out

    def test_synthetic_regression_fails(self, tmp_path, capsys):
        (tmp_path / "base.json").write_text(json.dumps(
            {"sect": {"warm_s": 1.0, "bit_identical": True}}
        ))
        (tmp_path / "cur.json").write_text(json.dumps(
            {"sect": {"warm_s": 10.0, "bit_identical": False}}
        ))
        code = main(
            [
                "obs", "check-bench", str(tmp_path / "cur.json"),
                "--baseline", str(tmp_path / "base.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
        assert "sect.warm_s" in out

    def test_json_output(self, tmp_path, capsys):
        doc = tmp_path / "b.json"
        doc.write_text(json.dumps({"sect": {"cold_s": 1.0}}))
        assert main(
            ["obs", "check-bench", str(doc), "--baseline", str(doc),
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[str(doc)]["ok"] is True

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        doc = tmp_path / "b.json"
        doc.write_text("{}")
        assert main(["obs", "check-bench", str(doc)]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_unreadable_current_is_usage_error(self, tmp_path, capsys):
        assert main(
            [
                "obs", "check-bench", str(tmp_path / "missing.json"),
                "--baseline", str(tmp_path),
            ]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestSynth:
    @pytest.fixture(scope="class")
    def sampled(self, tmp_path_factory):
        """One sampler-mode invocation shared by the assertions below."""
        out_dir = tmp_path_factory.mktemp("synth")
        spec_path = out_dir / "specs.json"
        report_path = out_dir / "reports.json"
        corpus_path = out_dir / "corpus.json"
        code = main(
            [
                "synth", "--count", "2", "--seed", "3",
                "--duration-s", "300",
                "--verify", "--verify-runs", "2",
                "--out", str(spec_path),
                "--report-out", str(report_path),
                "--simulate-out", str(corpus_path),
                "--simulate-runs", "1",
            ]
        )
        return code, spec_path, report_path, corpus_path

    def test_sampler_mode_verifies_and_writes_specs(self, sampled):
        code, spec_path, report_path, _ = sampled
        assert code == 0
        payload = json.loads(spec_path.read_text())
        specs = [WorkloadSpec.from_dict(s) for s in payload["specs"]]
        assert [s.name for s in specs] == ["synth-3-00000", "synth-3-00001"]
        reports = json.loads(report_path.read_text())
        assert len(reports) == 2
        assert all(r["passed"] for r in reports)

    def test_sampler_mode_simulated_corpus_loads(self, sampled):
        code, _, _, corpus_path = sampled
        assert code == 0
        repo = ExperimentRepository.load(corpus_path)
        assert len(repo) == 2
        assert repo.workload_names() == ["synth-3-00000", "synth-3-00001"]

    def test_clone_mode_end_to_end(self, repo_file, tmp_path, capsys):
        spec_path = tmp_path / "clone.json"
        code = main(
            [
                "synth", "--template", str(repo_file),
                "--seed", "7", "--verify",
                "--out", str(spec_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "synthesized 'tpcc-clone'" in out
        assert "PASSED" in out
        payload = json.loads(spec_path.read_text())
        clone = WorkloadSpec.from_dict(payload["specs"][0])
        assert clone.name == "tpcc-clone"

    def test_clone_mode_custom_name(self, repo_file, capsys):
        code = main(
            [
                "synth", "--template", str(repo_file),
                "--name", "shadow", "--max-refine-iters", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "synthesized 'shadow'" in out

    def test_ambiguous_template_is_usage_error(
        self, mixed_corpus_file, capsys
    ):
        code = main(["synth", "--template", str(mixed_corpus_file)])
        assert code == 2
        assert "--workload" in capsys.readouterr().err

    def test_unknown_template_workload_is_usage_error(
        self, repo_file, capsys
    ):
        code = main(
            ["synth", "--template", str(repo_file), "--workload", "nope"]
        )
        assert code == 2
        assert "nope" in capsys.readouterr().err

    def test_bad_count_is_usage_error(self, capsys):
        assert main(["synth", "--count", "0"]) == 2
        assert "--count" in capsys.readouterr().err

    def test_verify_failure_exit_code(self, repo_file, tmp_path, capsys):
        """An unreachable tolerance must surface as exit 1, not silence."""
        # Refinement is disabled and the verification budget squeezed by
        # simulating the clone on a different seed path: force a miss by
        # asking for an impossibly tight tolerance via a doctored
        # template of one run and zero refinement iterations.
        code = main(
            [
                "synth", "--template", str(repo_file),
                "--max-refine-iters", "0", "--verify", "--seed", "1",
            ]
        )
        # The tpcc clone generally passes even unrefined; accept either
        # outcome but demand the exit code matches the printed verdict.
        out = capsys.readouterr().out
        assert ("FAILED" in out) == (code == 1)
        assert code in (0, 1)


class TestExitCodeContract:
    """Pin the repo-wide convention: 0 ok, 1 domain failure, 2 usage.

    Usage errors (2): the command could not meaningfully start —
    malformed flags (argparse's own exit), unknown registry names,
    missing input files.  Domain failures (1): the command ran and the
    outcome is bad.  The individual cases live next to their commands;
    this class sweeps the cross-command matrix in one place.
    """

    def test_argparse_usage_errors_exit_2(self):
        for argv in (
            [],                                  # no subcommand
            ["frobnicate"],                      # unknown subcommand
            ["similarity"],                      # missing required flag
            ["corpus", "--kind", "nope"],        # bad choice
            ["simulate", "--runs", "NaN"],       # bad int
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2, argv

    @pytest.mark.parametrize(
        "argv",
        [
            ["select", "--corpus", "{missing}", "--strategy", "Variance"],
            ["similarity", "--corpus", "{missing}"],
            ["cluster", "--corpus", "{missing}"],
            ["predict", "--references", "{missing}",
             "--target", "{missing}",
             "--source-cpus", "2", "--target-cpus", "8"],
            ["synth", "--template", "{missing}"],
        ],
    )
    def test_missing_input_file_exits_2(self, argv, tmp_path, capsys):
        missing = str(tmp_path / "nowhere.json")
        code = main([arg.replace("{missing}", missing) for arg in argv])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_registry_names_exit_2(self, mixed_corpus_file, capsys):
        corpus = str(mixed_corpus_file)
        cases = [
            ["select", "--corpus", corpus, "--strategy", "psychic"],
            ["similarity", "--corpus", corpus, "--measure", "Hausdorff"],
            ["cluster", "--corpus", corpus, "--measure", "Nope"],
        ]
        for argv in cases:
            assert main(argv) == 2, argv
            assert "error:" in capsys.readouterr().err

    def test_domain_failure_exits_1(self, tmp_path, capsys):
        # check-bench with a genuine regression: the command ran fine,
        # the *result* is bad -> 1, not 2.
        baseline = {"case": {"wall_s": 1.0}}
        current = {"case": {"wall_s": 9.0}}
        (tmp_path / "BENCH_x.json").write_text(json.dumps(baseline))
        cur = tmp_path / "cur"
        cur.mkdir()
        (cur / "BENCH_x.json").write_text(json.dumps(current))
        code = main(
            ["obs", "check-bench", str(cur / "BENCH_x.json"),
             "--baseline", str(tmp_path), "--tolerance", "0.5"]
        )
        assert code == 1

    def test_success_exits_0(self, mixed_corpus_file):
        assert main(
            ["select", "--corpus", str(mixed_corpus_file),
             "--strategy", "Variance"]
        ) == 0
