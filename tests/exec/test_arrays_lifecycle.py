"""Shared-memory lifecycle for long-running processes.

The server's ambient store lives for the life of the process and must
not leak ``/dev/shm`` segments: atexit closes stores the process never
unwound, ``prune`` frees per-request temporaries while keeping pinned
corpus arrays, and workers can drop their attachment cache.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.exec.arrays import (
    ArrayStore,
    _ATTACHED,
    acquire_store,
    ambient_store,
    detach_all,
    resolve_ref,
    set_ambient_store,
)


def _backing_path(store, ref) -> Path | None:
    if ref.kind == "shm":
        return Path("/dev/shm") / ref.name.lstrip("/")
    if ref.kind == "mmap":
        return Path(ref.name)
    return None


def test_atexit_frees_segments_of_unclosed_store(tmp_path):
    """A process that dies without close() must not leak /dev/shm."""
    script = textwrap.dedent(
        """
        import numpy as np
        from repro.exec.arrays import ArrayStore

        store = ArrayStore()
        ref = store.put(np.arange(4096, dtype=np.float64))
        if ref.kind == "shm":
            print(f"/dev/shm/{ref.name.lstrip('/')}")
        else:
            print(ref.name)
        # Exit WITHOUT store.close(): the atexit hook must clean up.
        """
    )
    root = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin"},
        check=True,
    )
    backing = Path(result.stdout.strip())
    assert not backing.exists(), f"leaked segment {backing}"


def test_close_is_idempotent_and_frees_backing(tmp_path):
    store = ArrayStore(spool_dir=tmp_path)
    ref = store.put(np.ones((8, 8)))
    backing = _backing_path(store, ref)
    assert backing is not None and backing.exists()
    store.close()
    store.close()
    assert not backing.exists()
    with pytest.raises(RuntimeError):
        store.put(np.zeros(2))


def test_prune_keeps_pinned_and_frees_the_rest():
    with ArrayStore() as store:
        pinned = store.put(np.arange(16, dtype=np.float64))
        doomed = store.put(np.arange(32, dtype=np.float64))
        assert len(store) == 2
        freed = store.prune(keep={pinned.digest})
        assert freed == 1
        assert store.digests() == {pinned.digest}
        doomed_backing = _backing_path(store, doomed)
        assert doomed_backing is None or not doomed_backing.exists()
        # Pinned content stays resolvable and re-put dedupes to the pin.
        np.testing.assert_array_equal(
            resolve_ref(pinned), np.arange(16, dtype=np.float64)
        )
        assert store.put(np.arange(16, dtype=np.float64)).digest == pinned.digest
    detach_all()


def test_nbytes_tracks_published_payload():
    with ArrayStore() as store:
        assert store.nbytes == 0
        store.put(np.zeros(128, dtype=np.float64))
        assert store.nbytes == 128 * 8
        store.put(np.zeros(0, dtype=np.float64))  # inline: no backing bytes
        assert store.nbytes == 128 * 8


def test_acquire_store_prefers_ambient():
    with ArrayStore() as mine:
        previous = set_ambient_store(mine)
        try:
            store, owned = acquire_store(True)
            assert store is mine
            assert owned is False
        finally:
            set_ambient_store(previous)


def test_acquire_store_private_when_no_ambient():
    assert ambient_store() is None
    store, owned = acquire_store(True)
    assert store is not None and owned is True
    store.close()
    assert acquire_store(False) == (None, False)


def test_acquire_store_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_ARRAYS", "off")
    assert acquire_store(True) == (None, False)


def test_detach_all_clears_attachment_cache():
    with ArrayStore() as store:
        ref = store.put(np.arange(10, dtype=np.int64))
        first = resolve_ref(ref)
        assert resolve_ref(ref) is first  # cached per process
        assert _ATTACHED
        detach_all()
        assert not _ATTACHED
        again = resolve_ref(ref)
        assert again is not first
        np.testing.assert_array_equal(again, first)
    detach_all()
