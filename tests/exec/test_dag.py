"""DAG scheduling: topology validation, caching, quarantine cascades."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.exec.arrays import ArrayStore
from repro.exec.dag import DagTask, Input, run_dag, topo_order
from repro.exec.engine import RetryPolicy
from repro.obs.metrics import MetricsRegistry, set_metrics

FAST_RETRY = RetryPolicy(max_attempts=2, backoff_base_s=0.0)


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _const(payload, attempt, in_worker):
    (value,) = payload
    return value


def _add(payload, attempt, in_worker):
    return sum(payload)


def _explode(payload, attempt, in_worker):
    raise RuntimeError("boom")


def _total(payload, attempt, in_worker):
    (values,) = payload
    return float(np.sum(np.concatenate([np.ravel(v) for v in values])))


def _matrix(payload, attempt, in_worker):
    (n,) = payload
    return np.arange(float(n * n)).reshape(n, n)


def diamond():
    """a -> (b, c) -> d: the smallest cross-stage interleaving graph."""
    return [
        DagTask(key="a", fn=_const, payload=(1,)),
        DagTask(key="b", fn=_add, payload=(Input("a"), 10), deps=("a",)),
        DagTask(key="c", fn=_add, payload=(Input("a"), 100), deps=("a",)),
        DagTask(
            key="d", fn=_add, payload=(Input("b"), Input("c")),
            deps=("b", "c"),
        ),
    ]


class TestTopoOrder:
    def test_submission_order_first(self):
        assert topo_order(diamond()) == ["a", "b", "c", "d"]

    def test_duplicate_key_rejected(self):
        tasks = [
            DagTask(key="a", fn=_const, payload=(1,)),
            DagTask(key="a", fn=_const, payload=(2,)),
        ]
        with pytest.raises(ValidationError, match="duplicate"):
            topo_order(tasks)

    def test_unknown_dependency_rejected(self):
        tasks = [DagTask(key="a", fn=_const, payload=(1,), deps=("ghost",))]
        with pytest.raises(ValidationError, match="unknown key"):
            topo_order(tasks)

    def test_cycle_rejected(self):
        tasks = [
            DagTask(key="a", fn=_const, payload=(1,), deps=("b",)),
            DagTask(key="b", fn=_const, payload=(2,), deps=("a",)),
        ]
        with pytest.raises(ValidationError, match="cycle"):
            topo_order(tasks)

    def test_duplicate_deps_counted_once(self):
        tasks = [
            DagTask(key="a", fn=_const, payload=(1,)),
            DagTask(key="b", fn=_add, payload=(Input("a"),),
                    deps=("a", "a")),
        ]
        assert topo_order(tasks) == ["a", "b"]


class TestRunDag:
    @pytest.mark.parametrize("jobs", [None, 1, 4])
    def test_inputs_flow_along_edges(self, jobs):
        results = run_dag(diamond(), jobs=jobs)
        assert results["a"] == 1
        assert results["b"] == 11
        assert results["c"] == 101
        assert results["d"] == 112
        assert results.report.n_executed == 4
        assert results.report.n_cached == 0

    def test_serial_and_parallel_agree(self):
        serial = run_dag(diamond(), jobs=1)
        parallel = run_dag(diamond(), jobs=4)
        assert dict(serial) == dict(parallel)

    def test_tasks_total_metric(self, fresh_metrics):
        run_dag(diamond(), label="exec.dag")
        assert (
            fresh_metrics.counter("exec.dag.tasks_total").value == 4
        )


class _DictCache(dict):
    """Minimal cache: the ``get(key)``/``put(key, value)`` protocol."""

    def put(self, key, value):
        self[key] = value


class TestCaching:
    @pytest.mark.parametrize("jobs", [None, 4])
    def test_warm_run_short_circuits(self, jobs):
        cache = _DictCache()
        tasks = [
            DagTask(key="a", fn=_const, payload=(7,), cache=cache),
            DagTask(
                key="b", fn=_add, payload=(Input("a"), 1), deps=("a",),
                cache=cache,
            ),
        ]
        cold = run_dag(tasks, jobs=jobs)
        assert cold.report.n_executed == 2
        assert dict(cache) == {"a": 7, "b": 8}
        warm = run_dag(tasks, jobs=jobs)
        assert warm.report.n_cached == 2
        assert warm.report.n_executed == 0
        assert dict(warm) == dict(cold)

    def test_cache_hit_completes_without_waiting_for_deps(self):
        """Content addressing covers the inputs: a fingerprint hit on a
        downstream task must not force its (quarantined) upstream."""
        cache = _DictCache({"b": 42})
        tasks = [
            DagTask(key="a", fn=_explode, payload=()),
            DagTask(
                key="b", fn=_add, payload=(Input("a"), 1), deps=("a",),
                cache=cache,
            ),
        ]
        results = run_dag(tasks, retry=FAST_RETRY)
        assert results["b"] == 42
        assert results["a"] is None
        assert results.report.n_cached == 1
        assert results.report.skipped == ()

    def test_cache_write_failure_is_not_fatal(self, fresh_metrics):
        class _BrokenCache:
            def get(self, key):
                return None

            def put(self, key, value):
                raise OSError("disk full")

        tasks = [
            DagTask(key="a", fn=_const, payload=(1,), cache=_BrokenCache())
        ]
        results = run_dag(tasks, label="exec.dag")
        assert results["a"] == 1
        assert fresh_metrics.counter(
            "exec.dag.cache_write_errors_total"
        ).value == 1


class TestQuarantineCascade:
    @pytest.mark.parametrize("jobs", [None, 4])
    def test_downstream_of_quarantined_is_skipped(
        self, jobs, fresh_metrics
    ):
        tasks = diamond()
        tasks[1] = DagTask(
            key="b", fn=_explode, payload=(), deps=("a",), task_id="b-task"
        )
        results = run_dag(tasks, jobs=jobs, retry=FAST_RETRY)
        report = results.report
        assert results["a"] == 1
        assert results["b"] is None
        assert results["c"] == 101  # independent branch still runs
        assert results["d"] is None  # downstream of b: skipped
        assert report.n_quarantined == 1
        assert report.quarantined[0][0] == "b-task"
        assert report.skipped == ("d",)
        assert fresh_metrics.counter(
            "exec.dag.quarantined_total"
        ).value == 1

    def test_validate_failures_quarantine(self):
        def reject_everything(result):
            raise ValidationError("nope")

        tasks = [
            DagTask(
                key="a", fn=_const, payload=(1,),
                validate=reject_everything,
            )
        ]
        results = run_dag(tasks, retry=FAST_RETRY)
        assert results["a"] is None
        assert results.report.n_quarantined == 1
        assert results.report.n_retried == 1


class TestPublish:
    @pytest.mark.parametrize("jobs", [None, 4])
    def test_published_arrays_flow_as_refs(self, jobs, tmp_path):
        tasks = [
            DagTask(key="m", fn=_matrix, payload=(4,), publish=True),
            DagTask(
                key="sum", fn=_total, payload=([Input("m")],), deps=("m",)
            ),
        ]
        with ArrayStore(backend="mmap", spool_dir=tmp_path) as store:
            results = run_dag(tasks, jobs=jobs, store=store)
            assert len(store) == 1  # the matrix landed in the store
        assert results["sum"] == float(np.arange(16.0).sum())
        # The caller-facing result stays a plain array, not a ref.
        np.testing.assert_array_equal(
            results["m"], np.arange(16.0).reshape(4, 4)
        )

    def test_without_store_results_pass_by_value(self):
        tasks = [
            DagTask(key="m", fn=_matrix, payload=(3,), publish=True),
            DagTask(
                key="sum", fn=_total, payload=([Input("m")],), deps=("m",)
            ),
        ]
        results = run_dag(tasks, store=None)
        assert results["sum"] == float(np.arange(9.0).sum())
