"""The mixed-stage pipeline DAG: bit-identical at any worker count.

This is the tentpole acceptance test: one :func:`repro.exec.dag.run_dag`
graph interleaving corpus simulations, a representation build, distance
chunks, and model fits must produce results **and** merged telemetry
bit-identical at jobs=1 and jobs=4, and a warm corpus cache must
short-circuit the simulation stage entirely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.stages import pipeline_dag, run_pipeline
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.telemetry import comparable_snapshot, tree_shape
from repro.obs.tracing import Tracer, set_tracer
from repro.similarity.evaluation import distance_matrix
from repro.similarity.measures import get_measure
from repro.similarity.representations import RepresentationBuilder
from repro.workloads import (
    SKU,
    CorpusCache,
    enumerate_grid,
    execute_grid,
    workload_by_name,
)

JOBS = [1, 4]


def tiny_grid(random_state=17):
    return enumerate_grid(
        [workload_by_name("tpcc"), workload_by_name("twitter")],
        [SKU(cpus=4, memory_gb=32.0)],
        terminals_for=lambda w: (2,),
        n_runs=2,
        duration_s=120.0,
        sample_interval_s=10.0,
        random_state=random_state,
    )


def observed(fn):
    """Run ``fn`` under a fresh registry and an enabled tracer."""
    registry, tracer = MetricsRegistry(), Tracer(enabled=True)
    previous_registry = set_metrics(registry)
    previous_tracer = set_tracer(tracer)
    try:
        result = fn()
    finally:
        set_metrics(previous_registry)
        set_tracer(previous_tracer)
    return (
        result,
        comparable_snapshot(registry.snapshot()),
        tree_shape(tracer.to_tree()),
    )


@pytest.fixture(scope="module")
def measure():
    return get_measure("L2,1")


class TestDagLayout:
    def test_layout_is_a_pure_function_of_inputs(self, measure):
        tasks = pipeline_dag(tiny_grid(), measure=measure)
        keys = [task.key for task in tasks]
        # 4 sims + 1 rep + 6 chunks (one per pair) + assemble + 2 fits.
        assert len(tasks) == 14
        assert sum(key.startswith("dist:") for key in keys) == 6
        assert "distances" in keys
        assert "rep:hist" in keys
        assert {"fit:throughput", "fit:latency_ms"} <= set(keys)
        again = [t.key for t in pipeline_dag(tiny_grid(), measure=measure)]
        assert keys == again

    def test_fits_do_not_depend_on_distances(self, measure):
        """Fit tasks hang off the simulations only, so the scheduler can
        interleave them with distance chunks instead of behind them."""
        tasks = {t.key: t for t in pipeline_dag(tiny_grid(), measure=measure)}
        for key, task in tasks.items():
            if key.startswith("fit:"):
                assert not any(
                    dep.startswith(("dist:", "rep:")) or dep == "distances"
                    for dep in task.deps
                )


class TestMixedStageDeterminism:
    def test_results_and_telemetry_identical_across_jobs(self, measure):
        outcomes = [
            observed(
                lambda j=jobs: run_pipeline(
                    tiny_grid(), measure=measure, jobs=j
                )
            )
            for jobs in JOBS
        ]
        results0, metrics0, shape0 = outcomes[0]
        assert results0.report.n_quarantined == 0
        assert results0.report.n_executed == 14
        D0 = results0["distances"]
        assert D0.shape == (4, 4)
        assert np.allclose(D0, D0.T)
        for results, metrics, shape in outcomes[1:]:
            np.testing.assert_array_equal(results["distances"], D0)
            for key in ("fit:throughput", "fit:latency_ms"):
                np.testing.assert_array_equal(results[key], results0[key])
            assert metrics == metrics0
            assert shape == shape0

    def test_distances_match_the_stagewise_path(self, measure):
        """The DAG-assembled matrix equals the barriered reference."""
        grid = tiny_grid()
        results = run_pipeline(grid, measure=measure, jobs=4)
        corpus = list(execute_grid(grid, journal=False))
        builder = RepresentationBuilder()
        builder.fit(corpus)
        matrices = [builder.build(r, "hist") for r in corpus]
        np.testing.assert_array_equal(
            results["distances"], distance_matrix(matrices, measure)
        )


class TestWarmCache:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_warm_corpus_cache_skips_every_simulation(
        self, tmp_path, measure, jobs
    ):
        grid = tiny_grid()
        cache = CorpusCache(tmp_path)
        cold = run_pipeline(grid, measure=measure, jobs=jobs, cache=cache)
        assert cold.report.n_cached == 0
        assert len(cache) == len(grid)
        warm = run_pipeline(grid, measure=measure, jobs=jobs, cache=cache)
        assert warm.report.n_cached == len(grid)
        assert warm.report.n_executed == 14 - len(grid)
        np.testing.assert_array_equal(
            warm["distances"], cold["distances"]
        )
        for key in ("fit:throughput", "fit:latency_ms"):
            np.testing.assert_array_equal(warm[key], cold[key])
