"""The shared task engine: ordering, retries, quarantine, hooks."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.exec.engine import (
    ExecTask,
    RetryPolicy,
    as_retry_policy,
    run_tasks,
)
from repro.obs.metrics import MetricsRegistry, set_metrics

#: Retries without sleeping — the backoff schedule has its own tests.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _double(payload, attempt, in_worker):
    (value,) = payload
    return value * 2


def _fail_below_attempt(payload, attempt, in_worker):
    value, needed = payload
    if attempt < needed:
        raise RuntimeError(f"attempt {attempt} < {needed}")
    return value


def _explode(payload, attempt, in_worker):
    raise RuntimeError("always fails")


def tasks_for(values, fn=_double, extra=()):
    return [
        ExecTask(index=i, fn=fn, payload=(v, *extra), task_id=f"t{i}")
        for i, v in enumerate(values)
    ]


class TestOrderingAndParity:
    @pytest.mark.parametrize("jobs", [None, 1, 4])
    def test_results_in_submission_order(self, jobs):
        tasks = [
            ExecTask(index=i, fn=_double, payload=(v,))
            for i, v in enumerate([5, 3, 9, 1, 7])
        ]
        results = run_tasks(tasks, jobs=jobs)
        assert list(results) == [10, 6, 18, 2, 14]
        assert results.report.n_executed == 5
        assert results.report.n_tasks == 5

    def test_single_task_runs_serial_even_with_jobs(self):
        results = run_tasks(tasks_for([4]), jobs=8)
        assert results.report.n_workers == 1

    def test_empty_task_list(self):
        results = run_tasks([])
        assert list(results) == []
        assert results.report.n_tasks == 0


class TestRetryAndQuarantine:
    @pytest.mark.parametrize("jobs", [None, 2])
    def test_transient_failures_are_retried(self, jobs, fresh_metrics):
        tasks = [
            ExecTask(
                index=i, fn=_fail_below_attempt, payload=(v, 1),
                task_id=f"t{i}",
            )
            for i, v in enumerate([1, 2, 3])
        ]
        results = run_tasks(tasks, jobs=jobs, retry=FAST_RETRY)
        assert list(results) == [1, 2, 3]
        assert results.report.n_retried == 3
        assert (
            fresh_metrics.counter("exec.retries_total").value == 3
        )

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_quarantine_records_none_and_reasons(self, jobs, fresh_metrics):
        tasks = tasks_for([1, 2]) + [
            ExecTask(index=2, fn=_explode, payload=(), task_id="doomed")
        ]
        results = run_tasks(
            tasks, jobs=jobs, retry=FAST_RETRY, on_error="quarantine"
        )
        assert list(results) == [2, 4, None]
        report = results.report
        assert report.n_quarantined == 1
        assert report.quarantined[0][0] == "doomed"
        assert "RuntimeError" in report.quarantined[0][1]
        assert (
            fresh_metrics.counter("exec.quarantined_total").value == 1
        )

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_on_error_raise_propagates(self, jobs):
        tasks = tasks_for([1, 2]) + [
            ExecTask(index=2, fn=_explode, payload=())
        ]
        with pytest.raises(RuntimeError, match="always fails"):
            run_tasks(tasks, jobs=jobs, retry=1, on_error="raise")

    def test_validate_failure_consumes_an_attempt(self, fresh_metrics):
        def reject_small(value):
            if value < 10:
                raise ValidationError(f"{value} too small")

        results = run_tasks(
            tasks_for([3]), retry=FAST_RETRY, on_error="quarantine",
            validate=reject_small,
        )
        assert list(results) == [None]
        assert results.report.n_retried == 2  # both retries burned

    def test_rejects_unknown_on_error(self):
        with pytest.raises(ValidationError):
            run_tasks([], on_error="shrug")

    def test_as_retry_policy(self):
        assert as_retry_policy(None) == RetryPolicy()
        assert as_retry_policy(5).max_attempts == 5
        policy = RetryPolicy(max_attempts=2)
        assert as_retry_policy(policy) is policy
        with pytest.raises(TypeError):
            as_retry_policy("twice")


class _Journal:
    def __init__(self):
        self.records = []

    def record(self, key, task_id):
        self.records.append((key, task_id))


class TestHooks:
    def test_hook_order_on_result_journal_after_task(self):
        events = []
        journal = _Journal()
        tasks = [
            ExecTask(
                index=i, fn=_double, payload=(v,), key=f"k{i}",
                task_id=f"t{i}",
            )
            for i, v in enumerate([1, 2])
        ]
        run_tasks(
            tasks,
            on_result=lambda t, a, r: events.append(("result", t.index, r)),
            after_task=lambda t: events.append(("after", t.index)),
            journal=journal,
        )
        assert events == [
            ("result", 0, 2), ("after", 0),
            ("result", 1, 4), ("after", 1),
        ]
        assert journal.records == [("k0", "t0"), ("k1", "t1")]

    def test_keyless_tasks_are_not_journaled(self):
        journal = _Journal()
        run_tasks(tasks_for([1]), journal=journal)
        assert journal.records == []
