"""The persistent worker pool the server keeps warm across requests."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.exec.engine import (
    ExecTask,
    PersistentPool,
    get_persistent_pool,
    persistent_pool,
    run_tasks,
    set_persistent_pool,
)


def _double(payload, attempt, in_worker):
    (value,) = payload
    return value * 2


def tasks_for(values):
    return [
        ExecTask(index=i, fn=_double, payload=(v,), task_id=f"t{i}")
        for i, v in enumerate(values)
    ]


def test_rejects_bad_worker_count():
    with pytest.raises(ValidationError):
        PersistentPool(0)


def test_acquire_is_lazy_and_reused():
    pool = PersistentPool(2)
    try:
        assert pool._pool is None  # nothing forked until first use
        first = pool.acquire()
        assert pool.acquire() is first
    finally:
        pool.close()


def test_invalidate_replaces_executor_once():
    pool = PersistentPool(2)
    try:
        first = pool.acquire()
        pool.invalidate(first)
        assert pool.rebuilds == 1
        second = pool.acquire()
        assert second is not first
        # A stale invalidate (second racer reporting the same breakage)
        # must not tear down the replacement.
        pool.invalidate(first)
        assert pool.rebuilds == 1
        assert pool.acquire() is second
    finally:
        pool.close()


def test_close_then_acquire_recreates():
    pool = PersistentPool(1)
    try:
        first = pool.acquire()
        pool.close()
        assert pool.acquire() is not first
    finally:
        pool.close()


def test_context_manager_installs_and_restores():
    assert get_persistent_pool() is None
    with persistent_pool(max_workers=2) as pool:
        assert get_persistent_pool() is pool
    assert get_persistent_pool() is None


def test_set_persistent_pool_returns_previous():
    mine = PersistentPool(1)
    try:
        assert set_persistent_pool(mine) is None
        assert set_persistent_pool(None) is mine
    finally:
        mine.close()


def test_run_tasks_borrows_installed_pool_and_keeps_it_alive():
    values = list(range(8))
    baseline = list(run_tasks(tasks_for(values), jobs=None))
    with persistent_pool(max_workers=2) as pool:
        first = list(run_tasks(tasks_for(values), jobs=2))
        executor = pool._pool
        assert executor is not None  # the run went through our pool
        second = list(run_tasks(tasks_for(values), jobs=2))
        assert pool._pool is executor  # no per-run spin-up
    assert first == second == baseline  # bit-identical to serial
