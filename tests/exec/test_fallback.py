"""Pool-unavailable fallback: identical behavior across every engine.

When no ``ProcessPoolExecutor`` can be created at all (fork limits,
sandboxed CI, exhausted file descriptors), every parallel engine must
fall back to serial execution with one increment of
``<label>.pool_fallback_total`` and produce results bit-identical to a
serial run.  Historically gridexec and fitexec disagreed on both points;
all engines now route through :mod:`repro.exec.engine` /
:mod:`repro.exec.dag`, and this file injects the fault against each
public entry point to keep them aligned.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.dag import DagTask, Input, run_dag
from repro.ml.fitexec import run_units
from repro.ml.forest import RandomForestRegressor
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.similarity.evaluation import distance_matrix
from repro.similarity.measures import get_measure
from repro.workloads import SKU, enumerate_grid, execute_grid, workload_by_name


class _NoPool:
    """Stands in for ``ProcessPoolExecutor``; construction always fails."""

    def __init__(self, *args, **kwargs):
        raise OSError("fork refused by test")


@pytest.fixture
def no_pool(monkeypatch):
    monkeypatch.setattr(
        "repro.exec.engine.ProcessPoolExecutor", _NoPool
    )
    monkeypatch.setattr("repro.exec.dag.ProcessPoolExecutor", _NoPool)


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _fallbacks(registry, label):
    return registry.counter(f"{label}.pool_fallback_total").value


def _square(unit):
    return unit * unit


def _const(payload, attempt, in_worker):
    (value,) = payload
    return value


def _add(payload, attempt, in_worker):
    return sum(payload)


class TestGridexecFallback:
    def test_serial_fallback_with_metric(self, no_pool, fresh_metrics):
        tasks = enumerate_grid(
            [workload_by_name("tpcc")],
            [SKU(cpus=4, memory_gb=32.0)],
            terminals_for=lambda w: (2,),
            n_runs=2,
            duration_s=120.0,
            sample_interval_s=10.0,
            random_state=3,
        )
        baseline = execute_grid(tasks, journal=False)
        results = execute_grid(tasks, jobs=2, journal=False)
        assert _fallbacks(fresh_metrics, "gridexec") == 1
        assert results.report.n_quarantined == 0
        for a, b in zip(baseline, results):
            assert np.array_equal(a.throughput_series, b.throughput_series)


class TestFitexecFallback:
    def test_serial_fallback_with_metric(self, no_pool, fresh_metrics):
        units = list(range(6))
        results = run_units(_square, units, jobs=2)
        assert results == [u * u for u in units]
        assert _fallbacks(fresh_metrics, "ml.fitexec") == 1


class TestSimilarityFallback:
    def test_serial_fallback_with_metric(self, no_pool, fresh_metrics):
        rng = np.random.default_rng(5)
        matrices = [rng.normal(size=(12, 3)) for _ in range(8)]
        measure = get_measure("L2,1")
        baseline = distance_matrix(matrices, measure)
        D = distance_matrix(matrices, measure, jobs=2)
        assert _fallbacks(fresh_metrics, "similarity") == 1
        np.testing.assert_array_equal(D, baseline)


class TestForestFallback:
    def test_serial_fallback_with_metric(self, no_pool, fresh_metrics):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(40, 4))
        y = rng.normal(size=40)
        serial = RandomForestRegressor(
            n_estimators=8, random_state=7, jobs=1
        ).fit(X, y)
        fallen = RandomForestRegressor(
            n_estimators=8, random_state=7, jobs=2
        ).fit(X, y)
        assert _fallbacks(fresh_metrics, "ml.forest") == 1
        np.testing.assert_array_equal(
            serial.predict(X), fallen.predict(X)
        )


class TestDagFallback:
    def test_serial_fallback_with_metric(self, no_pool, fresh_metrics):
        tasks = [
            DagTask(key="a", fn=_const, payload=(1,)),
            DagTask(key="b", fn=_add, payload=(Input("a"), 10),
                    deps=("a",)),
            DagTask(key="c", fn=_add, payload=(Input("a"), 100),
                    deps=("a",)),
            DagTask(key="d", fn=_add, payload=(Input("b"), Input("c")),
                    deps=("b", "c")),
        ]
        results = run_dag(tasks, jobs=4, label="exec.dag")
        assert _fallbacks(fresh_metrics, "exec.dag") == 1
        assert dict(results) == {"a": 1, "b": 11, "c": 101, "d": 112}
        assert results.report.pool_fallbacks == 1
