"""One non-finite rejection discipline across all three result caches.

Every cache — corpus, distance, fit — must refuse non-finite values on
**both** sides: a ``put`` never persists them, and a doctored or
bit-rotted on-disk entry carrying NaN/Inf surfaces as a corrupt-counted
miss on load, never as poisoned data.  The three caches historically
guarded different subsets of those four paths; this file pins all of
them.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.exceptions import RepositoryError
from repro.ml.fitexec import FitCache
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.similarity.distcache import DistanceCache
from repro.workloads import (
    SKU,
    CorpusCache,
    enumerate_grid,
    execute_grid,
    workload_by_name,
)


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


class TestCorpusCache:
    @pytest.fixture
    def warm_cache(self, tmp_path):
        tasks = enumerate_grid(
            [workload_by_name("tpcc")],
            [SKU(cpus=4, memory_gb=32.0)],
            terminals_for=lambda w: (2,),
            n_runs=1,
            duration_s=120.0,
            sample_interval_s=10.0,
            random_state=23,
        )
        cache = CorpusCache(tmp_path)
        execute_grid(tasks, cache=cache, journal=False)
        return cache, cache.task_key(tasks[0])

    def test_put_rejects_non_finite(self, warm_cache):
        cache, key = warm_cache
        result = cache.get(key)
        doctored = dataclasses.replace(
            result,
            throughput_series=np.full_like(
                result.throughput_series, np.nan
            ),
        )
        with pytest.raises(RepositoryError):
            cache.put("f" * 64, doctored)
        assert "f" * 64 not in cache

    def test_doctored_entry_is_a_corrupt_counted_miss(
        self, warm_cache, fresh_metrics
    ):
        cache, key = warm_cache
        npz_path, _ = cache.entry_paths(key)
        with np.load(npz_path, allow_pickle=False) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        arrays["throughput_series"][0] = np.nan  # the bit rot
        with npz_path.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        assert cache.get(key) is None
        assert fresh_metrics.counter(
            "corpus_cache.corrupt_total"
        ).value == 1
        assert fresh_metrics.counter(
            "corpus_cache.misses_total"
        ).value == 1
        # verify() flags the same entry.
        outcome = cache.verify()
        assert outcome.corrupt == (key,)


class TestDistanceCache:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_put_never_persists_non_finite(self, tmp_path, bad):
        cache = DistanceCache(tmp_path)
        cache.put("a" * 64, bad)
        assert len(cache) == 0
        assert not cache.path.exists()

    def test_doctored_line_is_a_corrupt_counted_miss(
        self, tmp_path, fresh_metrics
    ):
        cache = DistanceCache(tmp_path)
        cache.put("a" * 64, 1.5)
        # json.dumps spells non-finite floats NaN/Infinity, which the
        # stdlib loader happily round-trips — the guard must be
        # numeric, not rely on a parse failure.
        with cache.path.open("a") as handle:
            handle.write(
                json.dumps({"key": "b" * 64, "value": float("nan")}) + "\n"
            )
            handle.write(
                json.dumps({"key": "c" * 64, "value": float("inf")}) + "\n"
            )
        reloaded = DistanceCache(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get("b" * 64) is None
        assert reloaded.get("c" * 64) is None
        assert reloaded.get("a" * 64) == 1.5
        assert fresh_metrics.counter(
            "distance_cache.corrupt_total"
        ).value == 2


class TestFitCache:
    @pytest.mark.parametrize(
        "bad",
        [
            float("nan"),
            [1.0, float("inf")],
            {"scores": [0.5, float("-inf")]},
            True,  # booleans are not scores
            "0.5",  # neither are strings
        ],
    )
    def test_put_never_persists_non_finite(self, tmp_path, bad):
        cache = FitCache(tmp_path)
        cache.put("a" * 64, bad)
        assert len(cache) == 0
        assert not cache.path.exists()

    def test_doctored_line_is_a_corrupt_counted_miss(
        self, tmp_path, fresh_metrics
    ):
        cache = FitCache(tmp_path)
        cache.put("a" * 64, {"scores": [0.25, 0.75]})
        with cache.path.open("a") as handle:
            handle.write(
                json.dumps(
                    {"key": "b" * 64, "value": [1.0, float("nan")]}
                )
                + "\n"
            )
        reloaded = FitCache(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get("b" * 64) is None
        assert reloaded.get("a" * 64) == {"scores": [0.25, 0.75]}
        assert fresh_metrics.counter(
            "fit_cache.corrupt_total"
        ).value == 1

    def test_finite_values_round_trip_exactly(self, tmp_path):
        cache = FitCache(tmp_path)
        value = {"scores": [0.1 + 0.2, 1e-300], "n": 3}
        cache.put("a" * 64, value)
        assert FitCache(tmp_path).get("a" * 64) == value
        assert all(
            math.isfinite(v) for v in FitCache(tmp_path).get("a" * 64)[
                "scores"
            ]
        )
