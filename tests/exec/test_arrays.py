"""Zero-copy array passing: publish/resolve round-trips bit-for-bit."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.exec.arrays import (
    ArrayRef,
    ArrayStore,
    array_ref_digest,
    arrays_enabled,
    resolve_ref,
    resolve_refs,
)

HAVE_DEV_SHM = Path("/dev/shm").is_dir()


class TestEnvironmentSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_ARRAYS", raising=False)
        assert arrays_enabled()

    def test_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_ARRAYS", "off")
        assert not arrays_enabled()

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ArrayStore(backend="carrier-pigeon")


class TestDigest:
    def test_content_addressed(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert array_ref_digest(a) == array_ref_digest(a.copy())
        assert array_ref_digest(a) != array_ref_digest(a + 1)

    def test_dtype_and_shape_participate(self):
        a = np.zeros(4, dtype=np.float64)
        assert array_ref_digest(a) != array_ref_digest(
            a.astype(np.float32)
        )
        assert array_ref_digest(a) != array_ref_digest(a.reshape(2, 2))


@pytest.mark.parametrize(
    "backend",
    ["mmap"] + (["shm"] if HAVE_DEV_SHM else []),
)
class TestRoundTrip:
    def test_bit_identical_and_read_only(self, backend, tmp_path):
        rng = np.random.default_rng(7)
        arr = rng.normal(size=(64, 9))
        with ArrayStore(backend=backend, spool_dir=tmp_path) as store:
            ref = store.put(arr)
            assert ref.kind == backend
            assert ref.nbytes == arr.nbytes
            out = resolve_ref(ref)
            np.testing.assert_array_equal(out, arr)
            assert not out.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                out[0, 0] = 1.0

    def test_put_dedupes_by_content(self, backend, tmp_path):
        arr = np.ones((8, 8))
        with ArrayStore(backend=backend, spool_dir=tmp_path) as store:
            first = store.put(arr)
            second = store.put(arr.copy())
            assert first is second
            assert len(store) == 1

    def test_zero_byte_arrays_are_inline(self, backend, tmp_path):
        with ArrayStore(backend=backend, spool_dir=tmp_path) as store:
            ref = store.put(np.empty((0, 5)))
            assert ref.kind == "inline"
            assert resolve_ref(ref).shape == (0, 5)

    def test_refs_are_tiny_and_picklable(self, backend, tmp_path):
        import pickle

        big = np.zeros((512, 512))
        with ArrayStore(backend=backend, spool_dir=tmp_path) as store:
            ref = store.put(big)
            shipped = pickle.dumps(ref)
            assert len(shipped) < 1024  # vs ~2 MiB pickled
            np.testing.assert_array_equal(
                resolve_ref(pickle.loads(shipped)), big
            )


@pytest.mark.skipif(not HAVE_DEV_SHM, reason="/dev/shm unavailable")
class TestShmLifecycle:
    def test_close_unlinks_the_segment(self):
        store = ArrayStore(backend="shm")
        ref = store.put(np.arange(10.0))
        backing = Path("/dev/shm") / ref.name.lstrip("/")
        assert backing.exists()
        store.close()
        assert not backing.exists()

    def test_put_after_close_raises(self):
        store = ArrayStore(backend="shm")
        store.close()
        with pytest.raises(RuntimeError):
            store.put(np.arange(3.0))

    def test_close_is_idempotent(self):
        store = ArrayStore(backend="shm")
        store.put(np.arange(3.0))
        store.close()
        store.close()


class TestMmapSpool:
    def test_own_spool_dir_removed_on_close(self):
        store = ArrayStore(backend="mmap")
        store.put(np.arange(6.0))
        spool = store._spool_dir
        assert spool is not None and spool.exists()
        store.close()
        assert not spool.exists()

    def test_caller_spool_dir_survives_close(self, tmp_path):
        store = ArrayStore(backend="mmap", spool_dir=tmp_path)
        store.put(np.arange(6.0))
        store.close()
        assert tmp_path.exists()


class TestResolveRefs:
    def test_walks_nested_payloads(self, tmp_path):
        arr = np.arange(4.0)
        with ArrayStore(backend="mmap", spool_dir=tmp_path) as store:
            ref = store.put(arr)
            payload = {"deep": [(ref, "label"), {"inner": ref}], "n": 3}
            out = resolve_refs(payload)
            np.testing.assert_array_equal(out["deep"][0][0], arr)
            np.testing.assert_array_equal(out["deep"][1]["inner"], arr)
            assert out["deep"][0][1] == "label"
            assert out["n"] == 3

    def test_non_ref_values_pass_through(self):
        payload = ([1, 2], "x", {"k": 4.5})
        assert resolve_refs(payload) == payload

    def test_unknown_kind_raises(self):
        bad = ArrayRef("quantum", "q", (2,), "<f8", "0" * 64)
        with pytest.raises(ValueError):
            resolve_ref(bad)
