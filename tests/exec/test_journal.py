"""The shared JSONL discipline: torn-tail healing and concurrent writers.

``repro.exec.journal`` is the single append/load implementation behind
the resume journal, the fit cache, the distance cache, and the run
ledger.  Beyond the single-writer torn-tail contract each component used
to pin individually, this file drives **multiple writer processes**
against one file: POSIX serializes append-mode writes, and because the
healing newline and the row go out as one ``write()``, two processes can
interleave whole rows but never corrupt each other's bytes.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.exec.journal import append_jsonl, load_jsonl

ROWS_PER_WRITER = 200


class TestAppend:
    def test_appends_one_line_per_row(self, tmp_path):
        path = tmp_path / "j.jsonl"
        assert append_jsonl(path, {"a": 1})
        assert append_jsonl(path, {"b": 2})
        assert path.read_text() == '{"a": 1}\n{"b": 2}\n'

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "j.jsonl"
        assert append_jsonl(path, {"a": 1})
        assert path.exists()

    def test_sort_keys_canonicalizes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        append_jsonl(path, {"b": 2, "a": 1}, sort_keys=True)
        assert path.read_text() == '{"a": 1, "b": 2}\n'

    def test_heals_torn_tail_before_appending(self, tmp_path):
        """A SIGKILL mid-append leaves no trailing newline; the next
        append must not fuse its row onto the torn one."""
        path = tmp_path / "j.jsonl"
        append_jsonl(path, {"a": 1})
        with path.open("a") as handle:
            handle.write('{"key": "torn')  # killed mid-write
        append_jsonl(path, {"b": 2})
        rows, corrupt = load_jsonl(path)
        assert rows == [{"a": 1}, {"b": 2}]
        assert corrupt == 1  # the torn row itself, now on its own line

    def test_failure_is_swallowed_and_reported(self, tmp_path):
        # The parent "directory" is a file: mkdir and open both fail.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert not append_jsonl(blocker / "j.jsonl", {"a": 1})


class TestLoad:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_jsonl(tmp_path / "absent.jsonl") == ([], 0)

    def test_counts_corrupt_lines_without_failing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"b": 2}\n{"truncated')
        rows, corrupt = load_jsonl(path)
        assert rows == [{"a": 1}, {"b": 2}]
        assert corrupt == 2

    def test_skips_blank_lines(self, tmp_path):
        """The worst a duplicate concurrent heal injects is an empty
        line; loaders must skip it silently, not count it corrupt."""
        path = tmp_path / "j.jsonl"
        path.write_text('{"a": 1}\n\n\n{"b": 2}\n')
        assert load_jsonl(path) == ([{"a": 1}, {"b": 2}], 0)


def _writer(path, writer_id, n_rows):
    for sequence in range(n_rows):
        assert append_jsonl(path, {"writer": writer_id, "seq": sequence})


class TestConcurrentWriters:
    """Two processes appending to one file never corrupt each other."""

    @pytest.mark.parametrize("n_writers", [2, 4])
    def test_all_rows_survive_intact(self, tmp_path, n_writers):
        path = tmp_path / "shared.jsonl"
        processes = [
            multiprocessing.Process(
                target=_writer, args=(path, writer_id, ROWS_PER_WRITER)
            )
            for writer_id in range(n_writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        rows, corrupt = load_jsonl(path)
        assert corrupt == 0
        assert len(rows) == n_writers * ROWS_PER_WRITER
        # Every writer's rows arrive complete and in its own order —
        # interleaving across writers is allowed, tearing is not.
        for writer_id in range(n_writers):
            sequence = [
                row["seq"] for row in rows if row["writer"] == writer_id
            ]
            assert sequence == list(range(ROWS_PER_WRITER))

    def test_concurrent_heals_keep_file_parseable(self, tmp_path):
        """Writers racing against a torn tail still produce a file where
        every *valid* row parses; the torn row is the only casualty."""
        path = tmp_path / "shared.jsonl"
        path.write_text('{"writer": -1, "seq": 0}\n{"torn')
        processes = [
            multiprocessing.Process(target=_writer, args=(path, w, 50))
            for w in range(2)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        rows, corrupt = load_jsonl(path)
        assert corrupt == 1  # the pre-torn row, healed onto its own line
        assert len(rows) == 1 + 100
        for line in path.read_text().splitlines():
            if line.strip() and "torn" not in line:
                json.loads(line)
