"""Golden-regression suite for the workload synthesizer.

The JSON fixtures under ``tests/golden/synth/`` pin complete
``(seed, targets) -> spec + verification`` outcomes for both synthesis
paths (sampler and trace fitting).  A failure means a change shifted
what the synthesizer produces for a fixed seed — every previously
synthesized corpus shifts with it.  Either fix the regression or
regenerate (``PYTHONPATH=src python tests/golden/regenerate.py``) and
justify the diff in review.

Comparison reuses the 1e-12 recursive matcher of the main golden suite.
"""

from __future__ import annotations

import json

import pytest

from tests.golden.synth_builders import SYNTH_BUILDERS, SYNTH_GOLDEN_DIR
from tests.test_golden_regression import assert_matches


@pytest.mark.parametrize("name", sorted(SYNTH_BUILDERS))
def test_synth_golden(name):
    golden_path = SYNTH_GOLDEN_DIR / name
    assert golden_path.exists(), (
        f"missing golden fixture synth/{name}; run tests/golden/regenerate.py"
    )
    expected = json.loads(golden_path.read_text())
    actual = SYNTH_BUILDERS[name]()
    assert_matches(actual, expected)


@pytest.mark.parametrize("name", sorted(SYNTH_BUILDERS))
def test_golden_verification_passed(name):
    """The pinned fixtures themselves must record a passing verification;
    a committed golden with ``passed: false`` would pin a broken state."""
    payload = json.loads((SYNTH_GOLDEN_DIR / name).read_text())
    assert payload["report"]["passed"] is True
    assert all(check["passed"] for check in payload["report"]["checks"])


def test_synth_golden_files_have_no_strays():
    """Every committed synth golden file is covered by a builder."""
    committed = {p.name for p in SYNTH_GOLDEN_DIR.glob("*.json")}
    assert committed == set(SYNTH_BUILDERS)
