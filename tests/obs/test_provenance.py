"""RunManifest round-trips and experiment metadata provenance."""

import json

import pytest

from repro import __version__
from repro.exceptions import ValidationError
from repro.obs.provenance import MANIFEST_VERSION, RunManifest, library_versions
from repro.workloads import SKU, ExperimentRepository, ExperimentRunner, workload_by_name


def make_manifest() -> RunManifest:
    return RunManifest(
        pipeline_config={"selection_strategy": "RFE LogReg", "top_k": 7},
        selected_features=("AvgRowSize", "CompileCPU"),
        similarity_ranking={"tpcc": 0.1, "tpch": 0.9},
        reference_workload="tpcc",
        stage_timings_s={"select_features": 0.5, "total": 1.25},
        metrics={"pipeline.predictions_total": {"type": "counter", "value": 1}},
        random_seed=17,
        extra={"source_sku": "2cpu-32gb"},
    )


class TestRunManifest:
    def test_versions_populated_by_default(self):
        versions = library_versions()
        assert versions["repro"] == __version__
        assert set(versions) >= {"python", "numpy", "scipy", "repro"}
        assert make_manifest().versions["repro"] == __version__

    def test_json_round_trip(self):
        manifest = make_manifest()
        restored = RunManifest.from_json(manifest.to_json())
        assert restored == manifest

    def test_to_dict_is_json_serializable(self):
        payload = make_manifest().to_dict()
        assert payload["manifest_version"] == MANIFEST_VERSION
        assert payload["selected_features"] == ["AvgRowSize", "CompileCPU"]
        json.dumps(payload)  # must not raise

    def test_save_load(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = make_manifest()
        manifest.save(path)
        assert RunManifest.load(path) == manifest

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValidationError, match="malformed run manifest"):
            RunManifest.from_dict({"selected_features": ["x"]})


class TestExperimentMetadata:
    @pytest.fixture(scope="class")
    def run(self):
        runner = ExperimentRunner(workload_by_name("ycsb"), random_state=5)
        return runner.run(
            SKU(cpus=4, memory_gb=32.0),
            terminals=8,
            duration_s=600.0,
            sample_interval_s=10.0,
        )

    def test_runner_populates_metadata(self, run):
        assert run.metadata["engine_version"] == __version__
        assert run.metadata["sample_interval_s"] == 10.0
        assert run.metadata["duration_s"] == 600.0
        assert isinstance(run.metadata["seed"], int)
        assert run.metadata["plan_observations"] == 3

    def test_metadata_round_trips_through_repository(self, run, tmp_path):
        path = tmp_path / "repo.json"
        repository = ExperimentRepository([run])
        repository.save(path)
        (loaded,) = list(ExperimentRepository.load(path))
        assert loaded.metadata == run.metadata

    def test_seed_differs_between_runs(self):
        runner = ExperimentRunner(workload_by_name("ycsb"), random_state=5)
        first = runner.run(SKU(cpus=4, memory_gb=32.0), duration_s=600.0)
        second = runner.run(SKU(cpus=4, memory_gb=32.0), duration_s=600.0)
        assert first.metadata["seed"] != second.metadata["seed"]
