"""Profile analysis: aggregation, critical path, pool split, Chrome round trip."""

import json

from pytest import approx

from repro.obs.profile import (
    ProfileReport,
    aggregate_spans,
    critical_path,
    pool_sections,
    self_time_top,
    tree_from_chrome,
)
from repro.obs.tracing import Tracer


def _node(name, wall_ms, cpu_ms=0.0, attrs=None, children=()):
    return {
        "name": name,
        "attrs": dict(attrs or {}),
        "wall_ms": wall_ms,
        "cpu_ms": cpu_ms,
        "children": list(children),
    }


SAMPLE = [
    _node(
        "cli.similarity", 100.0, 90.0,
        children=[
            _node(
                "similarity.distance_matrix", 80.0, 70.0,
                attrs={"workers": 4},
                children=[
                    _node("similarity.pair_chunk", 30.0, 30.0),
                    _node("similarity.pair_chunk", 40.0, 40.0),
                ],
            ),
            _node("similarity.rank", 10.0, 10.0),
        ],
    )
]


class TestAggregation:
    def test_totals_and_self_time(self):
        totals = aggregate_spans(SAMPLE)
        chunk = totals["similarity.pair_chunk"]
        assert chunk["count"] == 2
        assert chunk["wall_s"] == approx(0.07)
        matrix = totals["similarity.distance_matrix"]
        # 80 ms wall minus 70 ms of children = 10 ms self.
        assert matrix["self_s"] == approx(0.01)
        root = totals["cli.similarity"]
        assert root["self_s"] == approx(0.01)

    def test_self_time_top_ranked(self):
        top = self_time_top(SAMPLE, 2)
        assert len(top) == 2
        assert top[0]["name"] == "similarity.pair_chunk"
        assert top[0]["self_s"] >= top[1]["self_s"]

    def test_empty_tree(self):
        assert aggregate_spans([]) == {}
        assert self_time_top([]) == []


class TestCriticalPath:
    def test_follows_heaviest_children(self):
        path = critical_path(SAMPLE)
        assert [entry["name"] for entry in path] == [
            "cli.similarity",
            "similarity.distance_matrix",
            "similarity.pair_chunk",
        ]
        assert path[0]["share"] == 1.0
        assert path[1]["share"] == approx(0.8)
        # The 40 ms chunk wins over the 30 ms one.
        assert path[2]["wall_s"] == approx(0.04)

    def test_empty(self):
        assert critical_path([]) == []


class TestPoolSections:
    def test_compute_vs_overhead(self):
        (section,) = pool_sections(SAMPLE)
        assert section["name"] == "similarity.distance_matrix"
        assert section["workers"] == 4
        assert section["busy_s"] == approx(0.07)
        assert section["overhead_s"] == approx(0.01)


class TestChromeRoundTrip:
    def test_reconstructs_tracer_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", attrs={"k": "v"}):
            with tracer.span("child.a"):
                pass
            with tracer.span("child.b"):
                with tracer.span("leaf"):
                    pass
        rebuilt = tree_from_chrome(tracer.to_chrome_trace())
        (root,) = rebuilt
        assert root["name"] == "outer"
        assert root["attrs"]["k"] == "v"
        assert [c["name"] for c in root["children"]] == ["child.a", "child.b"]
        assert root["children"][1]["children"][0]["name"] == "leaf"
        # Durations survive (µs -> ms) and cpu_ms is lifted out of args.
        assert root["wall_ms"] >= 0.0
        assert "cpu_ms" not in root["attrs"]

    def test_sequential_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        rebuilt = tree_from_chrome(tracer.to_chrome_trace())
        assert [node["name"] for node in rebuilt] == ["first", "second"]

    def test_ignores_non_complete_events(self):
        doc = {"traceEvents": [{"name": "m", "ph": "M"}]}
        assert tree_from_chrome(doc) == []


class TestProfileReport:
    def test_from_tree_and_dict_round_trip(self):
        report = ProfileReport.from_tree(SAMPLE, top=3)
        assert report.total_wall_s == approx(0.1)
        assert report.stages["similarity.distance_matrix"]["wall_s"] == approx(0.08)
        clone = ProfileReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone.to_dict() == report.to_dict()

    def test_render_mentions_all_sections(self):
        text = ProfileReport.from_tree(SAMPLE).render()
        assert "stages (wall / cpu):" in text
        assert "critical path:" in text
        assert "top self time:" in text
        assert "parallel sections" in text
        assert "similarity.distance_matrix" in text

    def test_render_empty(self):
        text = ProfileReport().render()
        assert text.startswith("total")
