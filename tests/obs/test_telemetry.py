"""Worker telemetry capture: scoping, snapshots, merge, grafting."""

import pickle

import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.tracing import Tracer, get_tracer, set_tracer, span
from repro.obs.telemetry import (
    TelemetryCapture,
    TelemetrySnapshot,
    capture_telemetry,
    comparable_snapshot,
    export_spans,
    merge_snapshot,
    tree_shape,
)


class TestTelemetryCapture:
    def test_scopes_the_global_registry(self):
        outer = MetricsRegistry()
        previous = set_metrics(outer)
        try:
            with TelemetryCapture() as capture:
                get_metrics().counter("inner.total").inc(3)
            assert get_metrics() is outer
            assert "inner.total" not in outer
            assert capture.snapshot.metrics["inner.total"]["value"] == 3.0
        finally:
            set_metrics(previous)

    def test_restores_on_exception(self):
        outer_metrics = get_metrics()
        outer_tracer = get_tracer()
        with pytest.raises(RuntimeError):
            with TelemetryCapture(tracing=True):
                get_metrics().counter("doomed").inc()
                raise RuntimeError("boom")
        assert get_metrics() is outer_metrics
        assert get_tracer() is outer_tracer

    def test_captures_spans_when_tracing(self):
        with TelemetryCapture(tracing=True) as capture:
            with span("unit.work", attrs={"k": 1}):
                with span("unit.inner"):
                    pass
        (payload,) = capture.snapshot.spans
        assert payload["name"] == "unit.work"
        assert payload["attrs"] == {"k": 1}
        assert payload["wall_ns"] >= 0
        assert payload["children"][0]["name"] == "unit.inner"

    def test_no_spans_when_not_tracing(self):
        with TelemetryCapture(tracing=False) as capture:
            with span("invisible"):
                pass
        assert capture.snapshot.spans == ()


class TestCaptureTelemetry:
    def test_returns_result_and_snapshot(self):
        def work(x):
            get_metrics().counter("work.total").inc()
            return x * 2

        result, snapshot = capture_telemetry(work, 21)
        assert result == 42
        assert snapshot.metrics["work.total"]["value"] == 1.0

    def test_exception_propagates_and_restores(self):
        previous = get_metrics()

        def explode():
            raise ValueError("nope")

        with pytest.raises(ValueError):
            capture_telemetry(explode)
        assert get_metrics() is previous

    def test_snapshot_is_picklable(self):
        def work():
            get_metrics().counter("a").inc()
            get_metrics().histogram("h", buckets=(1.0,)).observe(0.5)
            with span("s", attrs={"n": 2}):
                pass
            return None

        _, snapshot = capture_telemetry(work, tracing=True)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot
        assert clone.metrics["a"]["value"] == 1.0


class TestMergeSnapshot:
    def test_counters_add_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        registry.gauge("g").set(1.0)
        snapshot = TelemetrySnapshot(
            metrics={
                "c": {"type": "counter", "value": 2.0},
                "g": {"type": "gauge", "value": 7.0},
            }
        )
        merge_snapshot(snapshot, metrics=registry)
        assert registry.counter("c").value == 3.0
        assert registry.gauge("g").value == 7.0

    def test_histograms_merge_bucketwise(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = TelemetrySnapshot(
            metrics={
                "h": {
                    "type": "histogram",
                    "buckets": [1.0, 2.0],
                    "counts": [0, 1, 1],
                    "sum": 4.5,
                    "count": 2,
                }
            }
        )
        merge_snapshot(snapshot, metrics=registry)
        h = registry.histogram("h", buckets=(1.0, 2.0))
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(5.0)

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = TelemetrySnapshot(
            metrics={
                "h": {
                    "type": "histogram",
                    "buckets": [5.0],
                    "counts": [1, 0],
                    "sum": 1.0,
                    "count": 1,
                }
            }
        )
        with pytest.raises(ValidationError, match="bucket mismatch"):
            merge_snapshot(snapshot, metrics=registry)

    def test_unknown_type_raises(self):
        with pytest.raises(ValidationError, match="cannot merge"):
            merge_snapshot(
                TelemetrySnapshot(metrics={"x": {"type": "summary"}}),
                metrics=MetricsRegistry(),
            )

    def test_grafts_spans_under_current(self):
        def work():
            with span("worker.op"):
                with span("worker.leaf"):
                    pass

        _, snapshot = capture_telemetry(work, tracing=True)
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            merge_snapshot(snapshot, metrics=MetricsRegistry(), tracer=tracer)
        (root,) = tracer.roots
        (grafted,) = root.children
        assert grafted.name == "worker.op"
        assert grafted.children[0].name == "worker.leaf"
        # Grafted spans stay inside the parent's interval and keep
        # child containment after the time shift.
        assert root.start_wall_ns <= grafted.start_wall_ns
        assert grafted.start_wall_ns <= grafted.children[0].start_wall_ns
        assert grafted.children[0].end_wall_ns <= grafted.end_wall_ns

    def test_sequential_graft_layout(self):
        def work(name):
            with span(name):
                pass

        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            for name in ("first", "second"):
                _, snapshot = capture_telemetry(work, name, tracing=True)
                merge_snapshot(
                    snapshot, metrics=MetricsRegistry(), tracer=tracer
                )
        first, second = tracer.roots[0].children
        assert first.name == "first" and second.name == "second"
        # Siblings are laid out sequentially, never overlapping.
        assert second.start_wall_ns >= first.end_wall_ns

    def test_graft_noop_on_disabled_tracer(self):
        def work():
            with span("w"):
                pass

        _, snapshot = capture_telemetry(work, tracing=True)
        tracer = Tracer(enabled=False)
        merge_snapshot(snapshot, metrics=MetricsRegistry(), tracer=tracer)
        assert tracer.roots == []


class TestComparableViews:
    def test_histograms_reduce_to_counts(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.123)
        registry.counter("c").inc(2)
        view = comparable_snapshot(registry.snapshot())
        assert view["h"] == {"type": "histogram", "count": 1}
        assert view["c"] == {"type": "counter", "value": 2.0}

    def test_volatile_metrics_dropped(self):
        registry = MetricsRegistry()
        registry.gauge("gridexec.workers").set(4)
        registry.counter("gridexec.tasks_total").inc()
        view = comparable_snapshot(registry.snapshot())
        assert "gridexec.workers" not in view
        assert "gridexec.tasks_total" in view

    def test_tree_shape_strips_timing_and_workers(self):
        tracer = Tracer(enabled=True)
        with tracer.span("grid", attrs={"workers": 4, "tasks": 2}):
            with tracer.span("task", attrs={"task": "a"}):
                pass
        shape = tree_shape(tracer.to_tree())
        assert shape == [
            {
                "name": "grid",
                "attrs": {"tasks": 2},
                "children": [
                    {"name": "task", "attrs": {"task": "a"}, "children": []}
                ],
            }
        ]

    def test_tree_shape_accepts_payloads(self):
        tracer = Tracer(enabled=True)
        with tracer.span("op", attrs={"workers": 1}):
            pass
        payloads = export_spans(tracer)
        assert tree_shape(payloads) == [
            {"name": "op", "attrs": {}, "children": []}
        ]
