"""Tracer behaviour: nesting, timing, exports, and no-op overhead."""

import json
import time

import pytest

from repro.obs.tracing import Tracer, get_tracer, set_tracer, span


class TestSpanTree:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        roots = tracer.roots
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_wall_time_measured(self):
        tracer = Tracer()
        with tracer.span("sleepy"):
            time.sleep(0.02)
        root = tracer.roots[0]
        assert root.wall_ms >= 15.0
        assert root.cpu_ms >= 0.0
        # Sleeping burns almost no CPU.
        assert root.cpu_ms < root.wall_ms

    def test_child_contained_in_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                time.sleep(0.005)
        parent, child = tracer.roots[0], tracer.roots[0].children[0]
        assert parent.start_wall_ns <= child.start_wall_ns
        assert child.end_wall_ns <= parent.end_wall_ns
        assert parent.wall_ms >= child.wall_ms

    def test_attrs_and_set_attr(self):
        tracer = Tracer()
        with tracer.span("op", attrs={"k": 1}) as current:
            current.set_attr("late", "v")
        assert tracer.roots[0].attrs == {"k": 1, "late": "v"}

    def test_exception_recorded_and_stack_unwound(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise RuntimeError("boom")
        outer = tracer.roots[0]
        failing = outer.children[0]
        assert failing.attrs["error"] == "RuntimeError"
        assert failing.end_wall_ns >= failing.start_wall_ns
        # A new span after the failure is a fresh root, not a child.
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]

    def test_nested_unwind_finalizes_every_span(self):
        # Regression: an exception unwinding through several spans must
        # finalize each one — end times recorded, error attrs set — so
        # failed runs still export complete, well-formed traces.
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("middle"):
                    with tracer.span("inner"):
                        raise ValueError("x" * 500)
        outer = tracer.roots[0]
        middle = outer.children[0]
        inner = middle.children[0]
        for node in (outer, middle, inner):
            assert node.attrs["error"] == "ValueError"
            assert node.end_wall_ns >= node.start_wall_ns
            # Messages are truncated so huge payloads never bloat traces.
            assert len(node.attrs["error_message"]) <= 200
        # Containment still holds after the unwind.
        assert inner.end_wall_ns <= middle.end_wall_ns <= outer.end_wall_ns
        # The error attrs survive both export paths.
        (tree,) = tracer.to_tree()
        assert tree["attrs"]["error"] == "ValueError"
        assert tree["children"][0]["children"][0]["attrs"]["error"] == (
            "ValueError"
        )
        events = json.loads(tracer.to_chrome_json())["traceEvents"]
        assert all(e["args"]["error"] == "ValueError" for e in events)

    def test_to_tree_and_clear(self):
        tracer = Tracer()
        with tracer.span("a", attrs={"x": 2}):
            with tracer.span("b"):
                pass
        (tree,) = tracer.to_tree()
        assert tree["name"] == "a"
        assert tree["attrs"] == {"x": 2}
        assert tree["children"][0]["name"] == "b"
        assert tree["wall_ms"] >= 0.0
        tracer.clear()
        assert tracer.roots == []

    def test_render_is_indented(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("nested"):
                pass
        text = tracer.render()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  nested")
        assert "wall" in lines[0] and "cpu" in lines[0]


class TestChromeExport:
    def test_schema(self):
        tracer = Tracer()
        with tracer.span("pipeline.predict", attrs={"n": 3}):
            with tracer.span("pipeline.stage.select_features"):
                pass
        payload = json.loads(tracer.to_chrome_json())
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert set(event) >= {
                "name", "cat", "ph", "ts", "dur", "pid", "tid", "args",
            }
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        parent = next(e for e in events if e["name"] == "pipeline.predict")
        child = next(
            e for e in events if e["name"] == "pipeline.stage.select_features"
        )
        assert parent["cat"] == "pipeline"
        assert parent["args"]["n"] == "3"
        # Child event is contained in its parent on the timeline.
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6

    def test_empty_trace_is_valid(self):
        payload = json.loads(Tracer().to_chrome_json())
        assert payload["traceEvents"] == []


class TestGlobalTracer:
    def test_default_is_disabled(self):
        assert get_tracer().enabled is False

    def test_set_and_restore(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with span("via.global"):
                pass
            assert [r.name for r in tracer.roots] == ["via.global"]
        finally:
            set_tracer(previous)
        with span("after.restore"):
            pass
        assert [r.name for r in tracer.roots] == ["via.global"]

    def test_disabled_span_overhead_under_5us(self):
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            with span("noop"):
                pass
        per_span = (time.perf_counter() - start) / n
        assert per_span < 5e-6

    def test_disabled_span_is_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")
        assert tracer.roots == []
