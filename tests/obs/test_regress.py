"""Regression detection: classification, tolerance bands, verdicts."""

import json
from pathlib import Path

import pytest

from repro.obs.ledger import build_row
from repro.obs.regress import (
    check_bench,
    classify,
    diff_rows,
    flatten,
    is_timing,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestClassify:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("serial_s", "lower"),
            ("distance_cache.warm_s", "lower"),
            ("latency_ms", "lower"),
            ("fit_seconds", "lower"),
            ("strategy_grid.mean_nrmse", "lower"),
            ("caches.fit_cache.misses", "lower"),
            ("pruned_knn.accuracy", "higher"),
            ("caches.distance_cache.hit_rate", "higher"),
            ("pruned_knn.skip_rate", "higher"),
            ("speedup", "higher"),
            ("loadgen.requests_per_s", "higher"),
            ("warm.requests_per_sec", "higher"),
            ("serve.p50_ms", "lower"),
            ("serve.cold_over_warm_speedup", "higher"),
            ("warm.hit_rate", "higher"),
            ("sfs_fit_cache.warm_fits", "zero"),
            ("distance_cache.warm_pairs_computed", "zero"),
            ("caches.fit_cache.corrupt", "zero"),
            ("jobs_requested", None),
            ("cpu_count", None),
        ],
    )
    def test_direction_by_leaf_name(self, name, expected):
        assert classify(name) == expected

    def test_rates_count_as_timings(self):
        # Rates flap on loaded runners just like wall-clock timings do,
        # so insufficient_cores must skip them too.
        assert is_timing("loadgen.requests_per_s")
        assert is_timing("serve.p50_ms")
        assert not is_timing("warm.hit_rate")


class TestFlatten:
    def test_nested_paths_and_types(self):
        doc = {"a": {"b_s": 1.5, "ok": True}, "n": 3, "skip": "text"}
        flat = flatten(doc)
        assert flat == {"a.b_s": 1.5, "a.ok": True, "n": 3}
        assert isinstance(flat["a.ok"], bool)


class TestCheckBench:
    def test_identical_docs_are_ok(self):
        doc = {"sect": {"cold_s": 1.0, "accuracy": 0.9, "warm_fits": 0}}
        verdict = check_bench(doc, [doc])
        assert verdict.ok
        assert verdict.compared == 3
        assert verdict.findings == []

    def test_timing_regression_detected(self):
        base = {"sect": {"warm_s": 1.0}}
        verdict = check_bench({"sect": {"warm_s": 2.0}}, [base])
        assert not verdict.ok
        (finding,) = verdict.regressions
        assert finding.name == "sect.warm_s"
        assert finding.current == 2.0

    def test_timing_within_band_passes(self):
        base = {"sect": {"warm_s": 1.0}}
        verdict = check_bench({"sect": {"warm_s": 1.2}}, [base])
        assert verdict.ok

    def test_abs_floor_absorbs_tiny_jitter(self):
        # 5 ms vs 1 ms is 5x relative but far below the absolute floor.
        verdict = check_bench(
            {"sect": {"warm_s": 0.005}}, [{"sect": {"warm_s": 0.001}}]
        )
        assert verdict.ok

    def test_quality_regression_detected(self):
        verdict = check_bench(
            {"sect": {"accuracy": 0.4}}, [{"sect": {"accuracy": 1.0}}]
        )
        assert not verdict.ok

    def test_improvement_reported_not_failing(self):
        verdict = check_bench(
            {"sect": {"warm_s": 0.2}}, [{"sect": {"warm_s": 10.0}}]
        )
        assert verdict.ok
        assert len(verdict.improvements) == 1

    def test_zero_expected_nonzero_fails_without_baseline_value(self):
        verdict = check_bench(
            {"sect": {"warm_fits": 4}}, [{"sect": {"other": 1}}]
        )
        assert not verdict.ok

    def test_bool_flip_fails(self):
        verdict = check_bench(
            {"sect": {"bit_identical": False}},
            [{"sect": {"bit_identical": True}}],
        )
        assert not verdict.ok

    def test_bool_true_passes(self):
        verdict = check_bench(
            {"sect": {"bit_identical": True}},
            [{"sect": {"bit_identical": True}}],
        )
        assert verdict.ok

    def test_insufficient_cores_skips_timings(self):
        base = {
            "parallel": {
                "insufficient_cores": False,
                "serial_s": 1.0,
                "bit_identical": True,
            }
        }
        current = {
            "parallel": {
                "insufficient_cores": True,
                "serial_s": 50.0,  # would regress, but the host is tiny
                "bit_identical": True,
            }
        }
        verdict = check_bench(current, baselines=[base])
        assert verdict.ok
        assert verdict.skipped >= 1

    def test_mean_over_multiple_baselines(self):
        baselines = [{"t_s": 1.0}, {"t_s": 3.0}]  # mean 2.0
        assert check_bench({"t_s": 2.4}, baselines).ok
        assert not check_bench({"t_s": 2.8}, baselines).ok

    def test_min_baseline_skips_sparse_history(self):
        verdict = check_bench(
            {"t_s": 100.0}, [{"t_s": 1.0}], min_baseline=2
        )
        assert verdict.ok
        assert verdict.compared == 0
        assert verdict.skipped == 1

    def test_unclassifiable_leaves_skipped(self):
        verdict = check_bench({"n_pairs": 9}, [{"n_pairs": 5}])
        assert verdict.ok
        assert verdict.compared == 0

    def test_verdict_to_dict_and_render(self):
        verdict = check_bench(
            {"sect": {"warm_s": 9.0}}, [{"sect": {"warm_s": 1.0}}]
        )
        payload = verdict.to_dict()
        assert payload["ok"] is False
        assert payload["regressions"][0]["name"] == "sect.warm_s"
        assert "REGRESSION" in verdict.render()

    @pytest.mark.parametrize(
        "name", ["BENCH_analysis.json", "BENCH_eval.json", "BENCH_serve.json"]
    )
    def test_committed_bench_files_pass_against_themselves(self, name):
        doc = json.loads((REPO_ROOT / name).read_text())
        verdict = check_bench(doc, [doc])
        assert verdict.ok, verdict.render()
        assert verdict.compared > 0


class TestDiffRows:
    def _row(self, elapsed_s, *, options=None, exit_code=0, stages=None):
        registry_snapshot = {}
        row = build_row(
            command="similarity",
            argv=["similarity"],
            options=options or {"corpus": "c.json"},
            exit_code=exit_code,
            elapsed_s=elapsed_s,
            cpu_s=elapsed_s,
            metrics_snapshot=registry_snapshot,
            tree=[
                {
                    "name": "cli.similarity",
                    "wall_ms": elapsed_s * 1e3,
                    "cpu_ms": elapsed_s * 1e3,
                    "children": [
                        {
                            "name": "similarity.distance_matrix",
                            "wall_ms": (stages or elapsed_s * 0.8) * 1e3,
                            "cpu_ms": 0.0,
                            "children": [],
                        }
                    ],
                }
            ],
        )
        return row

    def test_stable_history_is_ok(self):
        history = [self._row(1.0), self._row(1.1)]
        verdict = diff_rows(self._row(1.05), history)
        assert verdict.ok
        assert verdict.compared > 0

    def test_slowdown_is_regression(self):
        history = [self._row(1.0), self._row(1.0)]
        verdict = diff_rows(self._row(3.0), history)
        assert not verdict.ok
        names = [finding.name for finding in verdict.regressions]
        assert "elapsed_s" in names
        assert "stages.similarity.distance_matrix.wall_s" in names

    def test_different_config_not_comparable(self):
        history = [self._row(1.0, options={"corpus": "other.json"})]
        verdict = diff_rows(self._row(50.0), history)
        assert verdict.ok
        assert verdict.compared == 0

    def test_failed_runs_excluded_from_baseline(self):
        history = [self._row(0.01, exit_code=1), self._row(1.0)]
        verdict = diff_rows(self._row(1.05), history)
        assert verdict.ok

    def test_window_limits_baseline(self):
        history = [self._row(10.0)] + [self._row(1.0) for _ in range(5)]
        # The old slow run falls outside the window of 5.
        verdict = diff_rows(self._row(2.0), history, window=5)
        assert not verdict.ok
