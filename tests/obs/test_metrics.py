"""Metrics registry: instruments, bucket semantics, and exports."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
    get_metrics,
    set_metrics,
)


class TestCounter:
    def test_increments(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValidationError, match="cannot decrease"):
            counter.inc(-1)

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.counter("x").value == 2.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)  # == first bound -> first bucket (le semantics)
        h.observe(1.0001)  # just above -> second bucket
        h.observe(5.0)  # == last bound -> last finite bucket
        h.observe(7.0)  # above all bounds -> +Inf bucket
        assert h.counts == [1, 1, 1, 1]
        assert h.cumulative_counts() == [1, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(14.0001)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValidationError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValidationError, match="at least one"):
            Histogram("h", buckets=())

    def test_snapshot_shape(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["buckets"] == [1.0, 2.0]
        assert snap["counts"] == [1, 0, 0]
        assert snap["count"] == 1


class TestHistogramQuantiles:
    def test_interpolates_within_bucket(self):
        h = Histogram("h", buckets=(10.0,))
        for _ in range(4):
            h.observe(5.0)
        # All mass in [0, 10]: rank interpolates linearly across it.
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_uses_previous_bound_as_lower_edge(self):
        h = Histogram("h", buckets=(10.0, 20.0))
        h.observe(5.0)
        h.observe(15.0)
        h.observe(15.0)
        h.observe(15.0)
        # rank(0.5) = 2 -> one observation into the (10, 20] bucket.
        assert h.quantile(0.5) == pytest.approx(10.0 + 10.0 / 3.0)

    def test_saturates_at_last_finite_bound(self):
        h = Histogram("h", buckets=(10.0,))
        h.observe(500.0)  # lands in +Inf; estimate can't exceed 10
        assert h.quantile(0.99) == 10.0

    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.quantile(0.5) is None
        assert h.summary() == {"p50": None, "p90": None, "p99": None}

    def test_rejects_out_of_range_q(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValidationError):
            h.quantile(1.5)
        with pytest.raises(ValidationError):
            h.quantile(-0.1)

    def test_summary_is_monotone_and_in_snapshot(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 2.0, 3.0, 20.0, 50.0, 90.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["p50"] <= snap["p90"] <= snap["p99"]
        assert snap["p50"] == h.quantile(0.5)


class TestRegistry:
    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric.x")
        with pytest.raises(ValidationError, match="is a counter"):
            registry.gauge("metric.x")

    def test_snapshot_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a.total").inc(3)
        registry.gauge("b.level").set(0.5)
        registry.histogram("c.seconds", buckets=(1.0,)).observe(0.2)
        decoded = json.loads(registry.to_json())
        assert decoded["a.total"] == {"type": "counter", "value": 3.0}
        assert decoded["b.level"]["value"] == 0.5
        assert decoded["c.seconds"]["counts"] == [1, 0]
        assert registry.names() == ["a.total", "b.level", "c.seconds"]

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert "a" not in registry
        assert registry.snapshot() == {}

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("engine.steady_states_total").inc(2)
        registry.gauge("engine.bufferpool.hit_rate").set(0.75)
        h = registry.histogram("predict.latency_ms", buckets=(10.0, 100.0))
        h.observe(5.0)
        h.observe(250.0)
        text = registry.to_prometheus()
        assert "# TYPE engine_steady_states_total counter" in text
        assert "engine_steady_states_total 2" in text
        assert "engine_bufferpool_hit_rate 0.75" in text
        assert 'predict_latency_ms_bucket{le="10"} 1' in text
        assert 'predict_latency_ms_bucket{le="+Inf"} 2' in text
        assert "predict_latency_ms_sum 255" in text
        assert "predict_latency_ms_count 2" in text
        assert text.endswith("\n")


class TestPrometheusHardening:
    def test_escape_help_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"
        # Quotes are legal in help text and stay verbatim.
        assert escape_help('say "hi"') == 'say "hi"'

    def test_escape_label_value_quotes_too(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_help_line_is_escaped_and_precedes_type(self):
        registry = MetricsRegistry()
        registry.counter(
            "tricky.total", help='count of "tricky"\nthings \\ stuff'
        ).inc()
        text = registry.to_prometheus()
        lines = text.splitlines()
        assert lines[0] == (
            '# HELP tricky_total count of "tricky"\\nthings \\\\ stuff'
        )
        assert lines[1] == "# TYPE tricky_total counter"
        assert lines[2] == "tricky_total 1"
        # The escaped newline must not split the exposition line.
        assert len(lines) == 3

    def test_help_omitted_when_empty(self):
        registry = MetricsRegistry()
        registry.gauge("plain.level").set(1.0)
        assert "# HELP" not in registry.to_prometheus()

    def test_dotted_and_odd_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("engine.fit-cache.hits total").inc()
        text = registry.to_prometheus()
        assert "# TYPE engine_fit_cache_hits_total counter" in text
        assert "engine_fit_cache_hits_total 1" in text

    def test_histogram_help_type_then_series(self):
        registry = MetricsRegistry()
        h = registry.histogram(
            "lat.ms", buckets=(1.0,), help="request latency"
        )
        h.observe(0.5)
        lines = registry.to_prometheus().splitlines()
        assert lines[0] == "# HELP lat_ms request latency"
        assert lines[1] == "# TYPE lat_ms histogram"
        assert lines[2] == 'lat_ms_bucket{le="1"} 1'
        assert lines[3] == 'lat_ms_bucket{le="+Inf"} 1'
        assert lines[4].startswith("lat_ms_sum ")
        assert lines[5] == "lat_ms_count 1"

    def test_histogram_quantiles_follow_count(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat.ms", buckets=(10.0,))
        for _ in range(4):
            h.observe(5.0)
        lines = registry.to_prometheus().splitlines()
        count_at = lines.index("lat_ms_count 4")
        assert lines[count_at + 1] == 'lat_ms{quantile="0.5"} 5'
        assert lines[count_at + 2] == 'lat_ms{quantile="0.9"} 9'
        assert lines[count_at + 3] == 'lat_ms{quantile="0.99"} 9.9'

    def test_empty_histogram_emits_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("lat.ms", buckets=(10.0,))
        assert "quantile" not in registry.to_prometheus()


class TestGlobalRegistry:
    def test_set_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_metrics(fresh)
        try:
            get_metrics().counter("only.here").inc()
            assert "only.here" in fresh
            assert "only.here" not in previous
        finally:
            set_metrics(previous)
        assert get_metrics() is previous
