"""Run ledger: append/read round trips, torn tails, row assembly."""

import json

from repro.obs.ledger import (
    LEDGER_VERSION,
    RunLedger,
    build_row,
    cache_stats,
    condense_metrics,
    config_fingerprint,
    resolve_ledger_path,
    stage_times,
)
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics


class TestPathResolution:
    def test_jsonl_path_used_directly(self, tmp_path):
        target = tmp_path / "runs.jsonl"
        assert resolve_ledger_path(target) == target

    def test_directory_gets_default_name(self, tmp_path):
        assert resolve_ledger_path(tmp_path) == tmp_path / "ledger.jsonl"


class TestConfigFingerprint:
    def test_stable_under_key_order(self):
        a = config_fingerprint("similarity", {"x": 1, "y": "z"})
        b = config_fingerprint("similarity", {"y": "z", "x": 1})
        assert a == b

    def test_changes_with_options_and_command(self):
        base = config_fingerprint("similarity", {"jobs": 1})
        assert base != config_fingerprint("similarity", {"jobs": 4})
        assert base != config_fingerprint("cluster", {"jobs": 1})

    def test_handles_non_json_values(self):
        # Path-like and other objects are stringified, not fatal.
        from pathlib import Path

        assert config_fingerprint("c", {"out": Path("/tmp/x")})


class TestRowHelpers:
    def test_condense_metrics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.2)
        condensed = condense_metrics(registry.snapshot())
        assert condensed["c"] == {"type": "counter", "value": 3.0}
        assert condensed["g"] == {"type": "gauge", "value": 1.5}
        assert condensed["h"] == {
            "type": "histogram", "count": 1, "sum": 0.2,
        }

    def test_cache_stats(self):
        registry = MetricsRegistry()
        registry.counter("distance_cache.hits_total").inc(3)
        registry.counter("distance_cache.misses_total").inc(1)
        registry.counter("fit_cache.corrupt_total").inc(2)
        stats = cache_stats(registry.snapshot())
        assert stats["distance_cache"]["hits"] == 3.0
        assert stats["distance_cache"]["hit_rate"] == 0.75
        assert stats["fit_cache"]["corrupt"] == 2.0
        assert stats["fit_cache"]["hit_rate"] == 0.0
        # Families with no activity are omitted entirely.
        assert "corpus_cache" not in stats

    def test_stage_times_unwraps_cli_root(self):
        tree = [
            {
                "name": "cli.similarity",
                "wall_ms": 100.0,
                "cpu_ms": 90.0,
                "children": [
                    {"name": "stage.a", "wall_ms": 60.0, "cpu_ms": 50.0,
                     "children": []},
                    {"name": "stage.a", "wall_ms": 20.0, "cpu_ms": 20.0,
                     "children": []},
                    {"name": "stage.b", "wall_ms": 10.0, "cpu_ms": 10.0,
                     "children": []},
                ],
            }
        ]
        stages = stage_times(tree)
        assert stages["stage.a"]["wall_s"] == 0.08
        assert stages["stage.a"]["count"] == 2
        assert stages["stage.b"]["cpu_s"] == 0.01

    def test_build_row_shape(self):
        registry = MetricsRegistry()
        registry.counter("fit_cache.hits_total").inc(2)
        row = build_row(
            command="select",
            argv=["select", "--corpus", "c.json"],
            options={"corpus": "c.json"},
            exit_code=0,
            elapsed_s=1.25,
            cpu_s=1.0,
            metrics_snapshot=registry.snapshot(),
            manifest_digest="abc123",
        )
        assert row["ledger_version"] == LEDGER_VERSION
        assert row["command"] == "select"
        assert row["exit_code"] == 0
        assert row["caches"]["fit_cache"]["hits"] == 2.0
        assert row["manifest_digest"] == "abc123"
        assert row["config_fingerprint"] == config_fingerprint(
            "select", {"corpus": "c.json"}
        )
        # Rows must be JSON-serializable as written.
        json.dumps(row)


class TestRunLedger:
    def _row(self, **overrides):
        row = build_row(
            command="simulate", argv=["simulate"], options={},
            exit_code=0, elapsed_s=0.1, cpu_s=0.1,
        )
        row.update(overrides)
        return row

    def test_append_and_read_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self._row(elapsed_s=1.0))
        ledger.append(self._row(elapsed_s=2.0))
        rows = ledger.rows()
        assert [row["elapsed_s"] for row in rows] == [1.0, 2.0]
        assert ledger.last()["elapsed_s"] == 2.0
        assert len(ledger) == 2

    def test_persists_across_instances(self, tmp_path):
        RunLedger(tmp_path).append(self._row())
        RunLedger(tmp_path).append(self._row())
        assert len(RunLedger(tmp_path).rows()) == 2

    def test_torn_tail_healed_on_append(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self._row(elapsed_s=1.0))
        # Simulate a crash mid-append: a torn, newline-less tail.
        with ledger.path.open("ab") as handle:
            handle.write(b'{"ledger_version": 1, "elapsed')
        ledger.append(self._row(elapsed_s=2.0))
        rows = ledger.rows()
        assert [row["elapsed_s"] for row in rows] == [1.0, 2.0]

    def test_corrupt_lines_counted_not_fatal(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self._row())
        with ledger.path.open("a") as handle:
            handle.write("not json\n")
            handle.write('{"no_version_marker": true}\n')
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            assert len(ledger.rows()) == 1
            assert get_metrics().counter("ledger.corrupt_total").value == 2.0
        finally:
            set_metrics(previous)

    def test_empty_and_missing_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "never-written")
        assert ledger.rows() == []
        assert ledger.last() is None
