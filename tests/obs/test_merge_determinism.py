"""The worker-telemetry merge contract: serial == jobs=N telemetry.

Every parallel engine captures worker-side metrics and spans and merges
them back in submission order, so after stripping the explicitly
volatile content (worker-count gauge/attrs, histogram timings — see
:mod:`repro.obs.telemetry`) the telemetry of a run is identical at any
worker count.  These tests enforce that per executor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.fitexec import run_units
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.telemetry import comparable_snapshot, tree_shape
from repro.obs.tracing import Tracer, set_tracer
from repro.similarity.evaluation import distance_matrix
from repro.similarity.measures import get_measure
from repro.workloads import SKU, run_experiments, workload_by_name

JOBS = [None, 1, 4]


class _Observed:
    """Run a callable under a fresh registry + enabled tracer."""

    def __call__(self, fn):
        registry, tracer = MetricsRegistry(), Tracer(enabled=True)
        previous_registry = set_metrics(registry)
        previous_tracer = set_tracer(tracer)
        try:
            result = fn()
        finally:
            set_metrics(previous_registry)
            set_tracer(previous_tracer)
        return (
            result,
            comparable_snapshot(registry.snapshot()),
            tree_shape(tracer.to_tree()),
        )


@pytest.fixture
def observed():
    return _Observed()


def _square(unit):
    from repro.obs.metrics import get_metrics
    from repro.obs.tracing import span

    with span("test.square", attrs={"unit": unit}):
        get_metrics().counter("test.squares_total").inc()
    return unit * unit


class TestGridExecutor:
    def test_metrics_and_spans_match_across_jobs(self, observed):
        def build(jobs):
            return run_experiments(
                [workload_by_name("tpcc")],
                [SKU(cpus=4, memory_gb=32.0)],
                terminals_for=lambda w: (2,),
                n_runs=2,
                duration_s=120.0,
                random_state=5,
                jobs=jobs,
            )

        outcomes = [observed(lambda j=jobs: build(j)) for jobs in JOBS]
        _, baseline_metrics, baseline_shape = outcomes[0]
        assert baseline_metrics["runner.experiments_total"]["value"] == 2.0
        for _, metrics, shape in outcomes[1:]:
            assert metrics == baseline_metrics
            assert shape == baseline_shape


class TestDistanceMatrix:
    def test_metrics_and_spans_match_across_jobs(self, observed):
        rng = np.random.default_rng(11)
        matrices = [rng.normal(size=(20, 4)) for _ in range(8)]
        measure = get_measure("L2,1")

        outcomes = [
            observed(
                lambda j=jobs: distance_matrix(matrices, measure, jobs=j)
            )
            for jobs in JOBS
        ]
        D0, baseline_metrics, baseline_shape = outcomes[0]
        assert baseline_metrics["similarity.pairs_computed"]["value"] == 28.0
        # The per-pair histogram survives as a deterministic count.
        assert baseline_metrics["similarity.pair_seconds"]["count"] == 28
        names = {node["name"] for node in baseline_shape[0]["children"]}
        assert "similarity.pair_chunk" in names
        for D, metrics, shape in outcomes[1:]:
            np.testing.assert_array_equal(D, D0)
            assert metrics == baseline_metrics
            assert shape == baseline_shape


class TestFitExecutor:
    def test_worker_metrics_and_spans_survive_the_pool(self, observed):
        units = list(range(6))
        outcomes = [
            observed(lambda j=jobs: run_units(_square, units, jobs=j))
            for jobs in JOBS
        ]
        results0, baseline_metrics, baseline_shape = outcomes[0]
        assert results0 == [u * u for u in units]
        # Counters incremented inside workers come back via snapshots.
        assert baseline_metrics["test.squares_total"]["value"] == 6.0
        unit_spans = [
            node
            for node in baseline_shape[0]["children"]
            if node["name"] == "ml.fitexec.unit"
        ]
        assert [node["attrs"]["unit"] for node in unit_spans] == units
        assert [
            child["name"]
            for node in unit_spans
            for child in node["children"]
        ] == ["test.square"] * 6
        for results, metrics, shape in outcomes[1:]:
            assert results == results0
            assert metrics == baseline_metrics
            assert shape == baseline_shape


class TestForest:
    def test_batches_and_telemetry_independent_of_workers(self, observed):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 5))
        y = rng.normal(size=50)

        def fit(jobs):
            model = RandomForestRegressor(
                n_estimators=8, random_state=7, jobs=jobs
            ).fit(X, y)
            return model.predict(X[:10])

        outcomes = [observed(lambda j=jobs: fit(j)) for jobs in JOBS]
        preds0, baseline_metrics, baseline_shape = outcomes[0]
        assert baseline_metrics["ml.trees_fit_total"]["value"] == 8.0
        batches = [
            node
            for node in baseline_shape[0]["children"]
            if node["name"] == "ml.fit_tree_batch"
        ]
        # Batch layout is a pure function of n_estimators (8 -> 8
        # batches under FOREST_BATCH_TARGET=16), never of jobs.
        assert [node["attrs"]["batch"] for node in batches] == list(range(8))
        for preds, metrics, shape in outcomes[1:]:
            np.testing.assert_array_equal(preds, preds0)
            assert metrics == baseline_metrics
            assert shape == baseline_shape
