import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import (
    DecisionTreeRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml.forest import _resolve_max_features


@pytest.fixture
def friedman_like(rng):
    X = rng.uniform(size=(200, 5))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2] + 0.1 * rng.normal(
        size=200
    )
    return X, y


class TestRegressor:
    def test_fits_nonlinear_signal(self, friedman_like):
        X, y = friedman_like
        model = RandomForestRegressor(50, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_number_of_estimators(self, friedman_like):
        X, y = friedman_like
        model = RandomForestRegressor(7, random_state=0).fit(X, y)
        assert len(model.estimators_) == 7

    def test_averaging_smooths_vs_single_tree(self, friedman_like):
        X, y = friedman_like
        from repro.ml.model_selection import cross_val_score

        tree_scores = cross_val_score(
            DecisionTreeRegressor(max_depth=None), X, y, random_state=0
        )
        forest_scores = cross_val_score(
            RandomForestRegressor(40, random_state=0), X, y, random_state=0
        )
        assert forest_scores.mean() <= tree_scores.mean()  # lower NRMSE

    def test_importances_sum_to_one(self, friedman_like):
        X, y = friedman_like
        model = RandomForestRegressor(20, random_state=0).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)
        # Features 0..2 carry the signal, features 3..4 are noise.
        importances = model.feature_importances_
        assert importances[:3].sum() > importances[3:].sum()

    def test_deterministic_given_seed(self, friedman_like):
        X, y = friedman_like
        a = RandomForestRegressor(10, random_state=1).fit(X, y).predict(X)
        b = RandomForestRegressor(10, random_state=1).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_no_bootstrap(self, friedman_like):
        X, y = friedman_like
        model = RandomForestRegressor(
            5, bootstrap=False, max_features="all", random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.95


class TestClassifier:
    @pytest.fixture
    def blobs(self, rng):
        X = np.vstack(
            [
                rng.normal([0, 0], 0.6, (60, 2)),
                rng.normal([3, 3], 0.6, (60, 2)),
                rng.normal([0, 3], 0.6, (60, 2)),
            ]
        )
        y = np.repeat(["a", "b", "c"], 60)
        return X, y

    def test_accuracy(self, blobs):
        X, y = blobs
        model = RandomForestClassifier(30, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_proba_normalized(self, blobs):
        X, y = blobs
        proba = RandomForestClassifier(10, random_state=0).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_class_order_alignment(self, blobs):
        X, y = blobs
        model = RandomForestClassifier(10, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        predicted = model.classes_[np.argmax(proba, axis=1)]
        np.testing.assert_array_equal(predicted, model.predict(X))


class TestMaxFeatures:
    def test_sqrt(self):
        assert _resolve_max_features("sqrt", 29, "sqrt") == 5

    def test_third(self):
        assert _resolve_max_features("third", 29, "third") == 9

    def test_all_is_none(self):
        assert _resolve_max_features("all", 29, "sqrt") is None

    def test_int_passthrough(self):
        assert _resolve_max_features(4, 29, "sqrt") == 4

    def test_unknown_spec(self):
        with pytest.raises(ValidationError, match="max_features"):
            _resolve_max_features("bogus", 29, "sqrt")
