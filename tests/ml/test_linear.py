import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import (
    ElasticNet,
    Lasso,
    LinearRegression,
    PolynomialRegression,
    Ridge,
    lasso_path,
)
from repro.ml.linear import max_lasso_alpha


@pytest.fixture
def linear_data(rng):
    X = rng.normal(size=(100, 4))
    w = np.array([2.0, -1.0, 0.0, 0.5])
    y = X @ w + 3.0 + 0.01 * rng.normal(size=100)
    return X, y, w


class TestLinearRegression:
    def test_recovers_coefficients(self, linear_data):
        X, y, w = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, w, atol=0.02)
        assert model.intercept_ == pytest.approx(3.0, abs=0.02)

    def test_matches_normal_equations(self, rng):
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        model = LinearRegression(fit_intercept=False).fit(X, y)
        expected = np.linalg.solve(X.T @ X, X.T @ y)
        np.testing.assert_allclose(model.coef_, expected, atol=1e-10)

    def test_no_intercept(self, rng):
        X = rng.normal(size=(50, 2))
        y = X @ np.array([1.0, 2.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0

    def test_predict_shape(self, linear_data):
        X, y, _ = linear_data
        model = LinearRegression().fit(X, y)
        assert model.predict(X).shape == (100,)

    def test_rank_deficient_design_survives(self, rng):
        X = rng.normal(size=(20, 2))
        X = np.hstack([X, X[:, :1]])  # duplicated column
        y = rng.normal(size=20)
        model = LinearRegression().fit(X, y)
        assert np.all(np.isfinite(model.coef_))


class TestRidge:
    def test_zero_alpha_matches_ols(self, linear_data):
        X, y, _ = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinkage_monotone(self, linear_data):
        X, y, _ = linear_data
        norms = [
            np.linalg.norm(Ridge(alpha=a).fit(X, y).coef_)
            for a in (0.0, 1.0, 100.0)
        ]
        assert norms[0] > norms[1] > norms[2]

    def test_negative_alpha_rejected(self, linear_data):
        X, y, _ = linear_data
        with pytest.raises(ValidationError):
            Ridge(alpha=-1.0).fit(X, y)

    def test_intercept_unpenalized(self, rng):
        X = rng.normal(size=(200, 1))
        y = 100.0 + 0.0 * X.ravel() + 0.01 * rng.normal(size=200)
        model = Ridge(alpha=1e6).fit(X, y)
        assert model.intercept_ == pytest.approx(100.0, abs=0.1)


class TestLasso:
    def test_orthogonal_soft_threshold(self):
        # On an orthonormal design the lasso solution is soft-thresholded OLS.
        n = 64
        X = np.eye(n)
        y = np.zeros(n)
        y[0], y[1] = 2.0, 0.5
        model = Lasso(alpha=1.0 / n, fit_intercept=False).fit(X, y)
        # threshold = alpha * n / n = ... soft_threshold(y_j, alpha*n/1)
        # With column_norms = 1/n and penalty alpha/n: w = st(y/n, a/n)/(1/n).
        assert model.coef_[0] == pytest.approx(1.0, abs=1e-6)
        assert model.coef_[1] == pytest.approx(0.0, abs=1e-9)

    def test_sparsity_increases_with_alpha(self, linear_data):
        X, y, _ = linear_data
        small = Lasso(alpha=0.001).fit(X, y).n_nonzero_
        large = Lasso(alpha=0.5).fit(X, y).n_nonzero_
        assert large <= small

    def test_alpha_max_zeroes_everything(self, linear_data):
        X, y, _ = linear_data
        alpha_max = max_lasso_alpha(X, y)
        model = Lasso(alpha=alpha_max * 1.01).fit(X, y)
        assert model.n_nonzero_ == 0

    def test_irrelevant_feature_dropped(self, linear_data):
        X, y, w = linear_data
        model = Lasso(alpha=0.05).fit(X, y)
        assert model.coef_[2] == 0.0  # true coefficient is zero


class TestElasticNet:
    def test_l1_ratio_one_is_lasso(self, linear_data):
        X, y, _ = linear_data
        enet = ElasticNet(alpha=0.05, l1_ratio=1.0).fit(X, y)
        lasso = Lasso(alpha=0.05).fit(X, y)
        np.testing.assert_allclose(enet.coef_, lasso.coef_, atol=1e-6)

    def test_l1_ratio_zero_is_ridge_like(self, linear_data):
        X, y, _ = linear_data
        enet = ElasticNet(alpha=0.5, l1_ratio=0.0).fit(X, y)
        assert enet.n_nonzero_ == 4  # pure L2: no exact zeros

    def test_invalid_l1_ratio(self, linear_data):
        X, y, _ = linear_data
        with pytest.raises(ValidationError):
            ElasticNet(l1_ratio=1.5).fit(X, y)


class TestLassoPath:
    def test_path_shape_and_monotone_alphas(self, linear_data):
        X, y, _ = linear_data
        alphas, coefs = lasso_path(X, y, n_alphas=25)
        assert coefs.shape == (25, 4)
        assert np.all(np.diff(alphas) < 0)

    def test_path_starts_empty_ends_dense(self, linear_data):
        X, y, _ = linear_data
        _, coefs = lasso_path(X, y, n_alphas=30)
        assert np.count_nonzero(coefs[0]) == 0
        assert np.count_nonzero(coefs[-1]) >= 3

    def test_explicit_alphas_sorted_internally(self, linear_data):
        X, y, _ = linear_data
        alphas, coefs = lasso_path(X, y, alphas=[0.01, 1.0, 0.1])
        assert list(alphas) == sorted(alphas, reverse=True)
        assert coefs.shape == (3, 4)

    def test_empty_alphas_rejected(self, linear_data):
        X, y, _ = linear_data
        with pytest.raises(ValidationError):
            lasso_path(X, y, alphas=[])


class TestPolynomialRegression:
    def test_fits_quadratic(self, rng):
        x = rng.uniform(-2, 2, size=80)
        y = 1.0 + 2.0 * x - 3.0 * x**2
        model = PolynomialRegression(degree=2).fit(x.reshape(-1, 1), y)
        assert model.score(x.reshape(-1, 1), y) == pytest.approx(1.0)

    def test_degree_one_is_linear(self, linear_data):
        X, y, _ = linear_data
        poly = PolynomialRegression(degree=1).fit(X, y)
        ols = LinearRegression().fit(X, y)
        np.testing.assert_allclose(poly.coef_, ols.coef_, atol=1e-8)

    def test_feature_mismatch_raises(self, linear_data):
        X, y, _ = linear_data
        model = PolynomialRegression(degree=2).fit(X, y)
        with pytest.raises(ValidationError):
            model.predict(X[:, :2])

    def test_invalid_degree(self, linear_data):
        X, y, _ = linear_data
        with pytest.raises(ValidationError):
            PolynomialRegression(degree=0).fit(X, y)
