import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.metrics import (
    absolute_percentage_errors,
    accuracy_score,
    average_precision,
    dcg,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_average_precision,
    mean_squared_error,
    ndcg,
    normalized_rmse,
    r2_score,
    root_mean_squared_error,
)


class TestRegressionMetrics:
    def test_mse_zero_for_exact(self):
        assert mean_squared_error([1, 2], [1, 2]) == 0.0

    def test_mse_known_value(self):
        assert mean_squared_error([0, 0], [3, 4]) == pytest.approx(12.5)

    def test_rmse_is_sqrt_mse(self):
        assert root_mean_squared_error([0, 0], [3, 4]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_nrmse_normalizes_by_range(self):
        y_true = [0.0, 10.0]
        y_pred = [1.0, 9.0]
        assert normalized_rmse(y_true, y_pred) == pytest.approx(0.1)

    def test_nrmse_scale_invariance(self):
        y_true = np.array([1.0, 2.0, 3.0])
        y_pred = np.array([1.1, 2.2, 2.7])
        assert normalized_rmse(y_true * 100, y_pred * 100) == pytest.approx(
            normalized_rmse(y_true, y_pred)
        )

    def test_nrmse_flat_target_stays_finite(self):
        assert np.isfinite(normalized_rmse([5.0, 5.0], [6.0, 6.0]))

    def test_nrmse_perfect_prediction_is_zero_even_when_flat(self):
        assert normalized_rmse([5.0, 5.0], [5.0, 5.0]) == 0.0
        near_flat = [1e6, 1e6 + 1e-7]
        assert normalized_rmse(near_flat, near_flat) == 0.0

    def test_nrmse_near_constant_target_rejected(self):
        """A vanishing (but non-zero) range would amplify any error into
        floating-point noise masquerading as a huge score."""
        y_true = [1e6, 1e6 + 1e-7]
        with pytest.raises(ValidationError, match="near-constant"):
            normalized_rmse(y_true, [1e6, 1e6])

    def test_nrmse_small_but_sane_range_still_works(self):
        # A small absolute range on a small-magnitude target is fine.
        assert np.isfinite(normalized_rmse([0.0, 1e-6], [0.0, 2e-6]))

    def test_mae(self):
        assert mean_absolute_error([1, 2], [2, 4]) == 1.5

    def test_mape(self):
        assert mean_absolute_percentage_error([10, 20], [11, 18]) == (
            pytest.approx(0.1)
        )

    def test_mape_zero_target_raises(self):
        with pytest.raises(ValidationError, match="zero"):
            mean_absolute_percentage_error([0, 1], [1, 1])

    def test_ape_per_observation(self):
        np.testing.assert_allclose(
            absolute_percentage_errors([10, 20], [11, 18]), [0.1, 0.1]
        )

    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_mean_prediction_is_zero(self):
        assert r2_score([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([2, 2], [2, 2]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            mean_squared_error([1, 2], [1, 2, 3])


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score(["a", "b", "a"], ["a", "b", "b"]) == (
            pytest.approx(2 / 3)
        )

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            accuracy_score([], [])


class TestRankingMetrics:
    def test_average_precision_perfect(self):
        assert average_precision([1, 1, 0, 0]) == 1.0

    def test_average_precision_worst(self):
        # Relevant items at the end.
        value = average_precision([0, 0, 1])
        assert value == pytest.approx(1 / 3)

    def test_average_precision_known(self):
        # Relevant at positions 1 and 3: (1/1 + 2/3) / 2.
        assert average_precision([1, 0, 1]) == pytest.approx((1 + 2 / 3) / 2)

    def test_no_relevant_items_gives_one(self):
        assert average_precision([0, 0, 0]) == 1.0

    def test_map_averages(self):
        value = mean_average_precision([[1, 0], [0, 1]])
        assert value == pytest.approx((1.0 + 0.5) / 2)

    def test_dcg_order_matters(self):
        assert dcg([3, 2, 1]) > dcg([1, 2, 3])

    def test_dcg_known_value(self):
        expected = 3 + 2 / np.log2(3) + 1 / np.log2(4)
        assert dcg([3, 2, 1]) == pytest.approx(expected)

    def test_ndcg_perfect_order(self):
        assert ndcg([3, 2, 1]) == pytest.approx(1.0)

    def test_ndcg_worst_order_below_one(self):
        assert ndcg([1, 2, 3]) < 1.0

    def test_ndcg_all_zero_gains(self):
        assert ndcg([0, 0, 0]) == 1.0

    def test_ndcg_k_truncation(self):
        assert ndcg([0, 3], k=1) == 0.0
