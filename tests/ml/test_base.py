import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml import LinearRegression, Ridge, clone
from repro.ml.base import BaseEstimator


class TestGetSetParams:
    def test_get_params(self):
        model = Ridge(alpha=2.5, fit_intercept=False)
        assert model.get_params() == {"alpha": 2.5, "fit_intercept": False}

    def test_set_params(self):
        model = Ridge()
        model.set_params(alpha=9.0)
        assert model.alpha == 9.0

    def test_set_invalid_param(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            Ridge().set_params(bogus=1)

    def test_repr_contains_params(self):
        assert "alpha=1.0" in repr(Ridge())


class TestClone:
    def test_clone_copies_params(self):
        original = Ridge(alpha=3.0)
        copy = clone(original)
        assert copy is not original
        assert copy.alpha == 3.0

    def test_clone_is_unfitted(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.arange(10, dtype=float)
        original = Ridge().fit(X, y)
        copy = clone(original)
        assert not hasattr(copy, "coef_")

    def test_clone_deep_copies_mutable_params(self):
        model = LinearRegression()
        copy = clone(model)
        assert copy.get_params() == model.get_params()


class TestNotFitted:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError, match="fit"):
            LinearRegression().predict([[1.0]])


class TestScoreMixins:
    def test_regressor_score_is_r2(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = 2 * X.ravel() + 1
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)

    def test_param_names_excludes_self(self):
        class Dummy(BaseEstimator):
            def __init__(self, a=1, b=2):
                self.a = a
                self.b = b

        assert Dummy._param_names() == ["a", "b"]
