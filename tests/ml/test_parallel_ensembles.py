"""Bit-identical parallel ensemble fits and the presort fast path."""

import pickle

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.obs.metrics import MetricsRegistry, set_metrics


@pytest.fixture
def regression_data(rng):
    X = rng.uniform(size=(160, 5))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2] + 0.1 * (
        rng.normal(size=160)
    )
    return X, y


@pytest.fixture
def classification_data(rng):
    X = rng.normal(size=(150, 4))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _trees_identical(tree_a, tree_b):
    builder_a, builder_b = tree_a._builder, tree_b._builder
    np.testing.assert_array_equal(builder_a._feature, builder_b._feature)
    np.testing.assert_array_equal(builder_a._threshold, builder_b._threshold)
    np.testing.assert_array_equal(builder_a._left, builder_b._left)
    np.testing.assert_array_equal(builder_a._right, builder_b._right)
    np.testing.assert_array_equal(builder_a._values, builder_b._values)


class TestParallelForestIdentity:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_regressor_identical_at_any_worker_count(
        self, regression_data, jobs
    ):
        X, y = regression_data
        serial = RandomForestRegressor(12, random_state=0).fit(X, y)
        parallel = RandomForestRegressor(12, random_state=0, jobs=jobs).fit(
            X, y
        )
        assert len(serial.estimators_) == len(parallel.estimators_)
        for tree_s, tree_p in zip(serial.estimators_, parallel.estimators_):
            _trees_identical(tree_s, tree_p)
        np.testing.assert_array_equal(
            serial.feature_importances_, parallel.feature_importances_
        )
        np.testing.assert_array_equal(
            serial.predict(X), parallel.predict(X)
        )

    def test_classifier_identical_at_any_worker_count(
        self, classification_data
    ):
        X, y = classification_data
        serial = RandomForestClassifier(10, random_state=3).fit(X, y)
        parallel = RandomForestClassifier(10, random_state=3, jobs=4).fit(
            X, y
        )
        for tree_s, tree_p in zip(serial.estimators_, parallel.estimators_):
            _trees_identical(tree_s, tree_p)
        np.testing.assert_array_equal(
            serial.predict(X), parallel.predict(X)
        )
        np.testing.assert_array_equal(
            serial.predict_proba(X), parallel.predict_proba(X)
        )

    def test_jobs0_uses_all_cpus_and_stays_identical(self, regression_data):
        X, y = regression_data
        serial = RandomForestRegressor(6, random_state=1).fit(X, y)
        auto = RandomForestRegressor(6, random_state=1, jobs=0).fit(X, y)
        np.testing.assert_array_equal(serial.predict(X), auto.predict(X))

    def test_more_workers_than_trees(self, regression_data):
        X, y = regression_data
        serial = RandomForestRegressor(2, random_state=0).fit(X, y)
        wide = RandomForestRegressor(2, random_state=0, jobs=8).fit(X, y)
        for tree_s, tree_w in zip(serial.estimators_, wide.estimators_):
            _trees_identical(tree_s, tree_w)


class TestPresortFastPath:
    def test_presorted_tree_identical_to_plain(self, regression_data):
        X, y = regression_data
        plain = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
        presorted = np.argsort(X, axis=0, kind="stable")
        fast = DecisionTreeRegressor(max_depth=4, random_state=0).fit(
            X, y, presorted=presorted
        )
        _trees_identical(plain, fast)
        np.testing.assert_array_equal(plain.predict(X), fast.predict(X))

    def test_presort_shape_validated(self, regression_data):
        X, y = regression_data
        with pytest.raises(Exception):
            DecisionTreeRegressor().fit(
                X, y, presorted=np.zeros((3, 3), dtype=np.intp)
            )

    def test_boosting_matches_historical_fit(self, regression_data):
        # subsample=1.0 activates the shared presort cache; the fitted
        # model must be indistinguishable from one built per-stage.
        X, y = regression_data
        model = GradientBoostingRegressor(
            30, max_depth=3, random_state=0
        ).fit(X, y)
        stage_trees = []
        current = np.full(y.shape, float(y.mean()))
        from repro.utils.rng import spawn_generators

        for rng_stage in spawn_generators(0, 30):
            tree = DecisionTreeRegressor(
                max_depth=3, random_state=rng_stage
            ).fit(X, y - current)
            current += 0.1 * tree.predict(X)
            stage_trees.append(tree)
        for fast, slow in zip(model.estimators_, stage_trees):
            _trees_identical(fast, slow)

    def test_boosting_subsample_path_still_works(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(
            20, subsample=0.7, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.5


class TestCompactTrees:
    def test_pickle_size_independent_of_training_set(self, rng):
        # finalize() must drop the X/y/presort references so parallel
        # workers ship compact trees back, not the training data.  A
        # depth-capped tree's pickle therefore barely grows when the
        # training set grows 16x.
        def fitted_bytes(n):
            X = rng.uniform(size=(n, 5))
            y = X[:, 0] + X[:, 1]
            presorted = np.argsort(X, axis=0, kind="stable")
            tree = DecisionTreeRegressor(max_depth=3, random_state=0).fit(
                X, y, presorted=presorted
            )
            assert tree._builder._X is None
            assert tree._builder._y is None
            assert tree._builder._presorted is None
            return len(pickle.dumps(tree))

        small, large = fitted_bytes(125), fitted_bytes(2000)
        assert large < small * 2

    def test_pickled_tree_round_trips_predictions(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=6, random_state=0).fit(X, y)
        clone = pickle.loads(pickle.dumps(tree))
        np.testing.assert_array_equal(tree.predict(X), clone.predict(X))

    def test_pickled_forest_round_trips(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(8, random_state=0, jobs=2).fit(X, y)
        clone = pickle.loads(pickle.dumps(forest))
        np.testing.assert_array_equal(forest.predict(X), clone.predict(X))


class TestEnsembleObservability:
    def test_trees_fit_counter(self, regression_data, metrics):
        X, y = regression_data
        RandomForestRegressor(5, random_state=0).fit(X, y)
        assert metrics.counter("ml.trees_fit_total").value == 5
        GradientBoostingRegressor(7, random_state=0).fit(X, y)
        assert metrics.counter("ml.trees_fit_total").value == 12
