"""The shared fit executor and the content-addressed fit cache."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.fitexec import (
    FitCache,
    array_digest,
    as_fit_cache,
    count_fits,
    fit_key,
    run_units,
)
from repro.obs.metrics import MetricsRegistry, set_metrics


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _square(unit):
    return unit * unit


class TestFitKey:
    def test_deterministic(self):
        X = np.arange(12.0).reshape(4, 3)
        a = fit_key(estimator="linear", arrays={"X": X}, seed=0)
        b = fit_key(estimator="linear", arrays={"X": X.copy()}, seed=0)
        assert a == b

    def test_sensitive_to_data(self):
        X = np.arange(12.0).reshape(4, 3)
        base = fit_key(estimator="linear", arrays={"X": X})
        nudged = X.copy()
        nudged[0, 0] += 1e-12
        assert fit_key(estimator="linear", arrays={"X": nudged}) != base

    def test_sensitive_to_every_field(self):
        X = np.ones((3, 2))
        base = dict(
            estimator="linear", arrays={"X": X}, params={"a": 1},
            seed=0, fold="kfold:3", scorer="r2",
        )
        reference = fit_key(**base)
        for field, value in (
            ("estimator", "logreg"),
            ("params", {"a": 2}),
            ("seed", 1),
            ("fold", "kfold:5"),
            ("scorer", "accuracy"),
        ):
            assert fit_key(**{**base, field: value}) != reference

    def test_array_roles_matter(self):
        X = np.ones((3, 2))
        assert fit_key(
            estimator="e", arrays={"X": X}
        ) != fit_key(estimator="e", arrays={"y": X})

    def test_array_digest_shape_sensitive(self):
        flat = np.arange(6.0)
        assert array_digest(flat) != array_digest(flat.reshape(2, 3))


class TestFitCache:
    def test_round_trip(self, tmp_path, metrics):
        cache = FitCache(tmp_path)
        cache.put("k", [1.0, 2.5])
        assert cache.get("k") == [1.0, 2.5]
        reopened = FitCache(tmp_path)
        assert reopened.get("k") == [1.0, 2.5]

    @given(
        value=st.recursive(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(
                    st.text(max_size=8), children, max_size=4
                ),
            ),
            max_leaves=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_values_round_trip_exactly(self, tmp_path_factory, value):
        tmp_path = tmp_path_factory.mktemp("fitcache")
        previous = set_metrics(MetricsRegistry())
        try:
            cache = FitCache(tmp_path)
            cache.put("k", value)
            assert FitCache(tmp_path).get("k") == cache.get("k")
        finally:
            set_metrics(previous)

    def test_non_finite_never_persisted(self, tmp_path, metrics):
        cache = FitCache(tmp_path)
        cache.put("inf", float("-inf"))
        cache.put("nan", [1.0, float("nan")])
        cache.put("nested", {"scores": [1.0, float("inf")]})
        cache.put("bool", True)
        assert len(cache) == 0
        assert cache.get("inf") is None

    def test_corrupt_lines_tolerated(self, tmp_path, metrics):
        cache = FitCache(tmp_path)
        cache.put("good", 1.5)
        path = tmp_path / "fits.jsonl"
        with path.open("a") as handle:
            handle.write("{torn json\n")
            handle.write(json.dumps({"key": "bad", "value": None}) + "\n")
            handle.write(json.dumps({"key": "ok", "value": 2.0}) + "\n")
        reopened = FitCache(tmp_path)
        assert reopened.get("good") == 1.5
        assert reopened.get("ok") == 2.0
        assert metrics.counter("fit_cache.corrupt_total").value == 2

    def test_heals_torn_tail_on_append(self, tmp_path, metrics):
        cache = FitCache(tmp_path)
        cache.put("a", 1.0)
        path = tmp_path / "fits.jsonl"
        with path.open("ab") as handle:
            handle.write(b'{"key": "torn"')  # no trailing newline
        cache2 = FitCache(tmp_path)
        cache2.put("b", 2.0)
        reopened = FitCache(tmp_path)
        assert reopened.get("a") == 1.0
        assert reopened.get("b") == 2.0

    def test_hit_miss_metrics(self, tmp_path, metrics):
        cache = FitCache(tmp_path)
        assert cache.get("absent") is None
        cache.put("k", 3.0)
        cache.get("k")
        assert metrics.counter("fit_cache.misses_total").value == 1
        assert metrics.counter("fit_cache.hits_total").value == 1

    def test_clear(self, tmp_path, metrics):
        cache = FitCache(tmp_path)
        cache.put("k", 1.0)
        cache.clear()
        assert len(cache) == 0
        assert not (tmp_path / "fits.jsonl").exists()
        assert FitCache(tmp_path).get("k") is None


class TestAsFitCache:
    def test_none_passthrough(self):
        assert as_fit_cache(None) is None

    def test_cache_passthrough(self, tmp_path):
        cache = FitCache(tmp_path)
        assert as_fit_cache(cache) is cache

    def test_path_coerced(self, tmp_path):
        assert isinstance(as_fit_cache(str(tmp_path)), FitCache)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="fit_cache"):
            as_fit_cache(42)


class TestRunUnits:
    def test_serial_matches_parallel(self):
        units = list(range(20))
        assert run_units(_square, units) == run_units(
            _square, units, jobs=4
        )

    def test_results_in_submission_order(self):
        units = [5.0, 1.0, 3.0]
        assert run_units(_square, units, jobs=2) == [25.0, 1.0, 9.0]

    def test_empty_units(self):
        assert run_units(_square, []) == []
        assert run_units(_square, [], jobs=4) == []

    def test_count_fits_publishes(self, metrics):
        count_fits(3)
        count_fits(0)
        assert metrics.counter("ml.fits_total").value == 3
