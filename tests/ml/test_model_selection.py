import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import KFold, LinearRegression, Ridge, cross_val_score, train_test_split
from repro.ml.metrics import r2_score


class TestKFold:
    def test_partition_covers_everything(self):
        folds = list(KFold(5).split(np.arange(23)))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(23))

    def test_folds_disjoint_from_train(self):
        for train, test in KFold(4).split(np.arange(20)):
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 20

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(5).split(np.arange(23))]
        assert max(sizes) - min(sizes) <= 1

    def test_shuffle_reproducible(self):
        a = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(np.arange(9))]
        b = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(np.arange(9))]
        assert a == b

    def test_shuffle_changes_order(self):
        plain = [t.tolist() for _, t in KFold(3).split(np.arange(30))]
        shuffled = [
            t.tolist()
            for _, t in KFold(3, shuffle=True, random_state=0).split(np.arange(30))
        ]
        assert plain != shuffled

    def test_too_many_splits(self):
        with pytest.raises(ValidationError):
            list(KFold(5).split(np.arange(3)))

    def test_min_two_splits(self):
        with pytest.raises(ValidationError):
            KFold(1)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0)
        assert X_te.shape[0] == 10
        assert X_tr.shape[0] == 30
        assert y_tr.shape[0] == 30 and y_te.shape[0] == 10

    def test_no_overlap(self, rng):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.arange(20, dtype=float)
        X_tr, X_te, _, _ = train_test_split(X, y, random_state=0)
        assert set(X_tr.ravel()) & set(X_te.ravel()) == set()

    def test_invalid_test_size(self, rng):
        X = rng.normal(size=(10, 1))
        with pytest.raises(ValidationError):
            train_test_split(X, X.ravel(), test_size=1.5)


class TestCrossValScore:
    def test_default_nrmse_near_zero_for_clean_linear(self, rng):
        X = rng.normal(size=(100, 2))
        y = X @ np.array([1.0, 2.0])
        scores = cross_val_score(LinearRegression(), X, y)
        assert scores.shape == (5,)
        assert scores.max() < 0.01

    def test_custom_scorer(self, rng):
        X = rng.normal(size=(60, 1))
        y = 2 * X.ravel()
        scores = cross_val_score(LinearRegression(), X, y, scorer=r2_score)
        assert np.all(scores > 0.99)

    def test_estimator_not_mutated(self, rng):
        X = rng.normal(size=(30, 1))
        y = X.ravel()
        estimator = Ridge(alpha=0.1)
        cross_val_score(estimator, X, y, cv=3)
        assert not hasattr(estimator, "coef_")

    def test_custom_cv_object(self, rng):
        X = rng.normal(size=(30, 1))
        y = X.ravel()
        scores = cross_val_score(LinearRegression(), X, y, cv=KFold(3))
        assert scores.shape == (3,)
