import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import MARSRegressor
from repro.ml.mars import _BasisFunction, _Hinge, _gcv


class TestHinges:
    def test_positive_hinge(self):
        hinge = _Hinge(variable=0, knot=2.0, sign=+1)
        X = np.array([[1.0], [3.0]])
        np.testing.assert_allclose(hinge.evaluate(X), [0.0, 1.0])

    def test_negative_hinge(self):
        hinge = _Hinge(variable=0, knot=2.0, sign=-1)
        X = np.array([[1.0], [3.0]])
        np.testing.assert_allclose(hinge.evaluate(X), [1.0, 0.0])

    def test_intercept_basis(self):
        basis = _BasisFunction()
        np.testing.assert_allclose(basis.evaluate(np.ones((4, 2))), 1.0)
        assert basis.degree == 0

    def test_product_basis(self):
        basis = _BasisFunction(
            ( _Hinge(0, 0.0, +1), _Hinge(1, 0.0, +1) )
        )
        X = np.array([[2.0, 3.0], [-1.0, 5.0]])
        np.testing.assert_allclose(basis.evaluate(X), [6.0, 0.0])
        assert basis.uses_variable(0) and basis.uses_variable(1)
        assert not basis.uses_variable(2)


class TestGCV:
    def test_penalizes_terms(self):
        low = _gcv(rss=10.0, n_samples=100, n_terms=2, penalty=3.0)
        high = _gcv(rss=10.0, n_samples=100, n_terms=10, penalty=3.0)
        assert high > low

    def test_infinite_when_saturated(self):
        assert _gcv(1.0, n_samples=10, n_terms=10, penalty=3.0) == np.inf


class TestMARSRegressor:
    def test_piecewise_linear_recovered(self, rng):
        x = rng.uniform(-2, 2, size=200)
        y = np.maximum(0, x - 0.5) * 3.0 + 1.0
        model = MARSRegressor(max_terms=7).fit(x.reshape(-1, 1), y)
        assert model.score(x.reshape(-1, 1), y) > 0.99

    def test_pruning_keeps_few_terms_for_linear(self, rng):
        x = rng.uniform(0, 1, size=100)
        y = 2.0 * x + 0.01 * rng.normal(size=100)
        model = MARSRegressor(max_terms=11).fit(x.reshape(-1, 1), y)
        assert model.n_terms_ <= 5

    def test_additive_two_features(self, rng):
        X = rng.uniform(-1, 1, size=(200, 2))
        y = np.abs(X[:, 0]) + 2 * np.maximum(0, X[:, 1])
        model = MARSRegressor(max_terms=11).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_interactions_enabled(self, rng):
        X = rng.uniform(0, 1, size=(250, 2))
        y = X[:, 0] * X[:, 1]
        additive = MARSRegressor(max_terms=11, max_interaction=1).fit(X, y)
        interactive = MARSRegressor(max_terms=11, max_interaction=2).fit(X, y)
        assert interactive.score(X, y) >= additive.score(X, y) - 1e-6

    def test_constant_target(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        model = MARSRegressor().fit(X, np.full(20, 5.0))
        np.testing.assert_allclose(model.predict(X), 5.0, atol=1e-8)
        assert model.n_terms_ == 1

    def test_gcv_attribute_set(self, rng):
        X = rng.uniform(size=(50, 1))
        model = MARSRegressor().fit(X, X.ravel())
        assert np.isfinite(model.gcv_)

    def test_feature_mismatch(self, rng):
        X = rng.uniform(size=(50, 2))
        model = MARSRegressor().fit(X, X[:, 0])
        with pytest.raises(ValidationError):
            model.predict(np.ones((3, 5)))

    def test_invalid_max_terms(self, rng):
        X = rng.uniform(size=(10, 1))
        with pytest.raises(ValidationError):
            MARSRegressor(max_terms=0).fit(X, X.ravel())
