import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import GradientBoostingRegressor


@pytest.fixture
def curve_data(rng):
    X = rng.uniform(0, 4, size=(150, 1))
    y = np.sin(2 * X.ravel()) + 0.05 * rng.normal(size=150)
    return X, y


class TestGradientBoosting:
    def test_fits_smooth_curve(self, curve_data):
        X, y = curve_data
        model = GradientBoostingRegressor(200, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_training_error_decreases(self, curve_data):
        X, y = curve_data
        model = GradientBoostingRegressor(100, random_state=0).fit(X, y)
        errors = np.asarray(model.train_errors_)
        assert errors[-1] < errors[0]
        # Squared-error boosting on the full sample decreases monotonically.
        assert np.all(np.diff(errors) <= 1e-10)

    def test_zero_stages_prediction_is_mean(self, curve_data):
        X, y = curve_data
        model = GradientBoostingRegressor(
            1, learning_rate=1e-12, random_state=0
        ).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y.mean(), atol=1e-6)

    def test_more_stages_fit_tighter(self, curve_data):
        X, y = curve_data
        few = GradientBoostingRegressor(10, random_state=0).fit(X, y)
        many = GradientBoostingRegressor(200, random_state=0).fit(X, y)
        assert many.score(X, y) > few.score(X, y)

    def test_stochastic_subsample(self, curve_data):
        X, y = curve_data
        model = GradientBoostingRegressor(
            100, subsample=0.5, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_feature_importances(self, rng):
        X = rng.normal(size=(200, 3))
        y = 3.0 * X[:, 0] + 0.01 * rng.normal(size=200)
        model = GradientBoostingRegressor(50, random_state=0).fit(X, y)
        assert np.argmax(model.feature_importances_) == 0

    def test_deterministic(self, curve_data):
        X, y = curve_data
        a = GradientBoostingRegressor(20, random_state=3).fit(X, y).predict(X)
        b = GradientBoostingRegressor(20, random_state=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_invalid_learning_rate(self, curve_data):
        X, y = curve_data
        with pytest.raises(ValidationError):
            GradientBoostingRegressor(10, learning_rate=0.0).fit(X, y)

    def test_invalid_subsample(self, curve_data):
        X, y = curve_data
        with pytest.raises(ValidationError):
            GradientBoostingRegressor(10, subsample=1.5).fit(X, y)

    def test_feature_count_checked_at_predict(self, curve_data):
        X, y = curve_data
        model = GradientBoostingRegressor(5, random_state=0).fit(X, y)
        with pytest.raises(ValidationError):
            model.predict(np.ones((2, 3)))
