import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import MLPRegressor


class TestMLPRegressor:
    def test_fits_linear_function(self, rng):
        X = rng.normal(size=(150, 2))
        y = X @ np.array([1.0, -2.0]) + 0.5
        model = MLPRegressor((32, 32), max_iter=400, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_fits_nonlinear_function(self, rng):
        X = rng.uniform(-2, 2, size=(200, 1))
        y = np.sin(2 * X.ravel())
        model = MLPRegressor((64, 64), max_iter=600, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_loss_curve_decreases(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        model = MLPRegressor((16,), max_iter=100, random_state=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_early_stopping_limits_iterations(self, rng):
        X = rng.normal(size=(50, 1))
        y = np.zeros(50)  # trivially learnable
        model = MLPRegressor(
            (8,),
            max_iter=2000,
            learning_rate=0.05,
            n_iter_no_change=5,
            tol=1e-4,
            random_state=0,
        ).fit(X, y)
        assert model.n_iter_ < 2000

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(60, 2))
        y = X[:, 0] + X[:, 1]
        a = MLPRegressor((8,), max_iter=50, random_state=2).fit(X, y).predict(X)
        b = MLPRegressor((8,), max_iter=50, random_state=2).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)

    def test_minibatch_training(self, rng):
        X = rng.normal(size=(128, 2))
        y = X[:, 0]
        model = MLPRegressor(
            (16,), max_iter=100, batch_size=32, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.8

    def test_unscaled_target_underfits_raw_throughput(self, rng):
        # The Table 6 "NNet" configuration: raw thousands-scale targets.
        X = rng.uniform(2, 16, size=(30, 1))
        y = 400.0 * X.ravel()
        raw = MLPRegressor(
            (100,) * 6, max_iter=80, standardize_target=False, random_state=0
        ).fit(X, y)
        scaled = MLPRegressor(
            (100,) * 6, max_iter=80, random_state=0
        ).fit(X, y)
        assert scaled.score(X, y) > raw.score(X, y)

    def test_invalid_learning_rate(self, rng):
        X = rng.normal(size=(10, 1))
        with pytest.raises(ValidationError):
            MLPRegressor(learning_rate=0.0).fit(X, X.ravel())

    def test_invalid_hidden_width(self, rng):
        X = rng.normal(size=(10, 1))
        with pytest.raises(ValidationError):
            MLPRegressor((0,)).fit(X, X.ravel())

    def test_feature_mismatch_at_predict(self, rng):
        X = rng.normal(size=(30, 2))
        model = MLPRegressor((8,), max_iter=20, random_state=0).fit(X, X[:, 0])
        with pytest.raises(ValidationError):
            model.predict(np.ones((3, 5)))
