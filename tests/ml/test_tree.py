import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor


@pytest.fixture
def step_data():
    """A perfect single-split regression problem."""
    X = np.arange(20, dtype=float).reshape(-1, 1)
    y = np.where(X.ravel() < 10, 1.0, 5.0)
    return X, y


class TestRegressorBasics:
    def test_single_split_learned_exactly(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)
        assert model.node_count_ == 3

    def test_threshold_between_points(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        root = model._builder.nodes[0]
        assert 9.0 <= root.threshold <= 10.0

    def test_depth_limit_respected(self, rng):
        X = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.depth_ <= 3

    def test_full_tree_memorizes(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)

    def test_min_samples_leaf(self, rng):
        X = rng.normal(size=(40, 1))
        y = rng.normal(size=40)
        model = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        leaves = [n for n in model._builder.nodes if n.feature == -1]
        assert all(leaf.n_samples >= 10 for leaf in leaves)

    def test_constant_target_is_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        model = DecisionTreeRegressor().fit(X, np.ones(10))
        assert model.node_count_ == 1

    def test_feature_importances_identify_signal(self, rng):
        X = rng.normal(size=(300, 3))
        y = np.where(X[:, 1] > 0, 2.0, -2.0)
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert np.argmax(model.feature_importances_) == 1
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_predict_feature_mismatch(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor().fit(X, y)
        with pytest.raises(ValidationError):
            model.predict(np.ones((3, 2)))

    def test_invalid_params(self, step_data):
        X, y = step_data
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(max_depth=0).fit(X, y)
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(min_samples_split=1).fit(X, y)
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(min_samples_leaf=0).fit(X, y)


class TestClassifier:
    @pytest.fixture
    def blobs(self, rng):
        X = np.vstack(
            [rng.normal([0, 0], 0.5, (50, 2)), rng.normal([3, 3], 0.5, (50, 2))]
        )
        y = np.repeat(["low", "high"], 50)
        return X, y

    def test_separable_blobs(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_classes_attribute(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier().fit(X, y)
        assert set(model.classes_) == {"low", "high"}

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        proba = DecisionTreeClassifier(max_depth=2).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_three_classes(self, rng):
        X = np.vstack(
            [
                rng.normal([0, 0], 0.4, (30, 2)),
                rng.normal([4, 0], 0.4, (30, 2)),
                rng.normal([0, 4], 0.4, (30, 2)),
            ]
        )
        y = np.repeat([0, 1, 2], 30)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_max_features_subsampling_runs(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(
            max_depth=3, max_features=1, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.6

    def test_deterministic_with_seed(self, blobs):
        X, y = blobs
        a = DecisionTreeClassifier(max_features=1, random_state=5).fit(X, y)
        b = DecisionTreeClassifier(max_features=1, random_state=5).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))
