import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import SVR


@pytest.fixture
def linear_1d(rng):
    X = rng.uniform(-3, 3, size=(60, 1))
    y = 2.0 * X.ravel() + 1.0 + 0.02 * rng.normal(size=60)
    return X, y


class TestLinearKernel:
    def test_recovers_linear_function(self, linear_1d):
        X, y = linear_1d
        model = SVR(C=10.0, epsilon=0.01, kernel="linear", random_state=0)
        model.fit(X, y)
        assert model.score(X, y) > 0.99

    def test_predictions_within_tube(self, linear_1d):
        X, y = linear_1d
        model = SVR(C=100.0, epsilon=0.2, kernel="linear", random_state=0)
        model.fit(X, y)
        residuals = np.abs(model.predict(X) - y)
        # With ample C nearly all residuals sit inside the epsilon tube
        # (standardized-target units are rescaled back by predict).
        assert np.quantile(residuals, 0.9) < 0.2 * y.std() * 2

    def test_support_vectors_subset(self, linear_1d):
        X, y = linear_1d
        model = SVR(C=10.0, epsilon=0.3, kernel="linear", random_state=0)
        model.fit(X, y)
        assert 0 < model.support_.size <= X.shape[0]

    def test_beta_respects_box_and_sum(self, linear_1d):
        X, y = linear_1d
        model = SVR(C=5.0, epsilon=0.05, kernel="linear", random_state=0)
        model.fit(X, y)
        assert np.all(np.abs(model.beta_) <= 5.0 + 1e-9)
        assert abs(model.beta_.sum()) < 1e-6


class TestRBF:
    def test_fits_sine(self, rng):
        X = rng.uniform(0, 2 * np.pi, size=(100, 1))
        y = np.sin(X.ravel())
        model = SVR(C=10.0, epsilon=0.02, kernel="rbf", random_state=0)
        model.fit(X, y)
        assert model.score(X, y) > 0.97

    def test_gamma_scale_default(self, rng):
        X = rng.normal(size=(30, 2))
        y = X[:, 0]
        model = SVR(kernel="rbf", random_state=0).fit(X, y)
        assert model._gamma > 0

    def test_explicit_gamma(self, rng):
        X = rng.normal(size=(30, 1))
        y = X.ravel()
        model = SVR(kernel="rbf", gamma=0.5, random_state=0).fit(X, y)
        assert model._gamma == 0.5


class TestPoly:
    def test_quadratic_fit(self, rng):
        X = rng.uniform(-1, 1, size=(80, 1))
        y = X.ravel() ** 2
        model = SVR(
            C=50.0, epsilon=0.01, kernel="poly", degree=2, coef0=1.0,
            random_state=0,
        ).fit(X, y)
        assert model.score(X, y) > 0.95


class TestScaleHandling:
    def test_raw_throughput_scale(self, rng):
        # Targets in the thousands, like real throughput values.
        X = rng.uniform(2, 16, size=(40, 1))
        y = 300.0 * X.ravel() + 50 * rng.normal(size=40)
        model = SVR(C=10.0, epsilon=0.1, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_standardize_target_off_degrades_raw_scale(self, rng):
        X = rng.uniform(2, 16, size=(40, 1))
        y = 300.0 * X.ravel()
        raw = SVR(
            C=10.0, epsilon=0.1, standardize_target=False, random_state=0
        ).fit(X, y)
        scaled = SVR(C=10.0, epsilon=0.1, random_state=0).fit(X, y)
        assert scaled.score(X, y) > raw.score(X, y)


class TestValidation:
    def test_invalid_C(self, linear_1d):
        X, y = linear_1d
        with pytest.raises(ValidationError):
            SVR(C=0.0).fit(X, y)

    def test_negative_epsilon(self, linear_1d):
        X, y = linear_1d
        with pytest.raises(ValidationError):
            SVR(epsilon=-0.1).fit(X, y)

    def test_unknown_kernel(self, linear_1d):
        X, y = linear_1d
        with pytest.raises(ValidationError, match="kernel"):
            SVR(kernel="sigmoid").fit(X, y)

    def test_bad_gamma_string(self, linear_1d):
        X, y = linear_1d
        with pytest.raises(ValidationError, match="gamma"):
            SVR(gamma="auto").fit(X, y)

    def test_deterministic(self, linear_1d):
        X, y = linear_1d
        a = SVR(random_state=1).fit(X, y).predict(X)
        b = SVR(random_state=1).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)
