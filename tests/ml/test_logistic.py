import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import LogisticRegression


@pytest.fixture
def binary_data(rng):
    X = rng.normal(size=(200, 3))
    logits = X @ np.array([2.0, -1.5, 0.0]) + 0.5
    y = (logits > 0).astype(int)
    return X, y


@pytest.fixture
def multiclass_data(rng):
    centers = np.array([[0, 0], [4, 0], [0, 4]])
    X = np.vstack([rng.normal(c, 0.6, size=(40, 2)) for c in centers])
    y = np.repeat(["a", "b", "c"], 40)
    return X, y


class TestBinary:
    def test_high_training_accuracy(self, binary_data):
        X, y = binary_data
        model = LogisticRegression(alpha=0.1).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_classes_sorted(self, binary_data):
        X, y = binary_data
        model = LogisticRegression().fit(X, y)
        np.testing.assert_array_equal(model.classes_, [0, 1])

    def test_coef_shape(self, binary_data):
        X, y = binary_data
        model = LogisticRegression().fit(X, y)
        assert model.coef_.shape == (1, 3)

    def test_probabilities_sum_to_one(self, binary_data):
        X, y = binary_data
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_decision_function_sign_matches_prediction(self, binary_data):
        X, y = binary_data
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(X)
        predictions = model.predict(X)
        np.testing.assert_array_equal(predictions, (scores > 0).astype(int))

    def test_irrelevant_feature_small_coef(self, binary_data):
        X, y = binary_data
        model = LogisticRegression(alpha=1.0).fit(X, y)
        coefs = np.abs(model.coef_[0])
        assert coefs[2] < coefs[0] and coefs[2] < coefs[1]

    def test_regularization_shrinks(self, binary_data):
        X, y = binary_data
        weak = LogisticRegression(alpha=0.01).fit(X, y)
        strong = LogisticRegression(alpha=100.0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_separable_data_converges(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        model = LogisticRegression(alpha=0.1).fit(X, y)
        assert model.score(X, y) == 1.0


class TestMulticlass:
    def test_one_vs_rest_accuracy(self, multiclass_data):
        X, y = multiclass_data
        model = LogisticRegression(alpha=0.1).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_coef_per_class(self, multiclass_data):
        X, y = multiclass_data
        model = LogisticRegression().fit(X, y)
        assert model.coef_.shape == (3, 2)

    def test_string_labels_round_trip(self, multiclass_data):
        X, y = multiclass_data
        predictions = LogisticRegression().fit(X, y).predict(X)
        assert set(predictions) <= {"a", "b", "c"}

    def test_proba_shape_and_normalization(self, multiclass_data):
        X, y = multiclass_data
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        assert proba.shape == (120, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_nonnegative(self, multiclass_data):
        X, y = multiclass_data
        model = LogisticRegression().fit(X, y)
        assert model.feature_importances_.shape == (2,)
        assert np.all(model.feature_importances_ >= 0)


class TestValidation:
    def test_single_class_rejected(self):
        with pytest.raises(ValidationError, match="two classes"):
            LogisticRegression().fit([[1.0], [2.0]], [1, 1])

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression(alpha=-1).fit([[1.0], [2.0]], [0, 1])
