import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import LinearMixedEffectsModel


@pytest.fixture
def grouped_data(rng):
    """Three groups sharing a slope but with distinct intercepts."""
    n_per_group = 40
    slopes = 2.0
    intercepts = {0: 0.0, 1: 5.0, 2: -5.0}
    X, y, groups = [], [], []
    for g, intercept in intercepts.items():
        x = rng.uniform(0, 10, size=n_per_group)
        X.append(x)
        y.append(intercept + slopes * x + 0.1 * rng.normal(size=n_per_group))
        groups.extend([g] * n_per_group)
    return (
        np.concatenate(X).reshape(-1, 1),
        np.concatenate(y),
        np.asarray(groups),
    )


class TestRandomIntercepts:
    def test_fixed_slope_recovered(self, grouped_data):
        X, y, groups = grouped_data
        model = LinearMixedEffectsModel(random_slopes=False)
        model.fit(X, y, groups=groups)
        assert model.coef_[0] == pytest.approx(2.0, abs=0.05)

    def test_group_effects_ordering(self, grouped_data):
        X, y, groups = grouped_data
        model = LinearMixedEffectsModel(random_slopes=False)
        model.fit(X, y, groups=groups)
        intercept_effects = {
            g: model.random_effects_[g][0] for g in (0, 1, 2)
        }
        assert intercept_effects[1] > intercept_effects[0] > intercept_effects[2]

    def test_predictions_with_groups_beat_without(self, grouped_data):
        X, y, groups = grouped_data
        model = LinearMixedEffectsModel(random_slopes=False)
        model.fit(X, y, groups=groups)
        with_groups = np.mean((model.predict(X, groups=groups) - y) ** 2)
        without = np.mean((model.predict(X) - y) ** 2)
        assert with_groups < without

    def test_unseen_group_falls_back_to_fixed_effects(self, grouped_data):
        X, y, groups = grouped_data
        model = LinearMixedEffectsModel(random_slopes=False)
        model.fit(X, y, groups=groups)
        fixed = model.predict(X[:5])
        unseen = model.predict(X[:5], groups=np.full(5, 99))
        np.testing.assert_allclose(fixed, unseen)

    def test_single_group_degenerates_to_ols(self, rng):
        X = rng.normal(size=(60, 1))
        y = 3.0 * X.ravel() + 1.0 + 0.05 * rng.normal(size=60)
        model = LinearMixedEffectsModel(random_slopes=False).fit(X, y)
        assert model.coef_[0] == pytest.approx(3.0, abs=0.1)
        assert model.intercept_ == pytest.approx(1.0, abs=0.1)


class TestRandomSlopes:
    def test_slope_variation_captured(self, rng):
        X, y, groups = [], [], []
        for g, slope in enumerate([1.0, 2.0, 3.0]):
            x = rng.uniform(0, 5, size=50)
            X.append(x)
            y.append(slope * x + 0.05 * rng.normal(size=50))
            groups.extend([g] * 50)
        X = np.concatenate(X).reshape(-1, 1)
        y = np.concatenate(y)
        groups = np.asarray(groups)
        model = LinearMixedEffectsModel(random_slopes=True)
        model.fit(X, y, groups=groups)
        predictions = model.predict(X, groups=groups)
        assert np.mean((predictions - y) ** 2) < 0.5

    def test_sigma2_positive(self, grouped_data):
        X, y, groups = grouped_data
        model = LinearMixedEffectsModel().fit(X, y, groups=groups)
        assert model.sigma2_ > 0

    def test_variance_ratios_shape(self, grouped_data):
        X, y, groups = grouped_data
        model = LinearMixedEffectsModel(random_slopes=True)
        model.fit(X, y, groups=groups)
        assert model.variance_ratios_.shape == (2,)  # intercept + 1 slope


class TestValidation:
    def test_feature_mismatch_at_predict(self, grouped_data):
        X, y, groups = grouped_data
        model = LinearMixedEffectsModel(random_slopes=False)
        model.fit(X, y, groups=groups)
        with pytest.raises(ValidationError):
            model.predict(np.ones((3, 4)))

    def test_groups_length_mismatch(self, grouped_data):
        X, y, _ = grouped_data
        with pytest.raises(ValidationError):
            LinearMixedEffectsModel().fit(X, y, groups=np.zeros(3))
