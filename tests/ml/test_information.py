import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.information import (
    conditional_entropy,
    discretize,
    entropy,
    f_statistic,
    fanova_importance,
    mutual_information,
    pearson_correlation,
)


class TestEntropy:
    def test_uniform_two_values(self):
        assert entropy([0, 1]) == pytest.approx(np.log(2))

    def test_constant_is_zero(self):
        assert entropy([5, 5, 5]) == 0.0

    def test_more_classes_more_entropy(self):
        assert entropy([0, 1, 2, 3]) > entropy([0, 0, 1, 1])

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            entropy([])


class TestConditionalEntropy:
    def test_perfect_predictor_zero(self):
        labels = [0, 0, 1, 1]
        conditions = [10, 10, 20, 20]
        assert conditional_entropy(labels, conditions) == 0.0

    def test_independent_condition_full_entropy(self):
        labels = [0, 1, 0, 1]
        conditions = [0, 0, 1, 1]
        assert conditional_entropy(labels, conditions) == pytest.approx(
            entropy(labels)
        )


class TestDiscretize:
    def test_codes_in_range(self, rng):
        codes = discretize(rng.normal(size=100), n_bins=10)
        assert codes.min() >= 0 and codes.max() <= 9

    def test_constant_feature_single_bin(self):
        codes = discretize(np.full(10, 3.0))
        assert set(codes) == {0}

    def test_monotone_in_value(self):
        codes = discretize(np.array([0.0, 5.0, 10.0]), n_bins=2)
        assert codes[0] <= codes[1] <= codes[2]


class TestMutualInformation:
    def test_informative_feature_positive(self, rng):
        target = np.repeat([0, 1], 100)
        feature = target * 10.0 + rng.normal(0, 0.1, size=200)
        assert mutual_information(feature, target) > 0.5

    def test_independent_feature_near_zero(self, rng):
        target = np.repeat([0, 1], 200)
        feature = rng.normal(size=400)
        assert mutual_information(feature, target) < 0.05

    def test_never_negative(self, rng):
        for _ in range(5):
            value = mutual_information(
                rng.normal(size=50), rng.integers(0, 3, size=50)
            )
            assert value >= 0.0


class TestFANOVA:
    def test_perfect_separation_near_one(self):
        target = np.repeat([0, 1], 50)
        feature = np.repeat([0.0, 10.0], 50)
        assert fanova_importance(feature, target) == pytest.approx(1.0)

    def test_constant_feature_zero(self):
        assert fanova_importance(np.ones(20), np.repeat([0, 1], 10)) == 0.0

    def test_bounded_unit_interval(self, rng):
        value = fanova_importance(
            rng.normal(size=60), rng.integers(0, 3, size=60)
        )
        assert 0.0 <= value <= 1.0


class TestFStatistic:
    def test_large_for_separated_groups(self, rng):
        target = np.repeat([0, 1], 50)
        feature = target * 5 + rng.normal(0, 0.5, size=100)
        assert f_statistic(feature, target) > 100

    def test_small_for_noise(self, rng):
        assert f_statistic(rng.normal(size=100), np.repeat([0, 1], 50)) < 10

    def test_single_class_zero(self):
        assert f_statistic([1.0, 2.0], [0, 0]) == 0.0

    def test_zero_within_variance_infinite(self):
        assert f_statistic([1.0, 1.0, 2.0, 2.0], [0, 0, 1, 1]) == np.inf


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 2 * x) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self, rng):
        x = rng.normal(size=80)
        y = x + rng.normal(size=80)
        expected = np.corrcoef(x, y)[0, 1]
        assert pearson_correlation(x, y) == pytest.approx(expected)
