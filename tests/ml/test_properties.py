"""Property-based tests (hypothesis) for the ML substrate invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import KFold, Lasso, LinearRegression, MinMaxScaler, StandardScaler
from repro.ml.metrics import (
    mean_squared_error,
    ndcg,
    normalized_rmse,
    r2_score,
)
from repro.utils.stats import rank_from_scores

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def matrices(draw, min_rows=2, max_rows=20, min_cols=1, max_cols=5):
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    return draw(
        arrays(np.float64, (rows, cols), elements=finite_floats)
    )


class TestScalerProperties:
    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_minmax_output_in_unit_interval(self, X):
        scaled = MinMaxScaler().fit_transform(X)
        assert np.all(scaled >= -1e-9) and np.all(scaled <= 1 + 1e-9)

    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_minmax_inverse_round_trip(self, X):
        scaler = MinMaxScaler().fit(X)
        restored = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(restored, X, atol=1e-6 * (1 + np.abs(X).max()))

    @given(matrices(min_rows=3))
    @settings(max_examples=40, deadline=None)
    def test_standard_scaler_idempotent_statistics(self, X):
        scaled = StandardScaler().fit_transform(X)
        # Non-constant columns end up standardized; constant columns at 0.
        stds = scaled.std(axis=0)
        assert np.all((np.isclose(stds, 1.0, atol=1e-6)) | (stds < 1e-9))


class TestMetricProperties:
    @given(
        arrays(np.float64, 8, elements=finite_floats),
        arrays(np.float64, 8, elements=finite_floats),
    )
    @settings(max_examples=50, deadline=None)
    def test_mse_symmetry(self, a, b):
        assert mean_squared_error(a, b) == pytest.approx(
            mean_squared_error(b, a)
        )

    @given(arrays(np.float64, 10, elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_perfect_prediction_zero_error(self, y):
        assert mean_squared_error(y, y) == 0.0
        assert normalized_rmse(y, y) == 0.0

    @given(
        arrays(
            np.float64,
            6,
            elements=st.floats(min_value=0, max_value=10, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ndcg_in_unit_interval(self, gains):
        value = ndcg(gains)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(arrays(np.float64, 12, elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_r2_upper_bound(self, y):
        assert r2_score(y, y) in (0.0, 1.0)  # constant target scores 0


class TestRankingProperties:
    @given(
        arrays(
            np.float64,
            st.integers(1, 30),
            elements=finite_floats,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ranks_are_permutation(self, scores):
        ranks = rank_from_scores(scores)
        assert sorted(ranks) == list(range(1, scores.size + 1))

    @given(
        st.lists(st.integers(-1000, 1000), min_size=2, max_size=15, unique=True),
        st.sampled_from([0.5, 2.0, 4.0, 8.0]),
    )
    @settings(max_examples=50, deadline=None)
    def test_rank_invariant_to_positive_scaling(self, scores, factor):
        # Power-of-two factors on well-separated integers keep float
        # comparisons exact, so the ordering (and hence the ranks) must
        # survive the scaling.
        values = np.asarray(scores, dtype=float)
        baseline = rank_from_scores(values)
        scaled = rank_from_scores(values * factor)
        np.testing.assert_array_equal(baseline, scaled)


class TestSplitterProperties:
    @given(st.integers(4, 60), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_kfold_partitions(self, n_samples, n_splits):
        if n_splits > n_samples:
            return
        folds = list(KFold(n_splits).split(np.arange(n_samples)))
        covered = np.concatenate([test for _, test in folds])
        assert sorted(covered.tolist()) == list(range(n_samples))
        for train, test in folds:
            assert set(train).isdisjoint(test)


class TestModelProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_ols_residuals_orthogonal_to_design(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3))
        y = rng.normal(size=30)
        model = LinearRegression().fit(X, y)
        residuals = y - model.predict(X)
        # Normal equations: X' r = 0 (and sum r = 0 with intercept).
        np.testing.assert_allclose(X.T @ residuals, 0.0, atol=1e-8)
        assert residuals.sum() == pytest.approx(0.0, abs=1e-8)

    @given(st.integers(0, 1000), st.floats(0.01, 1.0))
    @settings(max_examples=15, deadline=None)
    def test_lasso_never_beats_ols_on_training_mse(self, seed, alpha):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 3))
        y = rng.normal(size=40)
        ols_mse = mean_squared_error(y, LinearRegression().fit(X, y).predict(X))
        lasso_mse = mean_squared_error(y, Lasso(alpha=alpha).fit(X, y).predict(X))
        assert lasso_mse >= ols_mse - 1e-9
