import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml import MinMaxScaler, StandardScaler


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self, rng):
        X = rng.normal(10, 5, size=(50, 3))
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)
        assert np.all(scaled >= 0) and np.all(scaled <= 1)

    def test_custom_range(self, rng):
        X = rng.normal(size=(20, 2))
        scaled = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        assert scaled.min() == pytest.approx(-1.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_constant_feature_maps_to_lower_bound(self):
        X = np.column_stack([np.full(5, 3.0), np.arange(5, dtype=float)])
        scaled = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_inverse_round_trip(self, rng):
        X = rng.normal(size=(30, 4))
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12
        )

    def test_inverse_restores_constant_feature(self):
        X = np.column_stack([np.full(5, 3.0), np.arange(5, dtype=float)])
        scaler = MinMaxScaler().fit(X)
        restored = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(restored, X)

    def test_invalid_range(self):
        with pytest.raises(ValidationError, match="increasing"):
            MinMaxScaler(feature_range=(1, 0)).fit(np.ones((3, 1)))

    def test_feature_count_mismatch(self):
        scaler = MinMaxScaler().fit(np.ones((3, 2)))
        with pytest.raises(ValidationError, match="features"):
            scaler.transform(np.ones((3, 5)))

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5, 3, size=(100, 3))
        scaled = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(scaled.mean(axis=0), 0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1, atol=1e-10)

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.full(5, 2.0), np.arange(5, dtype=float)])
        scaled = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_without_mean(self, rng):
        X = rng.normal(5, 1, size=(50, 2))
        scaled = StandardScaler(with_mean=False).fit_transform(X)
        assert scaled.mean() > 1.0  # mean retained

    def test_without_std(self, rng):
        X = rng.normal(0, 5, size=(50, 2))
        scaled = StandardScaler(with_std=False).fit_transform(X)
        assert scaled.std() > 2.0  # scale retained

    def test_inverse_round_trip(self, rng):
        X = rng.normal(size=(40, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12
        )
