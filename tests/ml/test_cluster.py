import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.cluster import KMeans, KMedoids, agglomerative_labels


@pytest.fixture
def three_blobs(rng):
    centers = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
    X = np.vstack([rng.normal(c, 0.5, size=(30, 2)) for c in centers])
    truth = np.repeat([0, 1, 2], 30)
    return X, truth


def clusters_match(labels, truth) -> bool:
    """Whether the clustering equals the truth up to label permutation."""
    mapping = {}
    for label, true in zip(labels, truth):
        mapping.setdefault(label, true)
        if mapping[label] != true:
            return False
    return len(set(mapping.values())) == len(set(truth))


class TestKMeans:
    def test_recovers_blobs(self, three_blobs):
        X, truth = three_blobs
        model = KMeans(3, random_state=0).fit(X)
        assert clusters_match(model.labels_, truth)

    def test_predict_consistent_with_fit(self, three_blobs):
        X, _ = three_blobs
        model = KMeans(3, random_state=0).fit(X)
        np.testing.assert_array_equal(model.predict(X), model.labels_)

    def test_inertia_decreases_with_k(self, three_blobs):
        X, _ = three_blobs
        inertia = [
            KMeans(k, random_state=0).fit(X).inertia_ for k in (1, 3, 9)
        ]
        assert inertia[0] > inertia[1] > inertia[2]

    def test_deterministic(self, three_blobs):
        X, _ = three_blobs
        a = KMeans(3, random_state=2).fit(X).labels_
        b = KMeans(3, random_state=2).fit(X).labels_
        np.testing.assert_array_equal(a, b)

    def test_too_many_clusters(self, rng):
        with pytest.raises(ValidationError):
            KMeans(10).fit(rng.normal(size=(4, 2)))


class TestKMedoids:
    def test_recovers_blobs_from_distances(self, three_blobs):
        X, truth = three_blobs
        D = np.linalg.norm(X[:, None] - X[None, :], axis=2)
        model = KMedoids(3, random_state=0).fit(D)
        assert clusters_match(model.labels_, truth)

    def test_medoids_are_members(self, three_blobs):
        X, _ = three_blobs
        D = np.linalg.norm(X[:, None] - X[None, :], axis=2)
        model = KMedoids(3, random_state=0).fit(D)
        assert all(0 <= m < X.shape[0] for m in model.medoid_indices_)

    def test_requires_square_matrix(self):
        with pytest.raises(ValidationError):
            KMedoids(2).fit(np.zeros((3, 4)))


class TestAgglomerative:
    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_recovers_blobs(self, three_blobs, linkage):
        X, truth = three_blobs
        D = np.linalg.norm(X[:, None] - X[None, :], axis=2)
        labels = agglomerative_labels(D, 3, linkage=linkage)
        assert clusters_match(labels, truth)

    def test_n_clusters_respected(self, three_blobs):
        X, _ = three_blobs
        D = np.linalg.norm(X[:, None] - X[None, :], axis=2)
        for k in (1, 2, 5):
            labels = agglomerative_labels(D, k)
            assert len(set(labels.tolist())) == k

    def test_unknown_linkage(self):
        with pytest.raises(ValidationError):
            agglomerative_labels(np.zeros((3, 3)), 2, linkage="ward")
