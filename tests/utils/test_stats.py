import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.stats import (
    ar1_lognormal_noise,
    describe,
    rank_from_scores,
    weighted_mean,
)


class TestDescribe:
    def test_basic_statistics(self):
        summary = describe([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4
        assert summary.variance == pytest.approx(1.25)
        assert summary.std == pytest.approx(np.sqrt(1.25))

    def test_single_value(self):
        summary = describe([7.0])
        assert summary.std == 0.0
        assert summary.mean == 7.0


class TestRankFromScores:
    def test_descending_default(self):
        ranks = rank_from_scores([0.1, 0.9, 0.5])
        np.testing.assert_array_equal(ranks, [3, 1, 2])

    def test_ascending(self):
        ranks = rank_from_scores([0.1, 0.9, 0.5], descending=False)
        np.testing.assert_array_equal(ranks, [1, 3, 2])

    def test_ties_break_by_index(self):
        ranks = rank_from_scores([1.0, 1.0, 0.0])
        np.testing.assert_array_equal(ranks, [1, 2, 3])

    def test_is_permutation(self):
        ranks = rank_from_scores(np.random.default_rng(0).normal(size=20))
        assert sorted(ranks) == list(range(1, 21))


class TestWeightedMean:
    def test_uniform_weights(self):
        assert weighted_mean([1, 2, 3], [1, 1, 1]) == 2.0

    def test_weighting(self):
        assert weighted_mean([0, 10], [3, 1]) == 2.5

    def test_zero_total_raises(self):
        with pytest.raises(ValidationError, match="positive"):
            weighted_mean([1, 2], [0, 0])

    def test_negative_weight_raises(self):
        with pytest.raises(ValidationError, match="non-negative"):
            weighted_mean([1, 2], [2, -1])

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="align"):
            weighted_mean([1, 2, 3], [1, 1])


class TestAR1LognormalNoise:
    def test_matches_reference_loop_bit_for_bit(self):
        """The shared helper must reproduce the original inline loops.

        Telemetry and throughput series generated before the helper
        existed pinned this exact draw order (innovations vector first,
        then the initial stationary normal); golden corpora depend on it.
        """
        rho, sigma, n = 0.55, 0.3, 128
        rng = np.random.default_rng(42)
        innovations = rng.normal(0.0, sigma * np.sqrt(1 - rho**2), n)
        log_noise = np.empty(n)
        log_noise[0] = rng.normal(0.0, sigma)
        for t in range(1, n):
            log_noise[t] = rho * log_noise[t - 1] + innovations[t]
        expected = np.exp(log_noise)
        actual = ar1_lognormal_noise(
            n, rho=rho, sigma=sigma, rng=np.random.default_rng(42)
        )
        np.testing.assert_array_equal(actual, expected)

    def test_stationary_scale(self):
        rng = np.random.default_rng(0)
        noise = ar1_lognormal_noise(100_000, rho=0.3, sigma=0.45, rng=rng)
        assert np.std(np.log(noise)) == pytest.approx(0.45, rel=0.02)

    def test_positive(self):
        noise = ar1_lognormal_noise(
            500, rho=0.9, sigma=1.0, rng=np.random.default_rng(1)
        )
        assert (noise > 0).all()

    def test_single_sample(self):
        noise = ar1_lognormal_noise(
            1, rho=0.5, sigma=0.2, rng=np.random.default_rng(2)
        )
        assert noise.shape == (1,)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError, match="n_samples"):
            ar1_lognormal_noise(0, rho=0.5, sigma=0.1, rng=rng)
        with pytest.raises(ValidationError, match="rho"):
            ar1_lognormal_noise(5, rho=1.0, sigma=0.1, rng=rng)
        with pytest.raises(ValidationError, match="rho"):
            ar1_lognormal_noise(5, rho=-0.1, sigma=0.1, rng=rng)
