import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.stats import describe, rank_from_scores, weighted_mean


class TestDescribe:
    def test_basic_statistics(self):
        summary = describe([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4
        assert summary.variance == pytest.approx(1.25)
        assert summary.std == pytest.approx(np.sqrt(1.25))

    def test_single_value(self):
        summary = describe([7.0])
        assert summary.std == 0.0
        assert summary.mean == 7.0


class TestRankFromScores:
    def test_descending_default(self):
        ranks = rank_from_scores([0.1, 0.9, 0.5])
        np.testing.assert_array_equal(ranks, [3, 1, 2])

    def test_ascending(self):
        ranks = rank_from_scores([0.1, 0.9, 0.5], descending=False)
        np.testing.assert_array_equal(ranks, [1, 3, 2])

    def test_ties_break_by_index(self):
        ranks = rank_from_scores([1.0, 1.0, 0.0])
        np.testing.assert_array_equal(ranks, [1, 2, 3])

    def test_is_permutation(self):
        ranks = rank_from_scores(np.random.default_rng(0).normal(size=20))
        assert sorted(ranks) == list(range(1, 21))


class TestWeightedMean:
    def test_uniform_weights(self):
        assert weighted_mean([1, 2, 3], [1, 1, 1]) == 2.0

    def test_weighting(self):
        assert weighted_mean([0, 10], [3, 1]) == 2.5

    def test_zero_total_raises(self):
        with pytest.raises(ValidationError, match="positive"):
            weighted_mean([1, 2], [0, 0])

    def test_negative_weight_raises(self):
        with pytest.raises(ValidationError, match="non-negative"):
            weighted_mean([1, 2], [2, -1])

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="align"):
            weighted_mean([1, 2, 3], [1, 1])
