import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_consistent_length,
    check_feature_matrix,
    check_positive_int,
    check_probability,
)


class TestCheck1d:
    def test_list_coerced(self):
        out = check_1d([1, 2, 3])
        assert out.dtype == float
        assert out.shape == (3,)

    def test_squeezes_column_vector(self):
        assert check_1d(np.ones((3, 1))).shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            check_1d(np.ones((2, 2)))

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValidationError, match="empty"):
            check_1d([])

    def test_allow_empty(self):
        assert check_1d([], allow_empty=True).size == 0

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_1d([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="infinite|NaN"):
            check_1d([1.0, np.inf])


class TestCheck2d:
    def test_promotes_1d_to_column(self):
        assert check_2d([1, 2, 3]).shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_2d(np.ones((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="empty"):
            check_2d(np.empty((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_2d([[1.0, np.nan]])


class TestConsistentLength:
    def test_consistent_passes(self):
        check_consistent_length(np.ones(3), np.zeros(3))

    def test_inconsistent_raises(self):
        with pytest.raises(ValidationError, match="inconsistent"):
            check_consistent_length(np.ones(3), np.zeros(4))

    def test_none_ignored(self):
        check_consistent_length(np.ones(3), None)


class TestFeatureMatrix:
    def test_pair_validated(self):
        X, y = check_feature_matrix([[1, 2], [3, 4]], [0, 1])
        assert X.shape == (2, 2)
        assert y.shape == (2,)

    def test_y_none(self):
        X, y = check_feature_matrix([[1.0]], None)
        assert y is None

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            check_feature_matrix([[1], [2]], [0, 1, 2])

    def test_y_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_feature_matrix([[1], [2]], [0.0, np.nan])


class TestScalars:
    def test_positive_int_passes(self):
        assert check_positive_int(3, "k") == 3

    def test_positive_int_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, "k", minimum=2)

    def test_bool_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "k")

    def test_float_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, "k")

    def test_probability_bounds(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        assert check_probability(1, "p") == 1.0

    def test_probability_out_of_range(self):
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")
