import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9)
        b = as_generator(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(as_generator(np.int64(7)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="random_state"):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_independent(self):
        children = spawn_generators(0, 3)
        draws = [g.integers(0, 10**12) for g in children]
        assert len(set(draws)) == 3

    def test_reproducible_from_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(9, 4)]
        b = [g.integers(0, 10**9) for g in spawn_generators(9, 4)]
        assert a == b
