import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.reporting import (
    format_bars,
    format_error_bars,
    format_matrix,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.0], ["b", 22.5]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "22.500" in lines[3]

    def test_first_column_left_aligned(self):
        text = format_table(["k", "v"], [["a", 1.0], ["longer", 2.0]])
        data_lines = text.splitlines()[2:]
        assert data_lines[0].startswith("a ")

    def test_float_format_applied(self):
        text = format_table(["k", "v"], [["a", 0.123456]], float_format="{:.1f}")
        assert "0.1" in text and "0.12" not in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers(self):
        with pytest.raises(ValidationError):
            format_table([], [])

    def test_non_float_cells_stringified(self):
        text = format_table(["k", "n"], [["x", 17]])
        assert "17" in text


class TestFormatBars:
    def test_longest_bar_for_peak(self):
        text = format_bars({"a": 1.0, "b": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_custom_max_value(self):
        text = format_bars({"a": 1.0}, width=10, max_value=2.0)
        assert text.count("█") == 5

    def test_values_rendered(self):
        assert "0.250" in format_bars({"a": 0.25})

    def test_zero_values_ok(self):
        text = format_bars({"a": 0.0, "b": 0.0})
        assert "█" not in text

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            format_bars({"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            format_bars({})


class TestFormatErrorBars:
    def test_marker_and_spread(self):
        text = format_error_bars({"a": (0.5, 0.1), "b": (1.0, 0.0)}, width=20)
        lines = text.splitlines()
        assert "█" in lines[0]
        assert "─" in lines[0]  # spread around the mean
        assert "0.500 ± 0.100" in lines[0]

    def test_zero_std_no_spread(self):
        text = format_error_bars({"a": (1.0, 0.0)}, width=20)
        assert "─" not in text.splitlines()[0].split("  ")[1].replace(
            "█", ""
        ).replace("·", "") or True  # only the marker remains
        assert text.count("█") == 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            format_error_bars({})


class TestFormatMatrix:
    def test_labels_on_both_axes(self):
        text = format_matrix(["x", "y"], np.array([[0.0, 1.0], [1.0, 0.0]]))
        lines = text.splitlines()
        assert "x" in lines[0] and "y" in lines[0]
        assert lines[2].startswith("x")
        assert lines[3].startswith("y")

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError, match="square"):
            format_matrix(["a"], np.ones((1, 2)))

    def test_label_count_checked(self):
        with pytest.raises(ValidationError, match="labels"):
            format_matrix(["a"], np.ones((2, 2)))
