"""Two server processes sharing one cache directory must not corrupt it.

``repro serve`` scales horizontally: N processes, one corpus/distance/
fit cache directory.  Each cache already claims concurrent-writer
safety (atomic payload-first writes for the corpus store, O_APPEND
journal rows for distances/fits); this test makes the claim executable
by racing two subprocesses through cold cache builds and then sweeping
every store for damage.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.exec.journal import load_jsonl
from repro.workloads.cache import CorpusCache

pytestmark = pytest.mark.slow

#: Work done by each racing process: build a cached corpus, warm a
#: service (fit cache), rank a target (distance cache), print ranking.
WORKER = textwrap.dedent(
    """
    import json
    import sys

    from repro.core.config import PipelineConfig
    from repro.serve.service import PredictionService
    from repro.workloads import SKU, run_experiments, tpcc, twitter, ycsb

    cache_root = sys.argv[1]
    skus = [SKU(cpus=4, memory_gb=16.0, name="s4")]
    references = run_experiments(
        [tpcc(), twitter()],
        skus,
        terminals_for=lambda w: (4,),
        n_runs=2,
        duration_s=600.0,
        random_state=0,
        cache=f"{cache_root}/corpus",
    )
    target = run_experiments(
        [ycsb()],
        skus,
        terminals_for=lambda w: (4,),
        n_runs=1,
        duration_s=600.0,
        random_state=1,
        cache=f"{cache_root}/corpus",
    )
    config = PipelineConfig(
        distance_cache=f"{cache_root}/distances",
        fit_cache=f"{cache_root}/fits",
    )
    service = PredictionService(references, config)
    service.warmup()
    print(json.dumps(service.rank_response(target)))
    """
)


def test_two_processes_race_one_cache_dir_without_corruption(tmp_path):
    root = Path(__file__).resolve().parents[2]
    env = {"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin"}
    processes = [
        subprocess.Popen(
            [sys.executable, "-c", WORKER, str(tmp_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        for _ in range(2)
    ]
    outputs = []
    for process in processes:
        stdout, stderr = process.communicate(timeout=600)
        assert process.returncode == 0, stderr
        outputs.append(json.loads(stdout.splitlines()[-1]))

    # Both racers computed the same answer from the shared caches.
    assert outputs[0] == outputs[1]
    assert outputs[0]["target_workload"] == "ycsb"

    # Corpus store: every entry deserializes, no torn writes left behind.
    verification = CorpusCache(tmp_path / "corpus").verify()
    assert verification.clean, verification.to_dict()
    assert verification.n_entries > 0
    assert verification.n_ok == verification.n_entries

    # Distance and fit journals: every surviving row parses.
    distance_rows, n_corrupt = load_jsonl(
        tmp_path / "distances" / "distances.jsonl", label="test.distances"
    )
    assert n_corrupt == 0
    assert distance_rows

    fit_rows, n_corrupt = load_jsonl(
        tmp_path / "fits" / "fits.jsonl", label="test.fits"
    )
    assert n_corrupt == 0
    assert fit_rows
