"""Integration tests: the full pipeline under varied configurations."""

import numpy as np
import pytest

from repro.core import PipelineConfig, WorkloadPredictionPipeline
from repro.workloads import SKU, ExperimentRepository, run_experiments, workload_by_name

SOURCE = SKU(cpus=2, memory_gb=32.0)
TARGET = SKU(cpus=8, memory_gb=32.0)


@pytest.fixture(scope="module")
def small_references():
    return run_experiments(
        [workload_by_name(n) for n in ("tpcc", "twitter", "tpch")],
        [SOURCE, TARGET],
        duration_s=1200.0,
        random_state=9,
    )


@pytest.fixture(scope="module")
def small_target():
    return run_experiments(
        [workload_by_name("ycsb")],
        [SOURCE],
        terminals_for=lambda w: (32,),
        duration_s=1200.0,
        random_state=10,
    )


CONFIG_MATRIX = [
    PipelineConfig(),
    PipelineConfig(selection_strategy="fANOVA", top_k=5),
    PipelineConfig(representation="phase", measure="L1,1"),
    PipelineConfig(representation="mts", measure="Canb",
                   feature_scope="resource", top_k=5),
    PipelineConfig(feature_scope="plan"),
    PipelineConfig(scaling_strategy="GB"),
    PipelineConfig(scaling_strategy="Regression", scaling_context="single"),
    PipelineConfig(scaling_strategy="LMM"),
]


class TestConfigurationMatrix:
    @pytest.mark.parametrize(
        "config", CONFIG_MATRIX,
        ids=[
            "defaults", "fanova-top5", "phase-l11", "mts-resource",
            "plan-scope", "gb", "single-regression", "lmm",
        ],
    )
    def test_pipeline_runs_under_config(
        self, config, small_references, small_target
    ):
        pipeline = WorkloadPredictionPipeline(config)
        report = pipeline.predict_scaling(
            small_references, small_target, SOURCE, TARGET
        )
        assert report.target_workload == "ycsb"
        assert report.predicted_throughput.size > 0
        assert np.all(np.isfinite(report.predicted_throughput))
        assert report.predicted_mean > 0
        # Every config should predict *some* scale-up for 2 -> 8 CPUs.
        source_mean = float(
            np.mean([r.throughput for r in small_target])
        )
        assert report.predicted_mean > 0.8 * source_mean


class TestDeterminism:
    def test_same_seed_same_report(self, small_references, small_target):
        def run():
            pipeline = WorkloadPredictionPipeline(
                PipelineConfig(random_state=5)
            )
            return pipeline.predict_scaling(
                small_references, small_target, SOURCE, TARGET
            )

        a, b = run(), run()
        assert a.selected_features == b.selected_features
        assert a.reference_workload == b.reference_workload
        np.testing.assert_array_equal(
            a.predicted_throughput, b.predicted_throughput
        )


class TestRepositoryRoundTripThroughPipeline:
    def test_prediction_survives_persistence(
        self, small_references, small_target, tmp_path
    ):
        path_refs = tmp_path / "references.json"
        path_target = tmp_path / "target.json"
        small_references.save(path_refs)
        ExperimentRepository(list(small_target)).save(path_target)
        loaded_refs = ExperimentRepository.load(path_refs)
        loaded_target = ExperimentRepository.load(path_target)

        pipeline = WorkloadPredictionPipeline(PipelineConfig(random_state=3))
        fresh = pipeline.predict_scaling(
            small_references, small_target, SOURCE, TARGET
        )
        reloaded = pipeline.predict_scaling(
            loaded_refs, loaded_target, SOURCE, TARGET
        )
        assert fresh.reference_workload == reloaded.reference_workload
        assert fresh.selected_features == reloaded.selected_features
        np.testing.assert_allclose(
            fresh.predicted_throughput, reloaded.predicted_throughput
        )
