"""HTTP binding over real sockets, plus the CLI's graceful shutdown."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ServeError
from repro.serve.app import ServeApp
from repro.serve.loadgen import http_json
from repro.serve.server import make_server


@pytest.fixture
def live_server(warm_service):
    app = ServeApp(warm_service, references_digest="http-test")
    server = make_server(app, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.port}"
    server.shutdown()
    app.shutdown(drain_timeout=10.0)
    server.server_close()
    thread.join(timeout=10.0)


def test_healthz_over_http(live_server):
    status, body = http_json("GET", f"{live_server}/healthz")
    assert status == 200
    assert body["status"] == "ok"


def test_rank_over_http_cold_then_warm(live_server, target_payload):
    payload = {"target": target_payload}
    status, cold = http_json("POST", f"{live_server}/v1/rank", payload)
    assert status == 200
    assert cold["meta"]["cache_tier"] == "compute"
    status, warm = http_json("POST", f"{live_server}/v1/rank", payload)
    assert status == 200
    assert warm["meta"]["cache_tier"] == "memory"
    assert warm["result"] == cold["result"]


def test_unknown_route_404_over_http(live_server):
    status, body = http_json("GET", f"{live_server}/v1/missing")
    assert status == 404


def test_invalid_json_body_400(live_server):
    import urllib.request

    request = urllib.request.Request(
        f"{live_server}/v1/rank",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status = response.status
            body = json.loads(response.read())
    except urllib.error.HTTPError as error:
        status = error.code
        body = json.loads(error.read())
    assert status == 400
    assert "not valid JSON" in body["error"]


def test_http_json_raises_on_unreachable():
    with pytest.raises(ServeError):
        http_json("GET", "http://127.0.0.1:9/healthz", timeout=2)


@pytest.mark.slow
def test_cli_serve_sigterm_drains_cleanly(serve_references, tmp_path):
    """Boot ``repro serve`` for real, hit it, SIGTERM it, expect exit 0."""
    references_path = tmp_path / "references.npz"
    serve_references.save_npz(references_path)

    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--references", str(references_path),
            "--port", "0",
            "--state-dir", str(tmp_path / "state"),
            "--jobs", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
        cwd=str(tmp_path),
    )
    try:
        port = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            match = re.search(r"http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port, "server never printed its boot line"

        status, body = http_json(
            "GET", f"http://127.0.0.1:{port}/healthz", timeout=30
        )
        assert status == 200
        status, _ = http_json(
            "POST",
            f"http://127.0.0.1:{port}/v1/rank",
            {"target": [], "mode": "sync"},
            timeout=30,
        )
        assert status == 400  # empty target rejected, but routed

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
