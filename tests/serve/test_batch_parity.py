"""The PR's determinism contract: batching never changes an answer.

Three layers, matching how a request actually flows:

- ``rank_batch`` == per-request ``rank``, bit for bit, across batch
  sizes {1, 3, 8} x jobs {1, 4};
- the pruned predict nearest == the full-matrix rank nearest on every
  catalog workload (ties included via a duplicated-target batch);
- a batching :class:`ServeApp` returns byte-identical bodies to a
  serialized (``max_batch=1``) one for the same distinct requests.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import PipelineConfig
from repro.serve.app import ServeApp
from repro.serve.protocol import canonical_json
from repro.serve.service import PredictionService
from repro.workloads import run_experiments
from repro.workloads.catalog import production_workload, standard_workloads
from repro.workloads.repository import result_to_dict

BATCH_SIZES = (1, 3, 8)


@pytest.fixture(scope="module")
def catalog_targets(serve_skus):
    """One single-workload target corpus per catalog workload."""
    targets = {}
    for spec in list(standard_workloads()) + [production_workload()]:
        targets[spec.name] = run_experiments(
            [spec],
            [serve_skus[0]],
            terminals_for=lambda w: (4,),
            n_runs=1,
            duration_s=600.0,
            random_state=2,
        )
    return targets


@pytest.fixture(scope="module")
def parallel_service(serve_references):
    """The same corpus warmed with a 4-worker engine config."""
    service = PredictionService(serve_references, PipelineConfig(jobs=4))
    service.warmup()
    return service


def batch_of(targets, size):
    """Cycle the catalog targets up to ``size`` distinct-ish entries."""
    ordered = list(targets.values())
    return [ordered[k % len(ordered)] for k in range(size)]


class TestRankBatchParity:
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_batch_equals_serial_rank(self, warm_service, catalog_targets, size):
        batch = batch_of(catalog_targets, size)
        rankings = warm_service.rank_batch(batch)
        assert len(rankings) == size
        for target, ranking in zip(batch, rankings):
            alone = warm_service.rank(target)
            assert ranking.target == alone.target
            assert ranking.distances == alone.distances

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_parallel_service_matches_serial_service(
        self, warm_service, parallel_service, catalog_targets, size
    ):
        batch = batch_of(catalog_targets, size)
        serial = warm_service.rank_batch(batch)
        parallel = parallel_service.rank_batch(batch)
        for a, b in zip(serial, parallel):
            assert a.target == b.target
            assert a.distances == b.distances

    def test_empty_batch_is_empty(self, warm_service):
        assert warm_service.rank_batch([]) == []


class TestPrunedPredictParity:
    def test_nearest_matches_full_rank_on_every_catalog_workload(
        self, warm_service, catalog_targets
    ):
        for name, target in catalog_targets.items():
            _, matrices = warm_service.prepare_target(target)
            pruned = warm_service.nearest_reference(matrices)
            full = warm_service.rank(target).nearest
            assert pruned == full, name

    def test_predict_uses_pruned_nearest(self, warm_service, catalog_targets):
        for name, target in catalog_targets.items():
            response = warm_service.predict(target, "s4", "s8")
            assert (
                response["reference_workload"]
                == warm_service.rank(target).nearest
            ), name
            assert "ranking" not in response
            assert response["target_workload"] == name

    def test_parallel_service_predicts_identically(
        self, warm_service, parallel_service, catalog_targets
    ):
        for target in catalog_targets.values():
            a = warm_service.predict(target, "s4", "s8")
            b = parallel_service.predict(target, "s4", "s8")
            assert canonical_json(a) == canonical_json(b)


class TestAppLevelParity:
    @pytest.fixture()
    def payloads(self, catalog_targets):
        bodies = []
        for name, target in catalog_targets.items():
            bodies.append(
                {"target": [result_to_dict(r) for r in target]}
            )
        return bodies

    def _collect(self, app, payloads, concurrent):
        results = {}
        if concurrent:
            with ThreadPoolExecutor(max_workers=len(payloads)) as pool:
                futures = [
                    pool.submit(app.handle, "POST", "/v1/rank", body)
                    for body in payloads
                ]
                responses = [future.result() for future in futures]
        else:
            responses = [
                app.handle("POST", "/v1/rank", body) for body in payloads
            ]
        for status, body, _ in responses:
            assert status == 200
            results[body["digest"]] = body["result"]
        return results

    def test_batched_app_matches_serialized_app(self, warm_service, payloads):
        serialized = ServeApp(
            warm_service,
            references_digest="refs",
            batch_window_ms=0.0,
            max_batch=1,
        )
        batched = ServeApp(
            warm_service,
            references_digest="refs",
            batch_window_ms=25.0,
            max_batch=8,
        )
        try:
            baseline = self._collect(serialized, payloads, concurrent=False)
            concurrent = self._collect(batched, payloads, concurrent=True)
            assert set(baseline) == set(concurrent)
            for digest, result in baseline.items():
                assert canonical_json(result) == canonical_json(
                    concurrent[digest]
                ), digest
        finally:
            serialized.shutdown(drain_timeout=10.0)
            batched.shutdown(drain_timeout=10.0)

    def test_mixed_batch_isolates_bad_requests(self, warm_service, payloads):
        app = ServeApp(
            warm_service,
            references_digest="refs",
            batch_window_ms=25.0,
            max_batch=8,
        )
        try:
            bodies = [
                payloads[0],
                {"target": [{"nonsense": True}]},
                payloads[1],
            ]
            with ThreadPoolExecutor(max_workers=3) as pool:
                futures = [
                    pool.submit(app.handle, "POST", "/v1/rank", body)
                    for body in bodies
                ]
                statuses = [future.result()[0] for future in futures]
            assert sorted(statuses) == [200, 200, 400]
        finally:
            app.shutdown(drain_timeout=10.0)
