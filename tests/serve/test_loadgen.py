"""LoadGenerator nonce scheduling for distinct-request load."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.serve.loadgen import LoadGenerator

PAYLOAD = {"target": [{"workload": "ycsb"}]}


def generator(**kwargs):
    return LoadGenerator("http://127.0.0.1:0", **kwargs)


class TestPayloadSchedule:
    def test_fraction_zero_passes_payload_through(self):
        gen = generator(unique_fraction=0.0)
        assert gen._payload_for(PAYLOAD, 0, 0) is PAYLOAD
        assert gen._payload_for(PAYLOAD, 3, 9) is PAYLOAD

    def test_fraction_one_nonces_every_request(self):
        gen = generator(unique_fraction=1.0, seed=7)
        for thread in range(3):
            for index in range(5):
                body = gen._payload_for(PAYLOAD, thread, index)
                assert body is not PAYLOAD
                assert body["loadgen_nonce"] == f"7-{thread}-{index}"
                assert body["target"] == PAYLOAD["target"]
        # The original payload is never mutated.
        assert "loadgen_nonce" not in PAYLOAD

    def test_nonces_are_distinct_across_threads_and_indices(self):
        gen = generator(unique_fraction=1.0)
        nonces = {
            gen._payload_for(PAYLOAD, thread, index)["loadgen_nonce"]
            for thread in range(4)
            for index in range(10)
        }
        assert len(nonces) == 40

    def test_schedule_is_deterministic(self):
        a = generator(unique_fraction=0.5, seed=3)
        b = generator(unique_fraction=0.5, seed=3)
        schedule_a = [
            "loadgen_nonce" in a._payload_for(PAYLOAD, t, i)
            for t in range(4)
            for i in range(20)
        ]
        schedule_b = [
            "loadgen_nonce" in b._payload_for(PAYLOAD, t, i)
            for t in range(4)
            for i in range(20)
        ]
        assert schedule_a == schedule_b
        # A middling fraction yields a genuine mix.
        assert any(schedule_a) and not all(schedule_a)

    def test_seed_changes_the_schedule(self):
        a = generator(unique_fraction=0.5, seed=0)
        b = generator(unique_fraction=0.5, seed=1)
        schedule_a = [
            "loadgen_nonce" in a._payload_for(PAYLOAD, t, i)
            for t in range(4)
            for i in range(20)
        ]
        schedule_b = [
            "loadgen_nonce" in b._payload_for(PAYLOAD, t, i)
            for t in range(4)
            for i in range(20)
        ]
        assert schedule_a != schedule_b


class TestValidation:
    @pytest.mark.parametrize("fraction", [-0.1, 1.1, 2.0])
    def test_rejects_out_of_range_fraction(self, fraction):
        with pytest.raises(ValidationError):
            generator(unique_fraction=fraction)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValidationError):
            generator(threads=0)
        with pytest.raises(ValidationError):
            generator(requests_per_thread=0)
