"""ServeApp routing, cache tiers, async jobs, single-flight, shutdown."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.serve.app import ServeApp


@pytest.fixture
def fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield get_metrics()
    set_metrics(previous)


@pytest.fixture
def app(warm_service, tmp_path, fresh_metrics):
    application = ServeApp(
        warm_service, references_digest="refs-digest", state_dir=tmp_path
    )
    yield application
    application.shutdown(drain_timeout=10.0)


def rank_payload(target_payload, **extra):
    return {"target": target_payload, **extra}


def predict_payload(target_payload, **extra):
    return {
        "target": target_payload,
        "source_sku": "s4",
        "target_sku": "s8",
        **extra,
    }


def poll_job(app, job_id, tries=200):
    for _ in range(tries):
        status, body, _ = app.handle("GET", f"/v1/jobs/{job_id}", None)
        assert status == 200
        if body["status"] in ("done", "failed"):
            return body
        threading.Event().wait(0.05)
    raise AssertionError(f"job {job_id} never settled")


class TestRoutes:
    def test_healthz(self, app):
        status, body, ctype = app.handle("GET", "/healthz", None)
        assert status == 200
        assert ctype == "application/json"
        assert body["status"] == "ok"
        assert body["identity"] == app.identity
        assert set(body["references"]["workloads"]) == {"tpcc", "twitter"}

    def test_metrics_is_prometheus_text(self, app):
        app.handle("GET", "/healthz", None)
        status, body, ctype = app.handle("GET", "/metrics", None)
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "serve_requests_total" in body

    def test_unknown_route_404(self, app):
        status, body, _ = app.handle("GET", "/v1/nope", None)
        assert status == 404
        assert "no route" in body["error"]

    def test_unknown_job_404(self, app):
        status, body, _ = app.handle("GET", "/v1/jobs/job-missing", None)
        assert status == 404

    def test_non_dict_body_400(self, app):
        status, body, _ = app.handle("POST", "/v1/rank", [1, 2, 3])
        assert status == 400
        assert "JSON object" in body["error"]

    def test_malformed_target_400(self, app):
        status, body, _ = app.handle("POST", "/v1/rank", {"target": "nope"})
        assert status == 400

    def test_unknown_sku_400(self, app, target_payload):
        payload = rank_payload(
            target_payload, source_sku="s4", target_sku="s4096"
        )
        status, body, _ = app.handle("POST", "/v1/predict", payload)
        assert status == 400
        assert "s4096" in body["error"]

    def test_status_counters_recorded(self, app, fresh_metrics):
        app.handle("GET", "/healthz", None)
        app.handle("GET", "/v1/nope", None)
        snap = fresh_metrics.snapshot()
        assert snap["serve.requests_total"]["value"] == 2
        assert snap["serve.responses.2xx_total"]["value"] == 1
        assert snap["serve.responses.4xx_total"]["value"] == 1
        assert snap["serve.request_ms"]["count"] == 2


class TestCacheTiers:
    def test_cold_then_warm_rank(self, app, target_payload):
        payload = rank_payload(target_payload)
        status, cold, _ = app.handle("POST", "/v1/rank", payload)
        assert status == 200
        assert cold["meta"]["cache_tier"] == "compute"
        assert cold["result"]["target_workload"] == "ycsb"
        assert cold["result"]["ranking"]

        status, warm, _ = app.handle("POST", "/v1/rank", payload)
        assert status == 200
        assert warm["meta"]["cache_tier"] == "memory"
        assert warm["digest"] == cold["digest"]
        assert warm["result"] == cold["result"]

    def test_predict_sync(self, app, target_payload):
        status, body, _ = app.handle(
            "POST", "/v1/predict", predict_payload(target_payload)
        )
        assert status == 200
        result = body["result"]
        assert result["source_sku"] == "s4"
        assert result["target_sku"] == "s8"
        predicted = result["predicted_throughput"]
        assert predicted["n"] > 0
        assert predicted["p50"] > 0

    def test_identity_changes_digest(
        self, warm_service, tmp_path, target_payload, fresh_metrics
    ):
        payload = rank_payload(target_payload)
        a = ServeApp(warm_service, references_digest="corpus-a")
        b = ServeApp(warm_service, references_digest="corpus-b")
        try:
            _, body_a, _ = a.handle("POST", "/v1/rank", payload)
            _, body_b, _ = b.handle("POST", "/v1/rank", payload)
            assert body_a["digest"] != body_b["digest"]
            assert body_a["result"] == body_b["result"]
        finally:
            a.shutdown(drain_timeout=10.0)
            b.shutdown(drain_timeout=10.0)


class TestSingleFlight:
    def test_concurrent_identical_requests_one_execution(
        self, app, target_payload, fresh_metrics
    ):
        payload = rank_payload(target_payload)
        responses = []

        def drive():
            responses.append(app.handle("POST", "/v1/rank", payload))

        threads = [threading.Thread(target=drive) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(responses) == 6
        assert all(status == 200 for status, _, _ in responses)
        bodies = [body["result"] for _, body, _ in responses]
        assert all(body == bodies[0] for body in bodies)
        snap = fresh_metrics.snapshot()
        assert snap["serve.pipeline_executions_total"]["value"] == 1


class TestAsyncJobs:
    def test_async_202_then_result_matches_sync(self, app, target_payload):
        sync_payload = rank_payload(target_payload)
        async_payload = rank_payload(target_payload, mode="async")

        status, accepted, _ = app.handle("POST", "/v1/rank", async_payload)
        assert status == 202
        assert accepted["status"] in ("pending", "running", "done")
        job = poll_job(app, accepted["job_id"])
        assert job["status"] == "done"

        status, sync, _ = app.handle("POST", "/v1/rank", sync_payload)
        assert status == 200
        # mode is volatile: the async job computed under the same digest,
        # so the sync request was a pure response-cache hit.
        assert sync["digest"] == accepted["digest"]
        assert sync["meta"]["cache_tier"] == "memory"
        assert job["result"] == sync["result"]


class TestShutdown:
    def test_compute_rejected_after_shutdown(self, app, target_payload):
        assert app.shutdown(drain_timeout=10.0)
        status, body, _ = app.handle(
            "POST", "/v1/rank", rank_payload(target_payload)
        )
        assert status == 503
        # Health stays up for orchestrators during drain.
        status, _, _ = app.handle("GET", "/healthz", None)
        assert status == 200
