"""Job queue: idempotent submission, journal recovery, drain."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ServeError, ValidationError
from repro.exec.journal import append_jsonl, load_jsonl
from repro.serve.jobs import JobQueue, job_id_for


def make_queue(tmp_path, compute=None, workers=1):
    if compute is None:
        compute = lambda endpoint, payload: {"echo": payload}  # noqa: E731
    return JobQueue(compute, state_dir=tmp_path, workers=workers)


def settle(queue, timeout=10.0):
    assert queue.drain(timeout=timeout)


def test_submit_runs_to_done(tmp_path):
    queue = make_queue(tmp_path)
    job = queue.submit("a" * 64, "/v1/rank", {"target": [1]})
    assert job.job_id == job_id_for("a" * 64)
    settle(queue)
    body = job.to_dict()
    assert body["status"] == "done"
    assert body["result"] == {"echo": {"target": [1]}}
    assert body["finished_at"] is not None


def test_resubmission_is_idempotent(tmp_path):
    calls = []

    def compute(endpoint, payload):
        calls.append(payload)
        return {"ok": True}

    queue = make_queue(tmp_path, compute)
    first = queue.submit("b" * 64, "/v1/rank", {"target": [1]})
    second = queue.submit("b" * 64, "/v1/rank", {"target": [1]})
    assert first is second
    settle(queue)
    assert len(calls) == 1
    assert len(queue) == 1


def test_failed_compute_records_error(tmp_path):
    def explode(endpoint, payload):
        raise RuntimeError("pipeline fell over")

    queue = make_queue(tmp_path, explode)
    job = queue.submit("c" * 64, "/v1/rank", {})
    settle(queue)
    body = job.to_dict()
    assert body["status"] == "failed"
    assert "pipeline fell over" in body["error"]
    assert "result" not in body


def test_journal_rows_written(tmp_path):
    queue = make_queue(tmp_path)
    queue.submit("d" * 64, "/v1/rank", {"target": [2]})
    settle(queue)
    rows, n_corrupt = load_jsonl(tmp_path / "jobs.jsonl", label="test")
    assert n_corrupt == 0
    events = [row["event"] for row in rows]
    assert events == ["submit", "done"]
    assert rows[1]["result"] == {"echo": {"target": [2]}}


def test_recover_serves_done_results_without_recompute(tmp_path):
    queue = make_queue(tmp_path)
    job = queue.submit("e" * 64, "/v1/predict", {"target": [3]})
    settle(queue)

    calls = []

    def compute(endpoint, payload):
        calls.append(payload)
        return {"recomputed": True}

    revived = make_queue(tmp_path, compute)
    assert revived.recover() == 0  # nothing pending
    settle(revived)
    recovered = revived.get(job.job_id)
    assert recovered is not None
    assert recovered.status == "done"
    assert recovered.result == {"echo": {"target": [3]}}
    assert calls == []


def test_recover_requeues_unfinished_jobs(tmp_path):
    # A submit row with no settlement — the server died mid-compute.
    append_jsonl(
        tmp_path / "jobs.jsonl",
        {
            "event": "submit",
            "job_id": job_id_for("f" * 64),
            "digest": "f" * 64,
            "endpoint": "/v1/rank",
            "payload": {"target": [4]},
            "submitted_at": 1.0,
        },
        label="test",
    )
    queue = make_queue(tmp_path)
    assert queue.recover() == 1
    settle(queue)
    job = queue.get(job_id_for("f" * 64))
    assert job.status == "done"
    assert job.result == {"echo": {"target": [4]}}


def test_recover_heals_torn_tail(tmp_path):
    journal = tmp_path / "jobs.jsonl"
    append_jsonl(
        journal,
        {
            "event": "submit",
            "job_id": job_id_for("9" * 64),
            "digest": "9" * 64,
            "endpoint": "/v1/rank",
            "payload": {},
            "submitted_at": 1.0,
        },
        label="test",
    )
    with journal.open("a", encoding="utf-8") as handle:
        handle.write('{"event": "done", "job_id": "job-tr')  # torn write
    queue = make_queue(tmp_path)
    assert queue.recover() == 1  # intact submit survives, torn row dropped
    settle(queue)


def test_submit_after_drain_raises(tmp_path):
    queue = make_queue(tmp_path)
    settle(queue)
    with pytest.raises(ServeError):
        queue.submit("a" * 64, "/v1/rank", {})


def test_rejects_bad_worker_count(tmp_path):
    with pytest.raises(ValidationError):
        JobQueue(lambda e, p: {}, state_dir=tmp_path, workers=0)


def test_journal_rows_are_json_objects(tmp_path):
    queue = make_queue(tmp_path)
    queue.submit("ab" * 32, "/v1/rank", {"target": [5]})
    settle(queue)
    for line in (tmp_path / "jobs.jsonl").read_text().splitlines():
        assert isinstance(json.loads(line), dict)
