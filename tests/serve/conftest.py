"""Shared serving fixtures: a small two-SKU corpus and a warm service.

Session-scoped because warmup (feature selection + builder fit +
reference matrices) is the expensive part and every test treats the
service as read-only warm state — exactly how the server uses it.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.serve.service import PredictionService
from repro.workloads import SKU, run_experiments, tpcc, twitter, ycsb
from repro.workloads.repository import result_to_dict


@pytest.fixture(scope="session")
def serve_skus():
    return [
        SKU(cpus=4, memory_gb=16.0, name="s4"),
        SKU(cpus=8, memory_gb=32.0, name="s8"),
    ]


@pytest.fixture(scope="session")
def serve_references(serve_skus):
    """TPC-C + Twitter on both SKUs — the server's reference corpus."""
    return run_experiments(
        [tpcc(), twitter()],
        serve_skus,
        terminals_for=lambda w: (4,),
        n_runs=2,
        duration_s=600.0,
        random_state=0,
    )


@pytest.fixture(scope="session")
def serve_target(serve_skus):
    """A YCSB run on the source SKU — the workload clients submit."""
    return run_experiments(
        [ycsb()],
        [serve_skus[0]],
        terminals_for=lambda w: (4,),
        n_runs=1,
        duration_s=600.0,
        random_state=1,
    )


@pytest.fixture(scope="session")
def target_payload(serve_target):
    """The wire form of the target corpus (request ``target`` field)."""
    return [result_to_dict(result) for result in serve_target]


@pytest.fixture(scope="session")
def warm_service(serve_references):
    """A warmed-up :class:`PredictionService` (no disk caches)."""
    service = PredictionService(serve_references, PipelineConfig())
    service.warmup()
    return service
