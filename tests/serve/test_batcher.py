"""BatchScheduler admission, flushing, error isolation, lifecycle."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import ServeError, ValidationError
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.serve.batcher import BatchScheduler


@pytest.fixture
def fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield get_metrics()
    set_metrics(previous)


def echo_executor(batches):
    """Executor recording each batch and answering with its payload."""

    def execute(items):
        batches.append([item.digest for item in items])
        for item in items:
            item.result = {"echo": item.payload}

    return execute


class TestBatching:
    def test_single_submit_round_trips(self, fresh_metrics):
        batches = []
        scheduler = BatchScheduler(
            echo_executor(batches), window_ms=1.0, max_batch=8
        )
        try:
            result = scheduler.submit("d1", "/v1/rank", {"n": 1})
            assert result == {"echo": {"n": 1}}
            assert batches == [["d1"]]
        finally:
            scheduler.close()

    def test_concurrent_submits_share_a_batch(self, fresh_metrics):
        """A slow first batch piles the rest of the submissions into the
        window; they must flush together, not one by one."""
        batches = []
        release = threading.Event()

        def execute(items):
            if not batches:
                release.wait(5.0)
            batches.append([item.digest for item in items])
            for item in items:
                item.result = {"ok": item.digest}

        scheduler = BatchScheduler(execute, window_ms=10.0, max_batch=8)
        try:
            with ThreadPoolExecutor(max_workers=6) as pool:
                first = pool.submit(scheduler.submit, "d0", "/v1/rank", {})
                time.sleep(0.1)  # d0's window expired; it is executing (blocked)
                rest = [
                    pool.submit(scheduler.submit, f"d{k}", "/v1/rank", {})
                    for k in range(1, 5)
                ]
                time.sleep(0.05)  # the rest are queued behind d0
                release.set()
                assert first.result(timeout=5.0) == {"ok": "d0"}
                for k, future in enumerate(rest, start=1):
                    assert future.result(timeout=5.0) == {"ok": f"d{k}"}
            assert batches[0] == ["d0"]
            # Everything queued while d0 executed flushes as one batch.
            assert sorted(batches[1]) == ["d1", "d2", "d3", "d4"]
            assert len(batches) == 2
        finally:
            scheduler.close()

    def test_max_batch_caps_flush_size(self, fresh_metrics):
        batches = []
        release = threading.Event()

        def execute(items):
            if not batches:
                release.wait(5.0)
            batches.append([item.digest for item in items])
            for item in items:
                item.result = True

        scheduler = BatchScheduler(execute, window_ms=50.0, max_batch=2)
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(scheduler.submit, f"d{k}", "/v1/rank", {})
                    for k in range(7)
                ]
                time.sleep(0.1)
                release.set()
                for future in futures:
                    assert future.result(timeout=5.0) is True
            assert all(len(batch) <= 2 for batch in batches)
        finally:
            scheduler.close()

    def test_max_batch_one_serializes(self, fresh_metrics):
        batches = []
        scheduler = BatchScheduler(
            echo_executor(batches), window_ms=50.0, max_batch=1
        )
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(scheduler.submit, f"d{k}", "/v1/rank", {})
                    for k in range(4)
                ]
                for future in futures:
                    future.result(timeout=5.0)
            assert all(len(batch) == 1 for batch in batches)
            assert len(batches) == 4
        finally:
            scheduler.close()


class TestErrorIsolation:
    def test_per_item_errors_stay_per_item(self, fresh_metrics):
        def execute(items):
            for item in items:
                if item.payload.get("bad"):
                    item.fail(ServeError("bad request"))
                else:
                    item.result = "ok"

        scheduler = BatchScheduler(execute, window_ms=1.0, max_batch=8)
        try:
            assert scheduler.submit("good", "/v1/rank", {}) == "ok"
            with pytest.raises(ServeError, match="bad request"):
                scheduler.submit("bad", "/v1/rank", {"bad": True})
            assert scheduler.submit("good2", "/v1/rank", {}) == "ok"
        finally:
            scheduler.close()

    def test_executor_raise_fails_unresolved_items_only(self, fresh_metrics):
        def execute(items):
            for item in items:
                if not item.payload.get("explode"):
                    item.result = "done"
            if any(item.payload.get("explode") for item in items):
                raise RuntimeError("executor blew up")

        scheduler = BatchScheduler(execute, window_ms=1.0, max_batch=8)
        try:
            assert scheduler.submit("ok", "/v1/rank", {}) == "done"
            with pytest.raises(RuntimeError, match="blew up"):
                scheduler.submit("boom", "/v1/rank", {"explode": True})
            # The scheduler thread survived the raise.
            assert scheduler.submit("ok2", "/v1/rank", {}) == "done"
        finally:
            scheduler.close()

    def test_executor_forgetting_an_item_errors_it(self, fresh_metrics):
        def execute(items):
            pass  # fills nothing

        scheduler = BatchScheduler(execute, window_ms=1.0, max_batch=8)
        try:
            with pytest.raises(ServeError, match="no result"):
                scheduler.submit("lost", "/v1/rank", {})
        finally:
            scheduler.close()


class TestLifecycle:
    def test_close_drains_then_rejects(self, fresh_metrics):
        batches = []
        scheduler = BatchScheduler(
            echo_executor(batches), window_ms=1.0, max_batch=8
        )
        scheduler.submit("d1", "/v1/rank", {})
        assert scheduler.close() is True
        assert scheduler.closed
        with pytest.raises(ServeError, match="closed"):
            scheduler.submit("d2", "/v1/rank", {})

    def test_close_is_idempotent(self, fresh_metrics):
        scheduler = BatchScheduler(
            echo_executor([]), window_ms=1.0, max_batch=2
        )
        assert scheduler.close() is True
        assert scheduler.close() is True

    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            BatchScheduler(lambda items: None, window_ms=-1.0)
        with pytest.raises(ValidationError):
            BatchScheduler(lambda items: None, max_batch=0)


class TestMetrics:
    def test_flush_reasons_and_sizes_recorded(self, fresh_metrics):
        release = threading.Event()
        seen = []

        def execute(items):
            if not seen:
                release.wait(5.0)
            seen.append(len(items))
            for item in items:
                item.result = True

        scheduler = BatchScheduler(execute, window_ms=30.0, max_batch=2)
        with ThreadPoolExecutor(max_workers=5) as pool:
            futures = [
                pool.submit(scheduler.submit, f"d{k}", "/v1/rank", {})
                for k in range(5)
            ]
            time.sleep(0.1)
            release.set()
            for future in futures:
                future.result(timeout=5.0)
        scheduler.close()
        snapshot = fresh_metrics.snapshot()
        assert snapshot["serve.batch.size"]["count"] == len(seen)
        flushes = sum(
            snapshot.get(f"serve.batch.flush_{reason}_total", {}).get(
                "value", 0
            )
            for reason in ("window", "full", "drain")
        )
        assert flushes == len(seen)
