"""ReferenceIndex construction and its warmup integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serve.index import ReferenceIndex
from repro.similarity.distcache import matrix_digest
from repro.similarity.dtw import keogh_envelope
from repro.similarity.measures import get_measure
from repro.similarity.pruning import measure_norm


@pytest.fixture()
def matrices():
    rng = np.random.default_rng(5)
    return [rng.normal(size=(8, 3)) for _ in range(4)]


LABELS = ["a", "a", "b", "b"]


class TestBuild:
    def test_digests_and_groups(self, matrices):
        index = ReferenceIndex.build(
            matrices, LABELS, ["a", "b"], get_measure("L2,1")
        )
        assert len(index) == 4
        assert index.digests == [matrix_digest(M) for M in matrices]
        assert index.groups == [("a", [0, 1]), ("b", [2, 3])]

    def test_norm_measure_precomputes_norms_not_envelopes(self, matrices):
        measure = get_measure("L2,1")
        index = ReferenceIndex.build(matrices, LABELS, ["a", "b"], measure)
        assert index.envelopes is None
        assert index.norms == [measure_norm(measure, M) for M in matrices]

    def test_dtw_measure_precomputes_envelopes_not_norms(self, matrices):
        measure = get_measure("Dependent-DTW")
        index = ReferenceIndex.build(matrices, LABELS, ["a", "b"], measure)
        assert index.norms is None
        assert index.envelopes is not None
        for (lower, upper), M in zip(index.envelopes, matrices):
            expected_lower, expected_upper = keogh_envelope(M)
            assert np.array_equal(lower, expected_lower)
            assert np.array_equal(upper, expected_upper)

    def test_group_order_follows_workload_order(self, matrices):
        index = ReferenceIndex.build(
            matrices, LABELS, ["b", "a"], get_measure("L2,1")
        )
        assert [name for name, _ in index.groups] == ["b", "a"]

    def test_no_ambient_store_means_no_pins(self, matrices):
        index = ReferenceIndex.build(
            matrices, LABELS, ["a", "b"], get_measure("L2,1")
        )
        assert index.pinned_digests == set()


class TestValidation:
    def test_rejects_empty_matrices(self):
        with pytest.raises(ValidationError):
            ReferenceIndex.build([], [], [], get_measure("L2,1"))

    def test_rejects_misaligned_labels(self, matrices):
        with pytest.raises(ValidationError):
            ReferenceIndex.build(
                matrices, ["a"], ["a"], get_measure("L2,1")
            )

    def test_rejects_unknown_workload(self, matrices):
        with pytest.raises(ValidationError):
            ReferenceIndex.build(
                matrices, LABELS, ["a", "b", "ghost"], get_measure("L2,1")
            )


class TestWarmupIntegration:
    def test_service_warmup_builds_index(self, warm_service):
        index = warm_service.index
        assert len(index) == len(warm_service._ref_matrices)
        assert index.digests == [
            matrix_digest(M) for M in warm_service._ref_matrices
        ]
        assert [name for name, _ in index.groups] == list(
            warm_service.references.workload_names()
        )
        # The default measure (L2,1) is norm-induced.
        assert index.norms is not None
        assert warm_service.pinned_digests is index.pinned_digests

    def test_group_members_match_label_masks(self, warm_service):
        labels = warm_service._ref_labels
        for name, members in warm_service.index.groups:
            assert members == [
                int(k) for k in np.flatnonzero(labels == name)
            ]
