"""Protocol invariants: canonical JSON, digests, wire decoding."""

from __future__ import annotations

import hashlib

import pytest

from repro.exceptions import ServeError
from repro.serve.protocol import (
    app_identity,
    canonical_json,
    decode_experiments,
    encode_experiment,
    file_digest,
    payload_digest,
    request_digest,
)
from repro.workloads.repository import results_equal


def test_canonical_json_is_key_order_independent():
    a = canonical_json({"b": 1, "a": {"y": 2, "x": 3}})
    b = canonical_json({"a": {"x": 3, "y": 2}, "b": 1})
    assert a == b
    assert " " not in a  # compact separators


def test_canonical_json_rejects_non_serializable():
    with pytest.raises(ServeError):
        canonical_json({"x": object()})
    with pytest.raises(ServeError):
        canonical_json({"x": float("nan")})


def test_payload_digest_stable_and_distinct():
    assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
    assert payload_digest({"a": 1}) != payload_digest({"a": 2})


def test_request_digest_ignores_mode():
    sync = request_digest("id", "/v1/rank", {"target": [1], "mode": "sync"})
    async_ = request_digest("id", "/v1/rank", {"target": [1], "mode": "async"})
    bare = request_digest("id", "/v1/rank", {"target": [1]})
    assert sync == async_ == bare


def test_request_digest_varies_with_inputs():
    base = request_digest("id", "/v1/rank", {"target": [1]})
    assert request_digest("other", "/v1/rank", {"target": [1]}) != base
    assert request_digest("id", "/v1/predict", {"target": [1]}) != base
    assert request_digest("id", "/v1/rank", {"target": [2]}) != base


def test_app_identity_varies_with_config_and_corpus():
    base = app_identity({"top_k": 7}, "abc")
    assert app_identity({"top_k": 5}, "abc") != base
    assert app_identity({"top_k": 7}, "def") != base


def test_file_digest_matches_hashlib(tmp_path):
    path = tmp_path / "refs.bin"
    path.write_bytes(b"corpus bytes")
    assert file_digest(path) == hashlib.sha256(b"corpus bytes").hexdigest()


def test_decode_experiments_roundtrip(serve_target):
    payload = [encode_experiment(result) for result in serve_target]
    decoded = decode_experiments(payload, what="target")
    assert len(decoded) == len(serve_target)
    for original, roundtripped in zip(serve_target, decoded):
        assert results_equal(original, roundtripped)


@pytest.mark.parametrize(
    "entries", [None, [], "not-a-list", [42], [{"workload_name": "x"}]]
)
def test_decode_experiments_rejects_malformed(entries):
    with pytest.raises(ServeError):
        decode_experiments(entries, what="target")
