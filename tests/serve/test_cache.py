"""Response-cache LRU semantics and single-flight coalescing."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.serve.cache import ResponseCache, SingleFlight


@pytest.fixture
def fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield get_metrics()
    set_metrics(previous)


class TestResponseCache:
    def test_miss_then_hit(self, fresh_metrics):
        cache = ResponseCache(4)
        assert cache.get("a") is None
        cache.put("a", {"answer": 1})
        assert cache.get("a") == {"answer": 1}
        snap = fresh_metrics.snapshot()
        assert snap["serve.response_cache.hits_total"]["value"] == 1
        assert snap["serve.response_cache.misses_total"]["value"] == 1

    def test_evicts_least_recently_used(self, fresh_metrics):
        cache = ResponseCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        snap = fresh_metrics.snapshot()
        assert snap["serve.response_cache.evictions_total"]["value"] == 1

    def test_put_refreshes_existing(self, fresh_metrics):
        cache = ResponseCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not a growth
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValidationError):
            ResponseCache(0)
        with pytest.raises(ValidationError):
            ResponseCache(4, max_bytes=0)


class TestByteBound:
    def test_unbounded_by_default(self, fresh_metrics):
        cache = ResponseCache(8)
        for k in range(8):
            cache.put(f"d{k}", {"blob": "x" * 1000})
        assert len(cache) == 8
        assert cache.total_bytes == 0  # not accounted without a bound

    def test_evicts_by_recency_when_over_bytes(self, fresh_metrics):
        entry = {"blob": "x" * 100}
        size = len('{"blob":"' + "x" * 100 + '"}')
        cache = ResponseCache(100, max_bytes=3 * size)
        for k in range(6):
            cache.put(f"d{k}", entry)
        assert len(cache) == 3
        assert cache.total_bytes <= 3 * size
        assert "d5" in cache and "d3" in cache
        assert "d0" not in cache
        snap = fresh_metrics.snapshot()
        assert snap["serve.response_cache.evictions_total"]["value"] == 3

    def test_oversized_entry_still_cached_alone(self, fresh_metrics):
        cache = ResponseCache(100, max_bytes=10)
        cache.put("big", {"blob": "x" * 1000})
        # The newest entry is never evicted on its own insert; the
        # bound empties everything else instead.
        assert "big" in cache
        assert len(cache) == 1
        cache.put("big2", {"blob": "y" * 1000})
        assert "big" not in cache
        assert "big2" in cache

    def test_refresh_reaccounts_bytes(self, fresh_metrics):
        cache = ResponseCache(100, max_bytes=10_000)
        cache.put("a", {"blob": "x" * 100})
        first = cache.total_bytes
        cache.put("a", {"blob": "x" * 2})
        assert cache.total_bytes < first
        assert len(cache) == 1

    def test_entry_count_still_applies(self, fresh_metrics):
        cache = ResponseCache(2, max_bytes=10_000_000)
        for k in range(4):
            cache.put(f"d{k}", k)
        assert len(cache) == 2


class TestSingleFlight:
    def test_serial_calls_each_compute(self, fresh_metrics):
        flight = SingleFlight()
        calls = []
        value, leader = flight.run("k", lambda: calls.append(1) or "v")
        assert (value, leader) == ("v", True)
        value, leader = flight.run("k", lambda: calls.append(1) or "v2")
        assert (value, leader) == ("v2", True)  # settled flights forgotten
        assert len(calls) == 2

    def test_concurrent_identical_coalesce_to_one(self, fresh_metrics):
        flight = SingleFlight()
        release = threading.Event()
        calls = []
        lock = threading.Lock()

        def compute():
            with lock:
                calls.append(1)
            release.wait(5.0)
            return "answer"

        results = []

        def drive():
            results.append(flight.run("key", compute))

        threads = [threading.Thread(target=drive) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Let every follower reach the wait before the leader finishes.
        deadline = threading.Event()
        deadline.wait(0.2)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(calls) == 1
        assert [value for value, _ in results] == ["answer"] * 8
        assert sum(1 for _, leader in results if leader) == 1
        snap = fresh_metrics.snapshot()
        assert snap["serve.singleflight.coalesced_total"]["value"] == 7

    def test_leader_exception_propagates_to_followers(self, fresh_metrics):
        flight = SingleFlight()
        release = threading.Event()

        def explode():
            release.wait(5.0)
            raise RuntimeError("boom")

        outcomes = []

        def drive():
            try:
                flight.run("key", explode)
            except RuntimeError as exc:
                outcomes.append(str(exc))

        threads = [threading.Thread(target=drive) for _ in range(4)]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.2)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert outcomes == ["boom"] * 4
        # A failed flight is forgotten: the next call recomputes.
        value, leader = flight.run("key", lambda: "recovered")
        assert (value, leader) == ("recovered", True)
