"""Setup shim for environments without the `wheel` package.

`pip install -e .` on offline machines falls back to the legacy setuptools
path, which needs this file; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
