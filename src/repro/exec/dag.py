"""Task-DAG scheduling across pipeline stages, one pool for everything.

The paper's workflow is a pipeline of dependent stages — corpus
simulation → representations → distance chunks → model fits — and the
stage-by-stage engines run each behind a barrier: every simulation must
finish before the first distance pair is computed, every distance
before the first fit.  :func:`run_dag` removes the barriers: tasks
declare their dependencies (and, through ``key``, their
content-address-fingerprinted identity), the scheduler topo-sorts the
graph, and every task whose inputs are ready runs in **one**
``ProcessPoolExecutor`` — a distance chunk from stage two interleaves
with the last simulations of stage one and the first fits of stage
three.

Semantics are inherited from :mod:`repro.exec.engine` and
:mod:`repro.workloads.gridexec`:

- determinism — results and merged telemetry are bit-identical at any
  worker count.  Cache probes happen parent-side in topological order,
  task bodies are pure, and snapshots are merged in topological order
  regardless of completion order;
- per-task :class:`~repro.exec.engine.RetryPolicy` with quarantine on
  exhaustion; every task *downstream* of a quarantined task is skipped
  (recorded on the report), never silently wrong;
- broken pools are rebuilt and their in-flight tasks resubmitted, with
  a last-chance in-process attempt for tasks whose budget was
  exhausted by breakage;
- no pool at all falls back to serial with
  ``<label>.pool_fallback_total``;
- a task with a ``cache`` (anything with ``get(key)``/``put(key,
  value)`` — the corpus/fit caches qualify) is short-circuited when its
  fingerprint is already stored, and its computed result is persisted
  on completion; an optional resume ``journal`` records each completed
  fingerprint;
- results flagged ``publish=True`` are placed in the run's
  :class:`~repro.exec.arrays.ArrayStore` and flow to dependents as
  zero-copy refs instead of pickled matrices.

Dependent payloads reference upstream results with :class:`Input`
placeholders, substituted parent-side at dispatch time.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.exec.arrays import ArrayStore
from repro.exec.engine import (
    RetryPolicy,
    _merge_indexed_snapshots,
    _shell,
    _sleep_backoff,
    as_retry_policy,
)
from repro.obs.logging import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer, span
from repro.utils.parallel import POOL_UNAVAILABLE_ERRORS, resolve_jobs

logger = get_logger(__name__)


@dataclass(frozen=True)
class Input:
    """Placeholder in a payload for the result of an upstream task."""

    key: str


@dataclass(frozen=True)
class DagTask:
    """One node of the DAG.

    ``key`` is the task's identity — ideally a content-address
    fingerprint (corpus/distance/fit cache key) so caching and resume
    work across runs; any unique string works for uncached tasks.
    ``fn`` must be module-level with the engine signature
    ``fn(payload, attempt, in_worker)``; ``payload`` may contain
    :class:`Input` placeholders and
    :class:`~repro.exec.arrays.ArrayRef` handles.
    """

    key: str
    fn: Callable
    payload: object = ()
    deps: tuple = ()
    task_id: str = ""
    cache: object = None
    publish: bool = False
    validate: Callable | None = None

    @property
    def name(self) -> str:
        return self.task_id or self.key


@dataclass(frozen=True)
class DagReport:
    """What one :func:`run_dag` call actually did."""

    n_tasks: int
    n_workers: int
    n_executed: int
    n_cached: int
    elapsed_s: float
    n_retried: int = 0
    n_quarantined: int = 0
    n_skipped: int = 0
    #: ``(task name, reason)`` pairs for tasks that exhausted retries.
    quarantined: tuple = ()
    #: Keys skipped because an upstream task was quarantined.
    skipped: tuple = ()
    pool_fallbacks: int = 0
    pool_rebuilds: int = 0


class DagResults(dict):
    """``key -> result`` for every task, carrying the :class:`DagReport`.

    Quarantined and skipped tasks map to ``None``.
    """

    report: DagReport | None = None


def _substitute(obj, shipped: dict):
    """Replace :class:`Input` placeholders with upstream results."""
    if isinstance(obj, Input):
        return shipped[obj.key]
    if isinstance(obj, tuple):
        return tuple(_substitute(item, shipped) for item in obj)
    if isinstance(obj, list):
        return [_substitute(item, shipped) for item in obj]
    if isinstance(obj, dict):
        return {key: _substitute(value, shipped) for key, value in obj.items()}
    return obj


def topo_order(tasks: "list[DagTask]") -> list[str]:
    """Deterministic topological order (Kahn's, submission order first).

    Validates the graph: duplicate keys, dependencies on unknown keys,
    and cycles all raise :class:`~repro.exceptions.ValidationError`.
    """
    by_key: dict[str, DagTask] = {}
    for task in tasks:
        if task.key in by_key:
            raise ValidationError(f"duplicate DAG task key {task.key!r}")
        by_key[task.key] = task
    unmet: dict[str, int] = {}
    dependents: dict[str, list[str]] = {task.key: [] for task in tasks}
    for task in tasks:
        seen: set[str] = set()
        for dep in task.deps:
            if dep not in by_key:
                raise ValidationError(
                    f"task {task.key!r} depends on unknown key {dep!r}"
                )
            if dep in seen:
                continue
            seen.add(dep)
            dependents[dep].append(task.key)
        unmet[task.key] = len(seen)
    ready = deque(task.key for task in tasks if unmet[task.key] == 0)
    order: list[str] = []
    while ready:
        key = ready.popleft()
        order.append(key)
        for dependent in dependents[key]:
            unmet[dependent] -= 1
            if unmet[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(tasks):
        cyclic = sorted(set(by_key) - set(order))
        raise ValidationError(f"DAG has a cycle involving {cyclic}")
    return order


@dataclass
class _DagState:
    """Mutable bookkeeping of one :func:`run_dag` invocation."""

    tasks: dict
    order: list
    position: dict
    dependents: dict
    unmet: dict
    retry: RetryPolicy
    label: str
    store: "ArrayStore | None"
    journal: object
    results: DagResults = field(default_factory=DagResults)
    shipped: dict = field(default_factory=dict)
    snapshots: dict = field(default_factory=dict)
    ready: deque = field(default_factory=deque)
    resolved: set = field(default_factory=set)
    quarantined: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    retried: int = 0
    pool_fallbacks: int = 0
    pool_rebuilds: int = 0
    tracing: bool = False

    def complete(self, task: DagTask, result, *, from_cache: bool) -> None:
        """Record a finished task and unblock its dependents."""
        self.results[task.key] = result
        value = result
        if task.publish and self.store is not None:
            value = _publish_arrays(result, self.store)
        self.shipped[task.key] = value
        self.resolved.add(task.key)
        if from_cache:
            self.cached += 1
        else:
            self.executed += 1
            if task.cache is not None:
                try:
                    task.cache.put(task.key, result)
                except Exception as exc:
                    logger.warning(
                        "cache write failed for %s: %s", task.name, exc
                    )
                    get_metrics().counter(
                        f"{self.label}.cache_write_errors_total"
                    ).inc()
            if self.journal is not None:
                self.journal.record(task.key, task.task_id)
        for dependent in self.dependents[task.key]:
            self.unmet[dependent] -= 1
            if self.unmet[dependent] == 0:
                self.ready.append(dependent)

    def fail(self, task: DagTask, exc: BaseException) -> None:
        """Quarantine ``task`` and skip everything downstream of it."""
        reason = f"{type(exc).__name__}: {exc}"
        self.quarantined.append((task.name, reason))
        get_metrics().counter(f"{self.label}.quarantined_total").inc()
        logger.error(
            "DAG task %s quarantined after exhausting retries: %s",
            task.name, reason,
        )
        self._abandon(task.key)
        queue = deque(self.dependents[task.key])
        while queue:
            key = queue.popleft()
            if key in self.resolved:
                continue
            self._abandon(key)
            self.skipped.append(key)
            logger.warning(
                "DAG task %s skipped: upstream %s quarantined",
                self.tasks[key].name, task.name,
            )
            queue.extend(self.dependents[key])

    def _abandon(self, key: str) -> None:
        self.results[key] = None
        self.shipped[key] = None
        self.resolved.add(key)

    def count_retry(self, task: DagTask, attempt: int,
                    exc: BaseException) -> None:
        self.retried += 1
        get_metrics().counter(f"{self.label}.retries_total").inc()
        logger.warning(
            "DAG task %s attempt %d failed (%s: %s); retrying",
            task.name, attempt, type(exc).__name__, exc,
        )

    def payload_for(self, task: DagTask):
        return _substitute(task.payload, self.shipped)

    def run_inline(self, task: DagTask, first_attempt: int = 0) -> None:
        """One task's full retry loop, in-process."""
        attempt = first_attempt
        payload = self.payload_for(task)
        while True:
            try:
                result, telemetry = _shell(
                    task.fn, payload, attempt, False, self.tracing
                )
                if task.validate is not None:
                    task.validate(result)
            except Exception as exc:
                attempt += 1
                if attempt < self.retry.max_attempts:
                    self.count_retry(task, attempt - 1, exc)
                    _sleep_backoff(self.retry, attempt - first_attempt)
                    continue
                self.fail(task, exc)
                return
            self.snapshots[self.position[task.key]] = telemetry
            self.complete(task, result, from_cache=False)
            return


def _publish_arrays(result, store: ArrayStore):
    """Swap arrays in a result for store refs (one level into lists)."""
    if isinstance(result, np.ndarray):
        return store.put(result)
    if isinstance(result, (list, tuple)):
        swapped = [
            store.put(item) if isinstance(item, np.ndarray) else item
            for item in result
        ]
        return type(result)(swapped) if isinstance(result, tuple) else swapped
    return result


def run_dag(
    tasks,
    *,
    jobs: int | None = None,
    retry: "RetryPolicy | int | None" = None,
    label: str = "exec.dag",
    store: "ArrayStore | None" = None,
    journal=None,
) -> DagResults:
    """Execute a task DAG; returns ``key -> result`` plus a report.

    ``jobs`` follows the repo-wide convention (``None``/``1`` serial,
    ``0`` one worker per CPU).  ``store`` receives results of tasks
    flagged ``publish=True`` (the caller owns its lifetime); without a
    store, published results flow to dependents as ordinary pickled
    values.  ``journal`` is anything with ``record(key, task_id)``.
    """
    tasks = list(tasks)
    retry = as_retry_policy(retry)
    order = topo_order(tasks)
    by_key = {task.key: task for task in tasks}
    position = {key: index for index, key in enumerate(order)}
    dependents: dict[str, list[str]] = {key: [] for key in by_key}
    unmet: dict[str, int] = {}
    for task in tasks:
        deps = set(task.deps)
        unmet[task.key] = len(deps)
        for dep in deps:
            dependents[dep].append(task.key)
    n_workers = resolve_jobs(jobs)
    state = _DagState(
        tasks=by_key, order=order, position=position, dependents=dependents,
        unmet=unmet, retry=retry, label=label, store=store, journal=journal,
    )
    state.tracing = get_tracer().enabled
    metrics = get_metrics()
    start = time.perf_counter()
    with span(label, attrs={"tasks": len(tasks), "workers": n_workers}):
        # Cache probes run parent-side in topological order on every
        # path, so hit/miss counters are identical at any worker count.
        # A fingerprint hit completes the task without waiting for its
        # dependencies — content addressing covers the inputs already.
        for key in order:
            task = by_key[key]
            if task.cache is None:
                continue
            cached = task.cache.get(task.key)
            if cached is not None:
                state.complete(task, cached, from_cache=True)
        runnable = [key for key in order if key not in state.resolved]
        if n_workers > 1 and len(runnable) > 1:
            _run_dag_parallel(state, n_workers)
        else:
            n_workers = 1
            for key in runnable:
                if key in state.resolved:
                    continue  # skipped by an upstream quarantine
                state.run_inline(by_key[key])
        _merge_indexed_snapshots(state.snapshots)
    metrics.counter(f"{label}.tasks_total").inc(len(tasks))
    results = state.results
    results.report = DagReport(
        n_tasks=len(tasks),
        n_workers=n_workers,
        n_executed=state.executed,
        n_cached=state.cached,
        elapsed_s=time.perf_counter() - start,
        n_retried=state.retried,
        n_quarantined=len(state.quarantined),
        n_skipped=len(state.skipped),
        quarantined=tuple(state.quarantined),
        skipped=tuple(sorted(state.skipped, key=position.get)),
        pool_fallbacks=state.pool_fallbacks,
        pool_rebuilds=state.pool_rebuilds,
    )
    logger.debug(
        "dag %s: %d tasks, %d workers, %d cached, %d executed, %d retried, "
        "%d quarantined, %d skipped in %.2fs",
        label, len(tasks), n_workers, state.cached, state.executed,
        state.retried, len(state.quarantined), len(state.skipped),
        results.report.elapsed_s,
    )
    return results


def _run_dag_parallel(state: _DagState, n_workers: int) -> None:
    """Event loop: one pool, tasks dispatched the moment deps resolve."""
    metrics = get_metrics()
    # Tasks already unblocked by the cache pre-pass, in topo order.
    pending = deque(
        (state.tasks[key], 0)
        for key in state.order
        if key not in state.resolved and state.unmet[key] == 0
    )
    state.ready = deque()

    while pending or state.ready:
        pending.extend(
            (state.tasks[key], 0) for key in _drain_ready(state)
        )
        if not pending:
            break
        try:
            pool = ProcessPoolExecutor(max_workers=n_workers)
        except POOL_UNAVAILABLE_ERRORS as exc:
            logger.warning(
                "process pool unavailable (%s); %s falling back to serial",
                exc, state.label,
            )
            state.pool_fallbacks += 1
            metrics.counter(f"{state.label}.pool_fallback_total").inc()
            _finish_dag_serial(state, pending)
            return
        broken = False
        futures: dict = {}
        handled: set = set()
        requeue: list = []
        try:
            try:
                while pending:
                    task, attempt = pending.popleft()
                    futures[pool.submit(
                        _shell, task.fn, state.payload_for(task), attempt,
                        True, state.tracing,
                    )] = (task, attempt)
            except BrokenExecutor:
                broken = True
            outstanding = set(futures)
            while outstanding and not broken:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    handled.add(future)
                    task, attempt = futures[future]
                    try:
                        result, telemetry = future.result()
                        if task.validate is not None:
                            task.validate(result)
                    except BrokenExecutor:
                        broken = True
                        requeue.append((task, attempt + 1))
                        continue
                    except Exception as exc:
                        next_attempt = attempt + 1
                        if next_attempt < state.retry.max_attempts:
                            state.count_retry(task, attempt, exc)
                            _sleep_backoff(state.retry, next_attempt)
                            try:
                                new = pool.submit(
                                    _shell, task.fn,
                                    state.payload_for(task), next_attempt,
                                    True, state.tracing,
                                )
                            except BrokenExecutor:
                                broken = True
                                requeue.append((task, next_attempt))
                            else:
                                futures[new] = (task, next_attempt)
                                outstanding.add(new)
                        else:
                            state.fail(task, exc)
                        continue
                    state.snapshots[state.position[task.key]] = telemetry
                    state.complete(task, result, from_cache=False)
                    # Dispatch anything this completion unblocked into
                    # the same pool — cross-stage interleaving.
                    for key in _drain_ready(state):
                        unblocked = state.tasks[key]
                        try:
                            new = pool.submit(
                                _shell, unblocked.fn,
                                state.payload_for(unblocked), 0, True,
                                state.tracing,
                            )
                        except BrokenExecutor:
                            broken = True
                            requeue.append((unblocked, 1))
                        else:
                            futures[new] = (unblocked, 0)
                            outstanding.add(new)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        if broken:
            state.pool_rebuilds += 1
            metrics.counter(f"{state.label}.pool_rebuilds_total").inc()
            for future, item in futures.items():
                if future in handled:
                    continue
                task, attempt = item
                requeue.append((task, attempt + 1))
            for task, attempt in requeue:
                state.retried += 1
                metrics.counter(f"{state.label}.retries_total").inc()
                if attempt < state.retry.max_attempts:
                    pending.append((task, attempt))
                else:
                    # Cannot know whether this task killed the pool;
                    # give it one attributable in-process attempt.
                    state.run_inline(task, attempt)
            if pending:
                logger.warning(
                    "worker pool broke; rebuilding (%d tasks requeued)",
                    len(pending),
                )


def _drain_ready(state: _DagState) -> list[str]:
    """Newly unblocked keys, topo-sorted, minus any already resolved."""
    keys = [key for key in state.ready if key not in state.resolved]
    state.ready.clear()
    keys.sort(key=state.position.get)
    return keys


def _finish_dag_serial(state: _DagState, pending) -> None:
    """Pool-less fallback: run every remaining task in topo order."""
    remaining = {task.key for task, _ in pending}
    first_attempts = {task.key: attempt for task, attempt in pending}
    while True:
        remaining.update(key for key in _drain_ready(state))
        todo = sorted(
            (key for key in remaining if key not in state.resolved),
            key=state.position.get,
        )
        if not todo:
            break
        remaining.clear()
        for key in todo:
            if key in state.resolved:
                continue
            state.run_inline(
                state.tasks[key], first_attempts.get(key, 0)
            )
