"""One task engine behind every parallel stage of the pipeline.

Historically each stage grew its own executor — gridexec (the richest:
retry, quarantine, broken-pool rebuild, resume journal), fitexec,
distance-matrix chunks, and forest tree batches (each a bare
submit-and-consume loop with a serial fallback).  :func:`run_tasks` is
the single engine all four now share, generalized from the gridexec
semantics so every stage gets the full treatment:

- every task gets up to :attr:`RetryPolicy.max_attempts` attempts with
  capped exponential backoff;
- exhausted tasks are **quarantined** (``on_error="quarantine"``:
  recorded on the report with ``None`` at their result position) or
  **fatal** (``on_error="raise"``: the error propagates, as the
  fit/distance/forest engines have always behaved);
- a dead worker (broken pool) triggers a pool rebuild and resubmission,
  with one final attributable serial attempt before giving up on tasks
  whose budget was exhausted *by breakage*;
- when no pool can be created at all
  (:data:`~repro.utils.parallel.POOL_UNAVAILABLE_ERRORS`), execution
  falls back to serial with a warning and one increment of
  ``<label>.pool_fallback_total`` — identical behavior and metric
  across every engine (this used to differ between gridexec and
  fitexec);
- task payloads may contain :class:`~repro.exec.arrays.ArrayRef`
  handles; the worker shell resolves them against shared memory before
  the task body runs, on the serial and parallel paths alike.

The determinism contract is inherited unchanged: task functions are
pure, every task runs under
:func:`~repro.obs.telemetry.capture_telemetry` on both paths, and the
parent merges snapshots in task-index (submission) order — so results
*and* merged telemetry are bit-identical at any worker count.

A task function must be module-level (picklable) with the signature
``fn(payload, attempt, in_worker)``; ``payload`` arrives with refs
already resolved.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ValidationError
from repro.exec.arrays import resolve_refs
from repro.obs.logging import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.telemetry import capture_telemetry, merge_snapshot
from repro.obs.tracing import get_tracer
from repro.utils.parallel import POOL_UNAVAILABLE_ERRORS, resolve_jobs

logger = get_logger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry budget with capped exponential backoff.

    ``max_attempts`` counts attempts, not retries: the default of 3
    means one initial attempt plus up to two retries.  The ``n``-th
    retry sleeps ``min(backoff_cap_s, backoff_base_s * 2**(n-1))``;
    a zero base disables sleeping entirely (what tests use).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValidationError("backoff durations must be >= 0")

    def delay_s(self, retry_number: int) -> float:
        """Seconds to sleep before retry ``retry_number`` (1-based)."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * 2 ** (max(retry_number, 1) - 1),
        )


def as_retry_policy(retry: "RetryPolicy | int | None") -> RetryPolicy:
    """Normalize a retry argument: ``None``, an attempt count, or a policy."""
    if retry is None:
        return RetryPolicy()
    if isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, int):
        return RetryPolicy(max_attempts=retry)
    raise TypeError(
        "retry must be None, an int, or a RetryPolicy, "
        f"got {type(retry).__name__}"
    )


@dataclass(frozen=True)
class ExecTask:
    """One schedulable unit: a picklable function and its payload.

    ``index`` is the task's submission position — the order results are
    returned and telemetry snapshots are merged in.  ``key`` is an
    optional content-address fingerprint (corpus/distance/fit cache
    key) used by callers for journaling and cache short-circuits;
    ``task_id`` names the task in logs and quarantine records.
    """

    index: int
    fn: Callable
    payload: object = ()
    key: str | None = None
    task_id: str = ""

    @property
    def name(self) -> str:
        return self.task_id or f"task-{self.index}"


@dataclass(frozen=True)
class ExecReport:
    """What one :func:`run_tasks` call actually did."""

    n_tasks: int
    n_workers: int
    n_executed: int
    elapsed_s: float
    n_retried: int = 0
    n_quarantined: int = 0
    #: ``(task_id, reason)`` pairs for tasks that exhausted their retries.
    quarantined: tuple = ()
    pool_fallbacks: int = 0
    pool_rebuilds: int = 0


class ExecResults(list):
    """Results in task-index order, carrying the :class:`ExecReport`.

    Positions of quarantined tasks hold ``None``.
    """

    report: ExecReport | None = None


class PersistentPool:
    """A long-lived worker pool reused across :func:`run_tasks` calls.

    A batch CLI run amortizes pool spin-up over thousands of tasks; a
    server answering one request at a time cannot — forking workers and
    re-importing numpy per request would dwarf the work itself.  While a
    persistent pool is installed (:func:`set_persistent_pool`, or the
    :func:`persistent_pool` context manager), every parallel
    :func:`run_tasks` call borrows its executor instead of building one,
    and leaves it running afterwards.

    The pool is created lazily, recreated after breakage (a dead worker
    renders a ``ProcessPoolExecutor`` unusable), and thread-safe: server
    threads may run tasks through it concurrently —
    ``ProcessPoolExecutor.submit`` is thread-safe, and each
    :func:`run_tasks` call keeps its own future bookkeeping.  Worker
    recycling is delegated to ``max_tasks_per_child``-free semantics:
    tasks are pure, so workers live as long as the pool does.
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = int(max_workers)
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self.rebuilds = 0

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def acquire(self) -> ProcessPoolExecutor:
        """The live executor, created on first use.

        Raises the usual :data:`~repro.utils.parallel.POOL_UNAVAILABLE_ERRORS`
        when no pool can be created; callers fall back to serial exactly
        as they would for a private pool.
        """
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
            return self._pool

    def invalidate(self, pool: ProcessPoolExecutor) -> None:
        """Discard ``pool`` after breakage so the next acquire rebuilds.

        Idempotent and race-tolerant: two concurrent runs observing the
        same breakage both call this, the second is a no-op.
        """
        with self._lock:
            if self._pool is not pool:
                return
            self._pool = None
            self.rebuilds += 1
        get_metrics().counter("exec.persistent_pool_rebuilds_total").inc()
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken-pool teardown
            pass

    def close(self) -> None:
        """Shut the executor down; the next acquire would recreate it."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


_persistent_pool: PersistentPool | None = None


def set_persistent_pool(
    pool: PersistentPool | None,
) -> PersistentPool | None:
    """Install ``pool`` for every parallel :func:`run_tasks` call.

    The installer owns the pool's lifetime (it is *not* closed when
    replaced).  Returns the previously installed pool.
    """
    global _persistent_pool
    previous = _persistent_pool
    _persistent_pool = pool
    return previous


def get_persistent_pool() -> PersistentPool | None:
    """The installed persistent pool, or ``None``."""
    return _persistent_pool


class persistent_pool:
    """Context manager: install (and own) a :class:`PersistentPool`::

        with persistent_pool(max_workers=4):
            run_tasks(...)   # borrows the shared executor
            run_tasks(...)   # no second pool spin-up
    """

    def __init__(self, max_workers: int):
        self.pool = PersistentPool(max_workers)
        self._previous: PersistentPool | None = None

    def __enter__(self) -> PersistentPool:
        self._previous = set_persistent_pool(self.pool)
        return self.pool

    def __exit__(self, *exc_info) -> None:
        set_persistent_pool(self._previous)
        self.pool.close()


def _shell(fn, payload, attempt, in_worker, tracing):
    """The unit shipped to workers (and called in-process when serial).

    Resolves shared-memory refs in the payload, then runs the task body
    under telemetry capture; returns ``(result, TelemetrySnapshot)``.
    """
    payload = resolve_refs(payload)
    return capture_telemetry(fn, payload, attempt, in_worker, tracing=tracing)


class _Run:
    """Mutable state of one :func:`run_tasks` invocation."""

    def __init__(self, results, retry, label, on_error, validate,
                 on_result, after_task, journal):
        self.results = results
        self.retry = retry
        self.label = label
        self.on_error = on_error
        self.validate = validate
        self.on_result = on_result
        self.after_task = after_task
        self.journal = journal
        self.executed = 0
        self.retried = 0
        self.quarantined: list = []
        self.pool_fallbacks = 0
        self.pool_rebuilds = 0
        self.tracing = get_tracer().enabled

    def accept(self, task: ExecTask, attempt: int, result) -> None:
        """Bookkeeping for an accepted attempt (telemetry already held)."""
        if self.on_result is not None:
            self.on_result(task, attempt, result)
        if self.journal is not None and task.key is not None:
            self.journal.record(task.key, task.task_id)
        self.results[task.index] = result
        self.executed += 1
        if self.after_task is not None:
            self.after_task(task)

    def count_retry(self, task: ExecTask, attempt: int,
                    exc: BaseException) -> None:
        self.retried += 1
        get_metrics().counter(f"{self.label}.retries_total").inc()
        logger.warning(
            "task %s attempt %d failed (%s: %s); retrying",
            task.name, attempt, type(exc).__name__, exc,
        )

    def give_up(self, task: ExecTask, exc: BaseException) -> None:
        """Quarantine or raise, per ``on_error``."""
        if self.on_error == "raise":
            raise exc
        reason = f"{type(exc).__name__}: {exc}"
        self.quarantined.append((task.task_id or task.name, reason))
        get_metrics().counter(f"{self.label}.quarantined_total").inc()
        logger.error(
            "task %s quarantined after exhausting retries: %s",
            task.name, reason,
        )


def _sleep_backoff(retry: RetryPolicy, retry_number: int) -> None:
    delay = retry.delay_s(retry_number)
    if delay > 0:
        time.sleep(delay)


def _merge_indexed_snapshots(snapshots: dict) -> None:
    """Merge collected worker snapshots in task-index order."""
    for index in sorted(snapshots):
        merge_snapshot(snapshots[index])
    snapshots.clear()


def _run_serial(run: _Run, items, retry: RetryPolicy) -> None:
    """Run ``(task, first_attempt)`` items in-process."""
    for task, first_attempt in items:
        attempt = first_attempt
        while True:
            try:
                result, telemetry = _shell(
                    task.fn, task.payload, attempt, False, run.tracing
                )
                if run.validate is not None:
                    run.validate(result)
            except Exception as exc:
                attempt += 1
                if attempt < retry.max_attempts:
                    run.count_retry(task, attempt - 1, exc)
                    _sleep_backoff(retry, attempt - first_attempt)
                    continue
                run.give_up(task, exc)
                break
            # Telemetry is merged only for accepted attempts, right when
            # the result is accepted — index order, same as parallel.
            merge_snapshot(telemetry)
            run.accept(task, attempt, result)
            break


def _run_parallel(run: _Run, tasks, n_workers: int) -> None:
    """Fan tasks out over a process pool (full gridexec semantics).

    The pool is rebuilt when a worker dies (the pool object is unusable
    after a ``BrokenProcessPool``); unfinished tasks are resubmitted
    with an incremented attempt.  Because pool breakage cannot be
    attributed to a single task, tasks whose attempts are exhausted *by
    breakage* get one final serial attempt — in-process, where a
    crashing task can be identified — before quarantine.  If no pool
    can be created at all, everything runs serially with a warning and
    one ``<label>.pool_fallback_total`` increment.
    """
    retry = run.retry
    queue = [(task, 0) for task in tasks]
    last_chance: list = []  # exhausted by pool breakage; retried serially
    #: Snapshot of the accepted attempt per task index; merged in index
    #: order at the end so telemetry matches a serial run regardless of
    #: the order futures completed in.
    snapshots: dict[int, object] = {}

    persistent = get_persistent_pool()
    while queue:
        try:
            if persistent is not None:
                pool = persistent.acquire()
            else:
                pool = ProcessPoolExecutor(max_workers=n_workers)
        except POOL_UNAVAILABLE_ERRORS as exc:
            logger.warning(
                "process pool unavailable (%s); %s falling back to serial",
                exc, run.label,
            )
            run.pool_fallbacks += 1
            get_metrics().counter(f"{run.label}.pool_fallback_total").inc()
            _merge_indexed_snapshots(snapshots)
            _run_serial(run, queue, retry)
            return
        broken = False
        futures: dict = {}
        handled: set = set()
        requeue: list = []
        try:
            try:
                for item in queue:
                    task, attempt = item
                    futures[pool.submit(
                        _shell, task.fn, task.payload, attempt, True,
                        run.tracing,
                    )] = item
            except BrokenExecutor:
                broken = True
            queue = []
            outstanding = set(futures)
            while outstanding and not broken:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    handled.add(future)
                    task, attempt = futures[future]
                    try:
                        result, telemetry = future.result()
                        if run.validate is not None:
                            run.validate(result)
                    except BrokenExecutor:
                        # The worker executing *some* task died; this
                        # future is collateral.  Requeue and rebuild.
                        broken = True
                        requeue.append((task, attempt + 1))
                        continue
                    except Exception as exc:
                        next_attempt = attempt + 1
                        if next_attempt < retry.max_attempts:
                            run.count_retry(task, attempt, exc)
                            _sleep_backoff(retry, next_attempt)
                            try:
                                new = pool.submit(
                                    _shell, task.fn, task.payload,
                                    next_attempt, True, run.tracing,
                                )
                            except BrokenExecutor:
                                broken = True
                                requeue.append((task, next_attempt))
                            else:
                                futures[new] = (task, next_attempt)
                                outstanding.add(new)
                        else:
                            if run.on_error == "raise":
                                # The error will propagate: flush the
                                # held snapshots first so completed
                                # tasks keep their telemetry.
                                _merge_indexed_snapshots(snapshots)
                            run.give_up(task, exc)
                        continue
                    # Worker-side metric/span increments come back in
                    # the snapshot; hold it for the index-ordered merge.
                    snapshots[task.index] = telemetry
                    run.accept(task, attempt, result)
        finally:
            if persistent is None:
                pool.shutdown(wait=True, cancel_futures=True)
            elif broken:
                persistent.invalidate(pool)
        if broken:
            run.pool_rebuilds += 1
            get_metrics().counter(f"{run.label}.pool_rebuilds_total").inc()
            for future, item in futures.items():
                if future in handled:
                    continue
                task, attempt = item
                requeue.append((task, attempt + 1))
            for task, attempt in requeue:
                run.retried += 1
                get_metrics().counter(f"{run.label}.retries_total").inc()
                if attempt < retry.max_attempts:
                    queue.append((task, attempt))
                else:
                    # Cannot know whether this task killed the pool;
                    # give it one attributable in-process attempt.
                    last_chance.append((task, attempt))
            if queue or last_chance:
                logger.warning(
                    "worker pool broke; rebuilding (%d tasks requeued, "
                    "%d falling back to serial)",
                    len(queue), len(last_chance),
                )

    _merge_indexed_snapshots(snapshots)
    if last_chance:
        final_policy = RetryPolicy(
            max_attempts=max(attempt for _, attempt in last_chance) + 1,
            backoff_base_s=0.0,
        )
        _run_serial(run, last_chance, final_policy)


def run_tasks(
    tasks,
    *,
    jobs: int | None = None,
    retry: "RetryPolicy | int | None" = None,
    label: str = "exec",
    on_error: str = "raise",
    validate: Callable | None = None,
    on_result: Callable | None = None,
    after_task: Callable | None = None,
    journal=None,
) -> ExecResults:
    """Run every task and return results in task-index order.

    ``jobs`` follows the repo-wide convention (``None``/``1`` serial,
    ``0`` one worker per CPU).  ``validate`` runs on each result inside
    the retry loop (a validation failure consumes an attempt, exactly
    like a task exception).  ``on_result(task, attempt, result)`` runs
    on the parent for each accepted result *before* it is recorded
    (cache writes); ``after_task(task)`` runs after.  ``journal`` is
    anything with ``record(key, task_id)`` — each accepted task with a
    ``key`` is journaled between ``on_result`` and ``after_task``.

    ``on_error="raise"`` propagates the first exhausted failure;
    ``"quarantine"`` records it on the report with ``None`` at the
    task's result position.
    """
    tasks = list(tasks)
    retry = as_retry_policy(retry)
    if on_error not in ("raise", "quarantine"):
        raise ValidationError(
            f"on_error must be 'raise' or 'quarantine', got {on_error!r}"
        )
    n_workers = resolve_jobs(jobs)
    results = ExecResults([None] * len(tasks))
    run = _Run(
        results, retry, label, on_error, validate, on_result, after_task,
        journal,
    )
    start = time.perf_counter()
    if n_workers > 1 and len(tasks) > 1:
        _run_parallel(run, tasks, n_workers)
    else:
        n_workers = 1
        _run_serial(run, [(task, 0) for task in tasks], retry)
    results.report = ExecReport(
        n_tasks=len(tasks),
        n_workers=n_workers,
        n_executed=run.executed,
        elapsed_s=time.perf_counter() - start,
        n_retried=run.retried,
        n_quarantined=len(run.quarantined),
        quarantined=tuple(run.quarantined),
        pool_fallbacks=run.pool_fallbacks,
        pool_rebuilds=run.pool_rebuilds,
    )
    return results
