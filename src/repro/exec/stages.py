"""Ready-made DAG builders for the paper's pipeline stages.

The pipeline behind every benchmark figure is corpus simulation →
representations → pairwise distances → model fits.  Run stage-by-stage,
each stage is a barrier: the last straggling simulation holds up every
distance pair, the last distance chunk holds up every fit.  The builders
here express the same work as one :func:`repro.exec.dag.run_dag` graph,
so the scheduler interleaves tasks from *different* stages in a single
pool — and, because every task carries a content-address key and the
simulation tasks a :class:`~repro.workloads.cache.CorpusCache`, a warm
re-run short-circuits straight to the stages whose inputs changed.

Stage wiring (:func:`pipeline_dag`):

- one **simulation** task per :class:`~repro.workloads.gridexec.GridTask`
  (keyed by the corpus-cache fingerprint, validated by
  :func:`~repro.workloads.repository.ensure_finite`);
- one **representation** task depending on every simulation: fits the
  :class:`~repro.similarity.representations.RepresentationBuilder` on
  the corpus (normalization ranges are corpus-wide) and builds one
  matrix per experiment.  Flagged ``publish=True`` so the matrices land
  in the run's :class:`~repro.exec.arrays.ArrayStore` and downstream
  chunks receive zero-copy refs;
- one **distance chunk** task per deterministic slice of the
  upper-triangle pair list (layout mirrors
  :func:`repro.similarity.evaluation.distance_matrix`: a pure function
  of the pair count, never of the worker count);
- one **assemble** task folding the chunks into the symmetric matrix;
- one **fit** task per prediction target, depending only on the
  simulations — so fits interleave with distance chunks instead of
  waiting behind them.

Determinism is inherited from :func:`~repro.exec.dag.run_dag`: every
task body is pure, so results and merged telemetry are bit-identical at
any worker count (pinned by ``tests/exec/test_stages.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exec.arrays import acquire_store
from repro.exec.dag import DagResults, DagTask, Input, run_dag
from repro.ml.linear import Ridge
from repro.obs.tracing import span
from repro.similarity.evaluation import _pair_chunk_body
from repro.similarity.representations import RepresentationBuilder
from repro.utils.parallel import chunk_bounds
from repro.workloads.gridexec import _task_body
from repro.workloads.repository import ensure_finite

#: Mirrors ``repro.similarity.evaluation.PAIR_CHUNK_TARGET`` but kept
#: small enough that toy corpora still exercise multi-chunk scheduling.
DAG_PAIR_CHUNK_TARGET = 16

#: Default prediction targets for the fit stage: each becomes one DAG
#: task regressing the corpus feature vectors onto the attribute.
DEFAULT_FIT_TARGETS = ("throughput", "latency_ms")


def _sim_unit(payload, attempt: int, in_worker: bool):
    """One corpus simulation (the gridexec task body, no fault hooks)."""
    (task,) = payload
    return _task_body(task, attempt, None, in_worker)


def _rep_unit(payload, attempt: int, in_worker: bool):
    """Fit the builder on the corpus, build one matrix per experiment."""
    builder, corpus, representation, features = payload
    with span(
        "exec.stages.representations",
        attrs={"representation": representation, "n": len(corpus)},
    ):
        builder.fit(corpus)
        return [
            builder.build(result, representation, features=features)
            for result in corpus
        ]


def _chunk_unit(payload, attempt: int, in_worker: bool):
    """One distance chunk over the published representation matrices."""
    matrices, local_pairs, measure, chunk_index = payload
    return _pair_chunk_body(list(matrices), local_pairs, measure, chunk_index)


def _assemble_unit(payload, attempt: int, in_worker: bool):
    """Fold per-chunk distance values into the symmetric matrix."""
    n, chunks, outputs = payload
    with span("exec.stages.assemble", attrs={"n": n}):
        D = np.zeros((n, n))
        for chunk, (values, _seconds) in zip(chunks, outputs):
            for (i, j), value in zip(chunk, values):
                D[i, j] = D[j, i] = value
        return D


def _fit_unit(payload, attempt: int, in_worker: bool):
    """Ridge-regress corpus feature vectors onto one target attribute."""
    corpus, target = payload
    with span("exec.stages.fit", attrs={"target": target}):
        X = np.vstack([result.feature_vector() for result in corpus])
        y = np.array([float(getattr(result, target)) for result in corpus])
        model = Ridge().fit(X, y)
        return model.predict(X)


def simulation_tasks(grid_tasks, *, cache=None) -> list[DagTask]:
    """One DAG task per grid task, keyed by the corpus fingerprint."""
    tasks = []
    for grid_task in grid_tasks:
        key = (
            cache.task_key(grid_task)
            if cache is not None
            else f"sim:{grid_task.task_id}"
        )
        tasks.append(
            DagTask(
                key=key,
                fn=_sim_unit,
                payload=(grid_task,),
                task_id=grid_task.task_id,
                cache=cache,
                validate=ensure_finite,
            )
        )
    return tasks


def pipeline_dag(
    grid_tasks,
    *,
    measure,
    representation: str = "hist",
    builder=None,
    features=None,
    cache=None,
    fit_targets=DEFAULT_FIT_TARGETS,
    chunk_target: int = DAG_PAIR_CHUNK_TARGET,
) -> list[DagTask]:
    """Build the full mixed-stage DAG for one pipeline run.

    Returns the task list; run it with :func:`repro.exec.dag.run_dag`
    (or :func:`run_pipeline`, which also owns the array store).  The
    distance matrix lands under key ``"distances"``, each fit's
    in-sample predictions under ``"fit:<target>"``.
    """
    if builder is None:
        builder = RepresentationBuilder()
    sims = simulation_tasks(grid_tasks, cache=cache)
    sim_keys = [task.key for task in sims]
    rep_key = f"rep:{representation}"
    tasks = list(sims)
    tasks.append(
        DagTask(
            key=rep_key,
            fn=_rep_unit,
            payload=(
                builder,
                [Input(key) for key in sim_keys],
                representation,
                features,
            ),
            deps=tuple(sim_keys),
            publish=True,
        )
    )
    n = len(sims)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chunk_size = max(1, math.ceil(len(pairs) / chunk_target))
    chunks = [
        pairs[start:stop]
        for start, stop in chunk_bounds(len(pairs), chunk_size)
    ]
    chunk_keys = []
    for index, chunk in enumerate(chunks):
        key = f"dist:{measure.name}:{index}"
        chunk_keys.append(key)
        tasks.append(
            DagTask(
                key=key,
                fn=_chunk_unit,
                payload=(Input(rep_key), chunk, measure, index),
                deps=(rep_key,),
            )
        )
    tasks.append(
        DagTask(
            key="distances",
            fn=_assemble_unit,
            payload=(n, chunks, [Input(key) for key in chunk_keys]),
            deps=tuple(chunk_keys),
        )
    )
    for target in fit_targets:
        tasks.append(
            DagTask(
                key=f"fit:{target}",
                fn=_fit_unit,
                payload=([Input(key) for key in sim_keys], target),
                deps=tuple(sim_keys),
            )
        )
    return tasks


def run_pipeline(
    grid_tasks,
    *,
    measure,
    jobs: int | None = None,
    representation: str = "hist",
    builder=None,
    features=None,
    cache=None,
    fit_targets=DEFAULT_FIT_TARGETS,
    chunk_target: int = DAG_PAIR_CHUNK_TARGET,
    journal=None,
) -> DagResults:
    """Run the full pipeline DAG, owning the array store's lifetime."""
    tasks = pipeline_dag(
        grid_tasks,
        measure=measure,
        representation=representation,
        builder=builder,
        features=features,
        cache=cache,
        fit_targets=fit_targets,
        chunk_target=chunk_target,
    )
    store, owned = acquire_store(True)
    try:
        return run_dag(
            tasks,
            jobs=jobs,
            label="exec.dag",
            store=store,
            journal=journal,
        )
    finally:
        if store is not None and owned:
            store.close()
