"""The repo-wide JSONL append/load discipline, factored into one place.

Four components persist append-only JSONL — the gridexec
:class:`~repro.workloads.gridexec.ResumeJournal`, the
:class:`~repro.ml.fitexec.FitCache`, the
:class:`~repro.similarity.distcache.DistanceCache`, and the
:class:`~repro.obs.ledger.RunLedger` — and each used to carry its own
copy of the same two rituals:

- **append**: heal a torn tail (a SIGKILL mid-append leaves the file
  without a trailing newline; appending blindly would corrupt *two*
  rows), then write the new line.
- **load**: parse line by line, skip and count torn/corrupt lines,
  never fail.

This module is the single implementation both rituals now share, with
one upgrade over the historical copies: :func:`append_jsonl` composes
the healing newline and the row into **one** ``write()`` on an
``O_APPEND`` descriptor.  POSIX serializes each append-mode write, so
two *processes* appending to the same file concurrently can interleave
whole rows but never bytes inside a row — the torn-tail healer used to
assume a single writer, and interleaved partial writes from a second
process could shred both rows (``tests/exec/test_journal.py`` drives
multiple writer processes against one file to pin this down).  The
worst a concurrent duplicate heal can inject is an empty line, which
every loader skips.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.logging import get_logger

logger = get_logger(__name__)


def _needs_heal(path: Path) -> bool:
    """Whether the file ends mid-line (torn tail from an earlier kill)."""
    try:
        with path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return False
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"
    except FileNotFoundError:
        return False


def append_jsonl(path: str | Path, row: dict, *, sort_keys: bool = False,
                 label: str = "journal") -> bool:
    """Append one JSON row to ``path``, healing a torn tail first.

    The heal prefix and the row are emitted as a single append-mode
    write, so concurrent writer processes cannot interleave inside a
    row.  Failures are logged under ``label`` and swallowed — every
    caller treats its JSONL as an optimization or accounting aid, never
    a correctness requirement.  Returns whether the append happened.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(row, sort_keys=sort_keys) + "\n"
        data = line.encode("utf-8")
        if _needs_heal(path):
            data = b"\n" + data
        with path.open("ab") as handle:
            handle.write(data)
            handle.flush()
    except OSError as exc:
        logger.warning("cannot append to %s %s: %s", label, path, exc)
        return False
    return True


def load_jsonl(path: str | Path, *,
               label: str = "journal") -> tuple[list, int]:
    """Parse every line of ``path``; returns ``(rows, n_corrupt)``.

    Torn or otherwise unparseable lines are counted, not fatal — the
    caller decides whether to publish the count as a metric.  A missing
    or unreadable file is an empty journal.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        logger.warning("cannot read %s %s: %s", label, path, exc)
        return [], 0
    rows: list = []
    corrupt = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            corrupt += 1
    return rows, corrupt
