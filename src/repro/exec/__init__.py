"""One execution substrate for every parallel stage of the pipeline.

Before this package existed the repo ran four parallel executors —
:mod:`repro.workloads.gridexec` (corpus simulation),
:func:`repro.similarity.evaluation.distance_matrix` (pair chunks),
:func:`repro.ml.fitexec.run_units` (fit/score units), and the forest
tree batches — each with its own pool, retry, journal, and
torn-tail-healing JSONL logic, and each paying full-pickle IPC for
every array it shipped to a worker.  ``repro.exec`` factors all of that
into one place:

- :mod:`repro.exec.journal` — the single torn-tail-healing JSONL
  append/load discipline (ResumeJournal, FitCache, DistanceCache, and
  the run ledger all build on it), with appends that are safe under
  *concurrent* writers, not just single-writer tails.
- :mod:`repro.exec.arrays` — content-addressed zero-copy array passing
  over ``multiprocessing.shared_memory`` (np.memmap spool files as the
  fallback), so workers stop pickling full matrices.
- :mod:`repro.exec.engine` — one task engine with the full gridexec
  semantics: RetryPolicy, quarantine, BrokenProcessPool rebuild with a
  last-chance serial attempt, serial fallback when no pool can be
  created (``<label>.pool_fallback_total``), resume-journal recording,
  and submission-order telemetry merge so serial == jobs=N bit-for-bit.
- :mod:`repro.exec.dag` — a task-DAG scheduler on top of the engine:
  tasks declare content-address-fingerprinted inputs/outputs and
  dependencies, the scheduler topo-sorts them so simulation, distance
  chunks, and model fits from *different* pipeline stages interleave in
  one ``ProcessPoolExecutor`` instead of stage-by-stage barriers.
- :mod:`repro.exec.stages` — ready-made DAG builders for the paper's
  pipeline (corpus simulation → representations → distances → fits).

See ``docs/performance.md`` (execution substrate section) for the DAG
model, the fingerprint keys, and the shared-memory lifecycle.
"""

from repro.exec.arrays import (
    ArrayRef,
    ArrayStore,
    ambient_store,
    detach_all,
    resolve_refs,
    set_ambient_store,
)
from repro.exec.dag import DagResults, DagTask, Input, run_dag
from repro.exec.engine import (
    ExecReport,
    ExecResults,
    ExecTask,
    PersistentPool,
    get_persistent_pool,
    persistent_pool,
    run_tasks,
    set_persistent_pool,
)
from repro.exec.journal import append_jsonl, load_jsonl

__all__ = [
    "ArrayRef",
    "ArrayStore",
    "DagResults",
    "DagTask",
    "ExecReport",
    "ExecResults",
    "ExecTask",
    "Input",
    "PersistentPool",
    "ambient_store",
    "append_jsonl",
    "detach_all",
    "get_persistent_pool",
    "load_jsonl",
    "persistent_pool",
    "resolve_refs",
    "run_tasks",
    "run_dag",
    "set_ambient_store",
    "set_persistent_pool",
]
