"""Zero-copy array passing between the scheduler and its workers.

Every parallel stage of the pipeline ships numpy arrays to worker
processes — representation matrices to distance chunks, feature
matrices to tree batches — and pickling those arrays into the pool's
IPC pipe is pure overhead: the worker only ever *reads* them.  This
module replaces the pickled copies with content-addressed references:

- :meth:`ArrayStore.put` publishes an array once — into a
  ``multiprocessing.shared_memory`` segment, or an ``np.memmap`` spool
  file when shared memory is unavailable — and returns a tiny picklable
  :class:`ArrayRef` (name, shape, dtype, digest; a few hundred bytes
  regardless of array size).
- :func:`resolve_refs` runs worker-side and materializes each ref as a
  **read-only** view of the published bytes.  Attachments are cached
  per process, so a worker that executes many tasks over the same
  corpus maps each array once.

The store is content-addressed (SHA-256 over dtype, shape, and raw
bytes — the same discipline as the corpus/distance/fit cache keys), so
publishing the same array twice dedupes to one segment, and the bytes a
worker sees are exactly the bytes the parent held: zero-copy passing
cannot perturb the serial == jobs=N bit-for-bit contract.

Lifecycle: the parent that created the store owns the segments and
frees them on :meth:`ArrayStore.close` (the store is a context
manager).  Every live store is additionally tracked in a weak set and
closed by an :mod:`atexit` hook, so a long-running process (the
``repro serve`` server) that dies without unwinding its stores does not
leak ``/dev/shm`` segments across restarts; :meth:`ArrayStore.prune`
frees everything *except* a pinned digest set mid-flight, which is how
a server keeps its corpus arrays published across requests without
accumulating per-request temporaries.  Worker-side attachments are
views; on Linux the kernel keeps the backing pages alive until the last
map goes away, so workers may outlive ``close()`` mid-shutdown without
faulting on pages they still hold.  A long-lived *worker* clears its
attachment cache with :func:`detach_all`.

A process may install one **ambient** store
(:func:`set_ambient_store`): parallel stages that would otherwise
create a throwaway store per call publish through the ambient one
instead — and never close it.  Because :meth:`ArrayStore.put` dedupes
by content digest, arrays shared across calls (a server's reference
corpus) are published exactly once for the life of the store.  Workers attach by mapping the segment's ``/dev/shm`` backing
file read-only rather than through ``SharedMemory`` — attaching is
borrowing, not owning, and going through ``SharedMemory`` would tangle
the borrowed segment into the ``multiprocessing`` resource tracker's
ownership bookkeeping.

``REPRO_EXEC_ARRAYS`` selects the backend: ``shm`` (default where
available), ``mmap`` (spool files; when ``/dev/shm`` is too small or
missing), or ``off`` (callers fall back to pickled arrays — what the
IPC benchmark uses as its baseline).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs.logging import get_logger

logger = get_logger(__name__)

#: Environment switch: ``shm`` | ``mmap`` | ``off`` | ``auto`` (default).
ARRAYS_ENV = "REPRO_EXEC_ARRAYS"


def arrays_enabled() -> bool:
    """Whether callers should publish arrays instead of pickling them."""
    return os.environ.get(ARRAYS_ENV, "auto").lower() != "off"


#: Live stores awaiting cleanup; weak so a collected store drops out.
_LIVE_STORES: "weakref.WeakSet" = weakref.WeakSet()


@atexit.register
def _close_live_stores() -> None:
    """Free every still-open store's segments at interpreter exit.

    Shared-memory segments outlive their process unless unlinked; a
    long-running server killed mid-request (or a caller that never
    unwound its ``with`` block) would otherwise leak ``/dev/shm`` until
    reboot.
    """
    for store in list(_LIVE_STORES):
        try:
            store.close()
        except Exception:  # pragma: no cover - best-effort shutdown
            pass


#: The process-wide ambient store, when one is installed.
_AMBIENT_STORE: "ArrayStore | None" = None


def set_ambient_store(store: "ArrayStore | None") -> "ArrayStore | None":
    """Install ``store`` as the process's ambient store.

    While installed, parallel stages publish arrays through it instead
    of creating (and closing) a private store per call, so content
    shared across calls is published once.  The installer owns the
    store's lifetime.  Returns the previously installed store.
    """
    global _AMBIENT_STORE
    previous = _AMBIENT_STORE
    _AMBIENT_STORE = store
    return previous


def ambient_store() -> "ArrayStore | None":
    """The installed ambient store, or ``None``."""
    return _AMBIENT_STORE


def acquire_store(want: bool) -> "tuple[ArrayStore | None, bool]":
    """The store a parallel stage should publish through, if any.

    Returns ``(store, owned)``: the ambient store when one is installed
    (``owned=False`` — the caller must not close it), otherwise a fresh
    private store when ``want`` is true and publishing is enabled
    (``owned=True`` — the caller closes it when the fan-out ends).
    """
    if not (want and arrays_enabled()):
        return None, False
    ambient = ambient_store()
    if ambient is not None:
        return ambient, False
    return ArrayStore(), True


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to a published array.

    ``kind`` is ``"shm"`` (``name`` is a shared-memory segment name),
    ``"mmap"`` (``name`` is a spool-file path), or ``"inline"`` for
    zero-byte arrays, whose payload *is* the metadata (shared-memory
    segments cannot be empty).
    """

    kind: str
    name: str
    shape: tuple
    dtype: str
    digest: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


def array_ref_digest(arr: np.ndarray) -> str:
    """SHA-256 content address preserving dtype (exact byte round-trip)."""
    arr = np.ascontiguousarray(arr)
    digest = hashlib.sha256()
    digest.update(arr.dtype.str.encode("utf-8"))
    digest.update(repr(arr.shape).encode("utf-8"))
    digest.update(arr.tobytes())
    return digest.hexdigest()


class ArrayStore:
    """Parent-side registry of published arrays, content-deduplicated.

    One store serves one engine/DAG run: the parent publishes every
    array its tasks reference, ships the refs, and frees the segments
    when the run is over.  Publishing is idempotent per content digest.
    """

    def __init__(self, backend: str | None = None, spool_dir=None):
        env = os.environ.get(ARRAYS_ENV, "auto").lower()
        backend = backend or ("auto" if env in ("off", "") else env)
        if backend not in ("auto", "shm", "mmap"):
            raise ValueError(f"unknown array-store backend {backend!r}")
        self._backend = backend
        self._spool_dir = Path(spool_dir) if spool_dir is not None else None
        self._own_spool = False
        self._segments: dict[str, object] = {}  # digest -> SharedMemory
        self._refs: dict[str, ArrayRef] = {}
        self._closed = False
        _LIVE_STORES.add(self)

    def __enter__(self) -> "ArrayStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - depends on GC timing
        try:
            self.close()
        except Exception:
            pass

    def __len__(self) -> int:
        return len(self._refs)

    @property
    def nbytes(self) -> int:
        """Total bytes currently published (shm segments + spool files)."""
        return sum(
            ref.nbytes for ref in self._refs.values() if ref.kind != "inline"
        )

    def digests(self) -> set:
        """Content digests of everything currently published."""
        return set(self._refs)

    def put(self, arr: np.ndarray) -> ArrayRef:
        """Publish ``arr`` and return its ref (dedup by content)."""
        if self._closed:
            raise RuntimeError("ArrayStore is closed")
        arr = np.ascontiguousarray(np.asarray(arr))
        digest = array_ref_digest(arr)
        ref = self._refs.get(digest)
        if ref is not None:
            return ref
        if arr.nbytes == 0:
            ref = ArrayRef("inline", "", arr.shape, arr.dtype.str, digest)
        else:
            ref = self._publish(arr, digest)
        self._refs[digest] = ref
        return ref

    def _publish(self, arr: np.ndarray, digest: str) -> ArrayRef:
        if self._backend in ("auto", "shm"):
            try:
                return self._publish_shm(arr, digest)
            except OSError as exc:
                if self._backend == "shm":
                    raise
                logger.warning(
                    "shared memory unavailable (%s); spooling arrays to "
                    "memmap files", exc,
                )
                self._backend = "mmap"
        return self._publish_mmap(arr, digest)

    def _publish_shm(self, arr: np.ndarray, digest: str) -> ArrayRef:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        self._segments[digest] = shm
        return ArrayRef("shm", shm.name, arr.shape, arr.dtype.str, digest)

    def _publish_mmap(self, arr: np.ndarray, digest: str) -> ArrayRef:
        if self._spool_dir is None:
            self._spool_dir = Path(tempfile.mkdtemp(prefix="repro-arrays-"))
            self._own_spool = True
        self._spool_dir.mkdir(parents=True, exist_ok=True)
        path = self._spool_dir / f"{digest}.bin"
        if not path.exists():
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(arr.tobytes())
            os.replace(tmp, path)
        return ArrayRef("mmap", str(path), arr.shape, arr.dtype.str, digest)

    def get(self, ref: ArrayRef) -> np.ndarray:
        """Materialize a ref in this process (parent-side convenience)."""
        return resolve_ref(ref)

    def _free(self, digest: str, ref: ArrayRef) -> None:
        shm = self._segments.pop(digest, None)
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass
        elif ref.kind == "mmap":
            try:
                Path(ref.name).unlink()
            except OSError:
                pass

    def prune(self, keep=()) -> int:
        """Free every published array whose digest is not in ``keep``.

        A long-lived store (a server's ambient store) pins its corpus
        digests and prunes after each request, so per-request
        temporaries never accumulate in ``/dev/shm``.  Returns how many
        arrays were freed.
        """
        keep = set(keep)
        victims = [d for d in self._refs if d not in keep]
        for digest in victims:
            self._free(digest, self._refs.pop(digest))
        return len(victims)

    def close(self) -> None:
        """Free every published segment and spool file."""
        if self._closed:
            return
        self._closed = True
        for digest, ref in list(self._refs.items()):
            self._free(digest, ref)
        self._segments.clear()
        if self._own_spool and self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
        self._refs.clear()
        _LIVE_STORES.discard(self)


#: Per-process attachment cache: a worker executing many tasks against
#: the same corpus attaches each segment exactly once.
_ATTACHED: dict[tuple[str, str], np.ndarray] = {}
#: Attached SharedMemory objects, kept alive alongside their views.
_ATTACHED_SEGMENTS: dict[str, object] = {}


def resolve_ref(ref: ArrayRef) -> np.ndarray:
    """Materialize one ref as a read-only array (cached per process)."""
    cache_key = (ref.kind, ref.name or ref.digest)
    cached = _ATTACHED.get(cache_key)
    if cached is not None:
        return cached
    if ref.kind == "inline":
        arr = np.empty(ref.shape, dtype=np.dtype(ref.dtype))
    elif ref.kind == "shm":
        backing = Path("/dev/shm") / ref.name.lstrip("/")
        if backing.exists():
            # Linux: map the segment's backing file directly.  Attaching
            # through SharedMemory would (re-)register the segment with
            # the multiprocessing resource tracker, whose unregister
            # bookkeeping races between forked workers and the owning
            # parent; a plain read-only map shares the same pages with
            # zero tracker involvement.
            arr = np.memmap(
                backing, dtype=np.dtype(ref.dtype), mode="r", shape=ref.shape
            )
        else:  # pragma: no cover - non-Linux shm namespace
            from multiprocessing import resource_tracker, shared_memory

            shm = shared_memory.SharedMemory(name=ref.name)
            try:
                # Attaching is borrowing: without this, the worker's
                # resource tracker unlinks the segment on exit out from
                # under the parent that still owns it.
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
            _ATTACHED_SEGMENTS[ref.name] = shm
            arr = np.ndarray(
                ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf
            )
    elif ref.kind == "mmap":
        arr = np.memmap(
            ref.name, dtype=np.dtype(ref.dtype), mode="r", shape=ref.shape
        )
    else:
        raise ValueError(f"unknown ArrayRef kind {ref.kind!r}")
    arr.flags.writeable = False
    _ATTACHED[cache_key] = arr
    return arr


def detach_all() -> None:
    """Drop this process's cached attachments (worker-side cleanup).

    A pool worker that serves many runs against different stores would
    otherwise keep every mapped segment alive for its whole life; a
    long-running server recycles workers and calls this between
    generations.
    """
    _ATTACHED.clear()
    for shm in _ATTACHED_SEGMENTS.values():
        try:
            shm.close()
        except OSError:  # pragma: no cover - platform-dependent
            pass
    _ATTACHED_SEGMENTS.clear()


def resolve_refs(obj):
    """Replace every :class:`ArrayRef` in a payload tree with its array.

    Walks tuples, lists, and dict values; anything else passes through
    untouched.  Both the serial path and the worker shell run payloads
    through this, so refs behave identically in-process and out.
    """
    if isinstance(obj, ArrayRef):
        return resolve_ref(obj)
    if isinstance(obj, tuple):
        return tuple(resolve_refs(item) for item in obj)
    if isinstance(obj, list):
        return [resolve_refs(item) for item in obj]
    if isinstance(obj, dict):
        return {key: resolve_refs(value) for key, value in obj.items()}
    return obj
