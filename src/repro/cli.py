"""Command-line interface for the workload-prediction pipeline.

Five subcommands mirror the pipeline stages:

- ``repro simulate`` — run (simulated) experiments and save them to a
  repository file;
- ``repro corpus`` — build one of the paper's standard corpora (grid
  execution with ``--jobs`` workers and an optional on-disk cache);
  ``--verify``/``--repair`` sweep that cache for corrupt or orphaned
  entries instead of building;
- ``repro select`` — rank telemetry features on a repository;
- ``repro similarity`` — 1-NN / mAP / NDCG of a representation+measure
  combination on a repository;
- ``repro predict`` — end-to-end scaling prediction from a reference
  repository and a target repository;
- ``repro synth`` — synthesize workload specs, either sampled from the
  seeded spec space (``--count``) or fitted to an exported telemetry
  corpus entry (``--template``/``--workload``); ``--verify`` simulates
  each spec and checks every property target within tolerance (see
  ``docs/synthesis.md``);
- ``repro serve`` — long-running HTTP/JSON prediction service over a
  reference corpus: ``POST /v1/rank`` and ``POST /v1/predict`` answer
  from a digest-keyed response cache, the persisted distance/fit
  caches, or a persistent worker pool; ``{"mode": "async"}`` turns a
  request into a journal-backed job (``GET /v1/jobs/<id>``); SIGTERM
  drains gracefully (see ``docs/serving.md``).

Every subcommand reads/writes the repository formats of
:class:`repro.workloads.repository.ExperimentRepository`: JSON, or the
compact ``.npz`` archive when the path ends in ``.npz``.

Experiment-producing subcommands accept ``--jobs N`` (parallel grid
execution over N worker processes; results are bit-identical to serial),
``--cache-dir PATH`` (content-addressed result cache, also settable via
the ``REPRO_CACHE_DIR`` environment variable), and ``--no-cache``.
Analysis subcommands (``similarity``, ``cluster``, ``predict``) accept
``--jobs N`` (parallel pairwise-distance computation, bit-identical to
serial) and ``--distance-cache PATH`` (content-addressed distance cache,
also settable via ``REPRO_DISTANCE_CACHE``).  ``select`` and ``predict``
additionally accept ``--fit-cache PATH`` (content-addressed model-fit
cache, also settable via ``REPRO_FIT_CACHE``): a warm re-run of wrapper
feature selection or strategy evaluation performs zero model fits, and
``select --jobs N`` fans SFS candidate subsets over N workers with
bit-identical output.

Observability flags are accepted by every pipeline subcommand:
``--log-level`` routes the library's structured logs to stderr,
``--trace-out`` records a Chrome ``trace_event`` file of the run (open
it in ``chrome://tracing`` or Perfetto), ``--metrics-out`` writes the
metric snapshot of the invocation as JSON, and ``--ledger`` (or
``$REPRO_LEDGER``) appends one row per invocation to the persistent run
ledger.  Actual results stay on stdout.

The ``repro obs`` subcommand reads those artifacts back: ``obs report``
(per-stage wall/CPU, critical path, cache hit rates), ``obs ledger``
(run history), ``obs diff`` (newest run vs its rolling baseline), and
``obs check-bench`` (``BENCH_*.json`` regression gate).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.core import PipelineConfig, WorkloadPredictionPipeline
from repro.exceptions import ReproError, ValidationError
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    configure_logging,
    get_logger,
    get_metrics,
    set_metrics,
    set_tracer,
)
from repro.workloads import (
    SKU,
    ExperimentRepository,
    run_experiments,
    workload_by_name,
)
from repro.workloads.catalog import WORKLOAD_NAMES
from repro.workloads.features import ALL_FEATURES

logger = get_logger(__name__)


class _UsageError(ReproError):
    """A bad invocation: unknown name, missing input file, bad flags.

    Exit codes follow one convention across every subcommand: ``0`` for
    success, ``1`` for a domain failure (the command ran and the result
    is bad — a regression detected, a corrupt cache, a failed
    verification), ``2`` for a usage error (the command could not
    meaningfully start).  ``argparse`` exits with 2 on its own for
    malformed flags; this exception routes semantic usage errors —
    unknown measure names, missing input files — to the same code.
    """


def _load_repository(path: str | Path) -> ExperimentRepository:
    """Load a repository, dispatching on the file extension."""
    if not Path(path).exists():
        raise _UsageError(f"no such repository file: {path}")
    if str(path).endswith(".npz"):
        return ExperimentRepository.load_npz(path)
    return ExperimentRepository.load(path)


def _save_repository(repository: ExperimentRepository, path: str | Path) -> None:
    if str(path).endswith(".npz"):
        repository.save_npz(path)
    else:
        repository.save(path)


def _resolve_cache_dir(args) -> str | None:
    """The cache directory to use, honoring ``--no-cache`` and the env."""
    if args.no_cache:
        return None
    return args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None


def _resolve_distance_cache(args) -> str | None:
    """The pairwise-distance cache directory (flag, then env)."""
    return (
        args.distance_cache
        or os.environ.get("REPRO_DISTANCE_CACHE")
        or None
    )


def _resolve_fit_cache(args) -> str | None:
    """The model-fit cache directory (flag, then env)."""
    return args.fit_cache or os.environ.get("REPRO_FIT_CACHE") or None


def _resolve_ledger(args) -> str | None:
    """The run-ledger path (flag, then ``$REPRO_LEDGER``)."""
    return (
        getattr(args, "ledger", None)
        or os.environ.get("REPRO_LEDGER")
        or None
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Database workload prediction pipeline (EDBT 2025 repro)",
    )
    obs = argparse.ArgumentParser(add_help=False)
    group = obs.add_argument_group("observability")
    group.add_argument(
        "--log-level", default="WARNING",
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="stderr log verbosity for the repro logger hierarchy",
    )
    group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON of this invocation",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the invocation's metrics snapshot as JSON",
    )
    group.add_argument(
        "--metrics-format", default="json", choices=("json", "prometheus"),
        help="serialization for --metrics-out",
    )
    group.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append one row describing this invocation to the run "
        "ledger (a .jsonl file or a directory; default: $REPRO_LEDGER "
        "if set); inspect it with 'repro obs'",
    )
    grid = argparse.ArgumentParser(add_help=False)
    grid_group = grid.add_argument_group("grid execution")
    grid_group.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for grid execution (0 = one per CPU; "
        "results are bit-identical to serial)",
    )
    grid_group.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed experiment cache directory "
        "(default: $REPRO_CACHE_DIR if set)",
    )
    grid_group.add_argument(
        "--no-cache", action="store_true",
        help="disable the experiment cache even if a directory is configured",
    )
    analysis = argparse.ArgumentParser(add_help=False)
    analysis_group = analysis.add_argument_group("analysis execution")
    analysis_group.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for pairwise-distance computation "
        "(0 = one per CPU; results are bit-identical to serial)",
    )
    analysis_group.add_argument(
        "--distance-cache", default=None, metavar="PATH",
        help="content-addressed pairwise-distance cache directory "
        "(default: $REPRO_DISTANCE_CACHE if set)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="run experiments and save a repository",
        parents=[obs, grid],
    )
    simulate.add_argument(
        "--workload", required=True, choices=WORKLOAD_NAMES
    )
    simulate.add_argument("--cpus", type=int, default=8)
    simulate.add_argument("--memory-gb", type=float, default=32.0)
    simulate.add_argument("--terminals", type=int, default=8)
    simulate.add_argument("--runs", type=int, default=3)
    simulate.add_argument("--duration-s", type=float, default=3600.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--out", required=True, help="output path (.json or .npz)"
    )
    simulate.add_argument(
        "--append", action="store_true",
        help="append to an existing repository file",
    )

    corpus = sub.add_parser(
        "corpus", help="build one of the paper's standard corpora",
        parents=[obs, grid],
    )
    corpus.add_argument(
        "--kind", default="scaling",
        choices=("paper", "scaling", "production"),
        help="which standard corpus to build (Sections 4/5, 6, or 5.2.3)",
    )
    corpus.add_argument("--cpus", type=int, default=16,
                        help="SKU size for --kind paper")
    corpus.add_argument("--runs", type=int, default=3)
    corpus.add_argument("--duration-s", type=float, default=3600.0)
    corpus.add_argument("--sample-interval-s", type=float, default=10.0)
    corpus.add_argument(
        "--seed", type=int, default=None,
        help="corpus random_state (default: the paper's per-corpus seed)",
    )
    corpus.add_argument(
        "--out", default=None, help="output path (.json or .npz)"
    )
    corpus.add_argument(
        "--manifest-out", default=None, metavar="PATH",
        help="write the build's RunManifest (provenance) as JSON",
    )
    corpus.add_argument(
        "--verify", action="store_true",
        help="verify the integrity of the experiment cache instead of "
        "building (exit 1 if corrupt or orphaned entries are found)",
    )
    corpus.add_argument(
        "--repair", action="store_true",
        help="like --verify, but delete damaged entries so the next "
        "build recomputes them",
    )

    select = sub.add_parser(
        "select", help="rank features on a repository", parents=[obs]
    )
    select.add_argument("--corpus", required=True)
    select.add_argument("--strategy", default="RFE LogReg")
    select.add_argument("--top-k", type=int, default=7)
    select.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for wrapper-selection candidate fits "
        "(0 = one per CPU; results are bit-identical to serial)",
    )
    select.add_argument(
        "--fit-cache", default=None, metavar="PATH",
        help="content-addressed model-fit cache directory "
        "(default: $REPRO_FIT_CACHE if set)",
    )

    similarity = sub.add_parser(
        "similarity", help="evaluate a similarity method on a repository",
        parents=[obs, analysis],
    )
    similarity.add_argument("--corpus", required=True)
    similarity.add_argument(
        "--representation", default="hist", choices=("hist", "phase", "mts")
    )
    similarity.add_argument("--measure", default="L2,1")
    similarity.add_argument(
        "--features", default=None,
        help="comma-separated feature names (default: all 29)",
    )

    predict = sub.add_parser(
        "predict", help="end-to-end scaling prediction",
        parents=[obs, analysis],
    )
    predict.add_argument(
        "--manifest-out", default=None, metavar="PATH",
        help="write the prediction's RunManifest (provenance) as JSON",
    )
    predict.add_argument("--references", required=True)
    predict.add_argument("--target", required=True)
    predict.add_argument("--source-cpus", type=int, required=True)
    predict.add_argument("--target-cpus", type=int, required=True)
    predict.add_argument("--memory-gb", type=float, default=32.0)
    predict.add_argument("--strategy", default="SVM")
    predict.add_argument(
        "--context", default="pairwise", choices=("pairwise", "single")
    )
    predict.add_argument("--top-k", type=int, default=7)
    predict.add_argument(
        "--fit-cache", default=None, metavar="PATH",
        help="content-addressed model-fit cache directory "
        "(default: $REPRO_FIT_CACHE if set)",
    )

    cluster = sub.add_parser(
        "cluster", help="group a repository's experiments by similarity",
        parents=[obs, analysis],
    )
    cluster.add_argument("--corpus", required=True)
    cluster.add_argument("--clusters", type=int, default=3)
    cluster.add_argument(
        "--method", default="agglomerative",
        choices=("agglomerative", "kmedoids"),
    )
    cluster.add_argument("--measure", default="L2,1")

    synth = sub.add_parser(
        "synth",
        help="synthesize workload specs (spec-space sampling or "
        "trace fitting) with property-matching verification",
        parents=[obs, grid],
    )
    mode = synth.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="sample N specs from the seeded spec space",
    )
    mode.add_argument(
        "--template", default=None, metavar="PATH",
        help="repository file to clone a workload from (trace fitting)",
    )
    synth.add_argument(
        "--workload", default=None,
        help="template workload name (required when the --template "
        "repository holds several workloads)",
    )
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument(
        "--name", default=None,
        help="name for the synthesized clone (default: <template>-clone)",
    )
    synth.add_argument("--cpus", type=int, default=16,
                       help="verification SKU (sampler mode)")
    synth.add_argument("--memory-gb", type=float, default=32.0)
    synth.add_argument("--terminals", type=int, default=8)
    synth.add_argument("--duration-s", type=float, default=600.0)
    synth.add_argument("--sample-interval-s", type=float, default=10.0)
    synth.add_argument(
        "--max-refine-iters", type=int, default=8,
        help="refinement-loop iteration budget (trace fitting)",
    )
    synth.add_argument(
        "--verify", action="store_true",
        help="simulate each synthesized spec and check every property "
        "target within tolerance (exit 1 on any failure)",
    )
    synth.add_argument("--verify-runs", type=int, default=2)
    synth.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the synthesized specs as JSON",
    )
    synth.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write the verification reports as JSON",
    )
    synth.add_argument(
        "--simulate-out", default=None, metavar="PATH",
        help="run the synthesized specs through the engine and save the "
        "resulting repository (.json or .npz); honors --jobs/--cache-dir",
    )
    synth.add_argument(
        "--simulate-runs", type=int, default=3,
        help="repetitions per spec for --simulate-out",
    )

    serve = sub.add_parser(
        "serve",
        help="serve rank/predict requests over HTTP from a warm, "
        "cached pipeline (see docs/serving.md)",
        parents=[obs, analysis],
    )
    serve.add_argument(
        "--references", required=True,
        help="reference corpus repository (.json or .npz), loaded once "
        "at boot; its digest is part of every response-cache key",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="listen port (0 picks a free port, printed at boot)",
    )
    serve.add_argument(
        "--fit-cache", default=None, metavar="PATH",
        help="content-addressed model-fit cache directory "
        "(default: $REPRO_FIT_CACHE if set)",
    )
    serve.add_argument(
        "--state-dir", default=None, metavar="PATH",
        help="directory for the async job journal; jobs submitted "
        "before a crash are resumed from here on restart",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1, metavar="N",
        help="threads draining the async job queue",
    )
    serve.add_argument(
        "--response-cache-size", type=int, default=1024, metavar="N",
        help="max entries in the in-process response cache",
    )
    serve.add_argument(
        "--response-cache-bytes", type=int, default=None, metavar="BYTES",
        help="max approximate bytes retained by the response cache "
        "(default: unbounded; entry count still applies)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=4.0, metavar="MS",
        help="cold-path admission window: concurrent distinct requests "
        "arriving within this window execute as one batch",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="max cold requests per batch (1 serializes, reproducing "
        "the pre-batching behavior)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="seconds to wait for queued jobs on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--subexperiments", type=int, default=10, metavar="N",
        help="systematic sub-experiments per run (the paper's 10)",
    )
    serve.add_argument("--strategy", default="SVM")
    serve.add_argument(
        "--context", default="pairwise", choices=("pairwise", "single")
    )
    serve.add_argument("--top-k", type=int, default=7)
    serve.add_argument(
        "--representation", default="hist", choices=("hist", "phase", "mts")
    )
    serve.add_argument("--measure", default="L2,1")
    serve.add_argument("--seed", type=int, default=0)

    # "obs" reads observability artifacts back; it deliberately does NOT
    # inherit the obs parent parser (its sub-subcommands define their own
    # --ledger, and an obs run should never append to the ledger).
    obs_cmd = sub.add_parser(
        "obs",
        help="cross-run observability: profile reports, run ledger, "
        "regression checks",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    report = obs_sub.add_parser(
        "report",
        help="profile one run: per-stage wall/CPU, critical path, "
        "cache hit rates",
    )
    report.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="run ledger to read (default: $REPRO_LEDGER if set)",
    )
    report.add_argument(
        "--run", type=int, default=-1, metavar="INDEX",
        help="ledger row to profile (Python indexing; default: newest)",
    )
    report.add_argument(
        "--trace", default=None, metavar="PATH",
        help="profile a --trace-out Chrome trace file instead of a "
        "ledger row",
    )
    report.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many self-time entries to show",
    )
    report.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    ledger_cmd = obs_sub.add_parser(
        "ledger", help="list recorded runs, oldest first"
    )
    ledger_cmd.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="run ledger to read (default: $REPRO_LEDGER if set)",
    )
    ledger_cmd.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show at most the newest N runs",
    )
    ledger_cmd.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    diff = obs_sub.add_parser(
        "diff",
        help="compare the newest run against its rolling baseline "
        "(same command and options); exit 1 on regression",
    )
    diff.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="run ledger to read (default: $REPRO_LEDGER if set)",
    )
    diff.add_argument(
        "--tolerance", type=float, default=0.25, metavar="REL",
        help="relative tolerance band around the baseline mean",
    )
    diff.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="how many earlier comparable runs form the baseline",
    )
    diff.add_argument(
        "--min-baseline", type=int, default=1, metavar="N",
        help="skip leaves with fewer baseline values than this",
    )
    diff.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    check = obs_sub.add_parser(
        "check-bench",
        help="compare BENCH_*.json files against baselines; "
        "exit 1 on regression",
    )
    check.add_argument(
        "current", nargs="+",
        help="current benchmark JSON file(s) to check",
    )
    check.add_argument(
        "--baseline", action="append", default=[], metavar="PATH",
        help="baseline file, or directory holding files with the same "
        "names as the current ones (repeatable)",
    )
    check.add_argument(
        "--tolerance", type=float, default=0.25, metavar="REL",
        help="relative tolerance band around the baseline mean",
    )
    check.add_argument(
        "--abs-floor", type=float, default=0.02, metavar="ABS",
        help="absolute slack added to every tolerance band",
    )
    check.add_argument(
        "--min-baseline", type=int, default=1, metavar="N",
        help="skip leaves with fewer baseline values than this",
    )
    check.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parser


def _cmd_simulate(args) -> int:
    workload = workload_by_name(args.workload)
    sku = SKU(cpus=args.cpus, memory_gb=args.memory_gb)
    if args.append:
        repository = _load_repository(args.out)
    else:
        repository = ExperimentRepository()
    built = run_experiments(
        [workload],
        [sku],
        terminals_for=lambda w: (args.terminals,),
        n_runs=args.runs,
        duration_s=args.duration_s,
        random_state=args.seed,
        jobs=args.jobs,
        cache=_resolve_cache_dir(args),
    )
    for result in built:
        repository.add(result)
        print(
            f"{result.experiment_id}: {result.throughput:.1f} txn/s, "
            f"latency {result.latency_ms:.2f} ms, "
            f"bottleneck {result.bottleneck}"
        )
    _save_repository(repository, args.out)
    logger.info("saved %d experiments to %s", len(repository), args.out)
    return 0


#: The paper's per-corpus default seeds (kept in sync with
#: :mod:`repro.workloads.corpus`).
_CORPUS_SEEDS = {"paper": 0, "scaling": 7, "production": 11}


def _cmd_corpus_verify(args, cache_dir) -> int:
    from repro.workloads import CorpusCache

    if cache_dir is None:
        print(
            "error: --verify/--repair needs a cache directory "
            "(--cache-dir or $REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 2
    outcome = CorpusCache(cache_dir).verify(repair=args.repair)
    print(
        f"cache {cache_dir}: {outcome.n_ok}/{outcome.n_entries} entries ok, "
        f"{len(outcome.corrupt)} corrupt, {len(outcome.orphaned)} orphaned"
        f"{' (repaired)' if args.repair and not outcome.clean else ''}"
    )
    for key in outcome.corrupt:
        print(f"  corrupt : {key}")
    for path in outcome.orphaned:
        print(f"  orphaned: {path}")
    if outcome.clean or args.repair:
        return 0
    return 1


def _cmd_corpus(args) -> int:
    from repro.workloads import paper_corpus, production_corpus, scaling_corpus

    seed = _CORPUS_SEEDS[args.kind] if args.seed is None else args.seed
    cache_dir = _resolve_cache_dir(args)
    if args.verify or args.repair:
        return _cmd_corpus_verify(args, cache_dir)
    if not args.out:
        print("error: --out is required when building a corpus",
              file=sys.stderr)
        return 2
    common = dict(
        n_runs=args.runs,
        duration_s=args.duration_s,
        sample_interval_s=args.sample_interval_s,
        random_state=seed,
        jobs=args.jobs,
        cache=cache_dir,
    )
    start = time.perf_counter()
    if args.kind == "paper":
        repository = paper_corpus(cpus=args.cpus, **common)
    elif args.kind == "scaling":
        repository = scaling_corpus(**common)
    else:
        repository = production_corpus(**common)
    elapsed = time.perf_counter() - start
    _save_repository(repository, args.out)
    metrics = get_metrics()
    workers = int(metrics.gauge("gridexec.workers").value)
    hits = int(metrics.counter("corpus_cache.hits_total").value)
    misses = int(metrics.counter("corpus_cache.misses_total").value)
    retried = int(metrics.counter("gridexec.retries_total").value)
    quarantined = int(metrics.counter("gridexec.quarantined_total").value)
    resumed = int(metrics.counter("gridexec.resumed_total").value)
    print(
        f"{args.kind} corpus: {len(repository)} experiments in "
        f"{elapsed:.1f}s ({workers} worker{'s' if workers != 1 else ''}, "
        f"{hits} cache hits, {misses} misses, {resumed} resumed)"
    )
    if quarantined:
        print(
            f"warning: {quarantined} task(s) quarantined after retries; "
            "the corpus is incomplete (see the log for task ids)",
            file=sys.stderr,
        )
    if args.manifest_out:
        manifest = RunManifest(
            pipeline_config={},
            selected_features=(),
            similarity_ranking={},
            reference_workload=None,
            stage_timings_s={"corpus": elapsed},
            metrics=metrics.snapshot(),
            random_seed=seed,
            extra={
                "command": "corpus",
                "kind": args.kind,
                "n_experiments": len(repository),
                "grid": {
                    "workers": workers,
                    "jobs_requested": args.jobs,
                    "cache_dir": cache_dir and str(cache_dir),
                    "cache_hits": hits,
                    "cache_misses": misses,
                    "retried": retried,
                    "quarantined": quarantined,
                    "resumed": resumed,
                },
            },
        )
        manifest.save(args.manifest_out)
        logger.info("wrote run manifest to %s", args.manifest_out)
    return 0


def _cmd_select(args) -> int:
    from repro.features import strategy_registry

    corpus = _load_repository(args.corpus)
    registry = strategy_registry()
    if args.strategy not in registry:
        print(
            f"error: unknown strategy {args.strategy!r}; known: "
            + ", ".join(sorted(registry)),
            file=sys.stderr,
        )
        return 2
    selector = registry[args.strategy]()
    # Wrapper selectors ride the evaluation fast path; other strategies
    # have no such knobs.
    if hasattr(selector, "jobs"):
        selector.jobs = args.jobs
    if hasattr(selector, "fit_cache"):
        selector.fit_cache = _resolve_fit_cache(args)
    selector.fit(corpus.feature_matrix(), corpus.labels())
    print(f"top-{args.top_k} features by {args.strategy}:")
    for rank, index in enumerate(selector.top_k(args.top_k), start=1):
        print(f"  {rank:2d}. {ALL_FEATURES[index]}")
    return 0


def _cmd_similarity(args) -> int:
    from repro.similarity import RepresentationBuilder, evaluate_measure
    from repro.similarity.measures import get_measure

    try:
        measure = get_measure(args.measure)
    except ValidationError as exc:
        raise _UsageError(str(exc)) from exc
    corpus = _load_repository(args.corpus)
    features = (
        tuple(name.strip() for name in args.features.split(","))
        if args.features
        else None
    )
    builder = RepresentationBuilder().fit(corpus)
    outcome = evaluate_measure(
        corpus,
        builder,
        args.representation,
        measure,
        features=features,
        jobs=args.jobs,
        cache=_resolve_distance_cache(args),
    )
    print(f"representation : {outcome.representation}")
    print(f"measure        : {outcome.measure}")
    print(f"features       : {outcome.n_features}")
    print(f"1-NN accuracy  : {outcome.knn_accuracy:.3f}")
    print(f"mAP            : {outcome.mean_average_precision:.3f}")
    print(f"NDCG           : {outcome.ndcg:.3f}")
    return 0


def _cmd_predict(args) -> int:
    references = _load_repository(args.references)
    target = _load_repository(args.target)
    source = SKU(cpus=args.source_cpus, memory_gb=args.memory_gb)
    target_sku = SKU(cpus=args.target_cpus, memory_gb=args.memory_gb)
    config = PipelineConfig(
        scaling_strategy=args.strategy,
        scaling_context=args.context,
        top_k=args.top_k,
        jobs=args.jobs,
        distance_cache=_resolve_distance_cache(args),
        fit_cache=_resolve_fit_cache(args),
    )
    pipeline = WorkloadPredictionPipeline(config)
    report = pipeline.predict_scaling(references, target, source, target_sku)
    print(report.summary())
    if args.manifest_out and report.manifest is not None:
        report.manifest.save(args.manifest_out)
        logger.info("wrote run manifest to %s", args.manifest_out)
    return 0


def _cmd_cluster(args) -> int:
    from repro.reporting import format_table
    from repro.similarity import (
        RepresentationBuilder,
        cluster_purity,
        cluster_workloads,
        distance_matrix,
    )
    from repro.similarity.evaluation import representation_matrices
    from repro.similarity.measures import get_measure

    try:
        measure = get_measure(args.measure)
    except ValidationError as exc:
        raise _UsageError(str(exc)) from exc
    corpus = _load_repository(args.corpus)
    builder = RepresentationBuilder().fit(corpus)
    matrices = representation_matrices(corpus, builder, "hist")
    D = distance_matrix(
        matrices, measure,
        jobs=args.jobs, cache=_resolve_distance_cache(args),
    )
    result = cluster_workloads(
        D, n_clusters=args.clusters, method=args.method
    )
    groups = result.groups([r.experiment_id for r in corpus])
    rows = []
    for cluster_id, members in sorted(groups.items()):
        workloads = sorted(
            {member.split("@", 1)[0] for member in members}
        )
        rows.append([cluster_id, len(members), ", ".join(workloads)])
    print(format_table(["cluster", "size", "workloads"], rows))
    purity = cluster_purity(result.labels, corpus.labels())
    print(f"purity vs workload labels: {purity:.3f}")
    return 0


def _cmd_synth(args) -> int:
    from repro.workloads import run_experiments
    from repro.workloads.synth import (
        RefineSettings,
        SynthesisContext,
        calibration_targets,
        sample_specs,
        synthesize_clone,
        verify_synthesis,
    )

    cache_dir = _resolve_cache_dir(args)
    specs = []
    reports = []
    if args.count is not None:
        if args.count < 1:
            print("error: --count must be >= 1", file=sys.stderr)
            return 2
        context = SynthesisContext(
            sku=SKU(cpus=args.cpus, memory_gb=args.memory_gb),
            terminals=args.terminals,
            duration_s=args.duration_s,
            sample_interval_s=args.sample_interval_s,
        )
        specs = sample_specs(args.count, seed=args.seed)
        print(
            f"sampled {len(specs)} spec(s) from the spec space "
            f"(seed {args.seed})"
        )
        if args.verify:
            for spec in specs:
                targets = calibration_targets(
                    spec, context=context, seed=args.seed,
                    jobs=args.jobs, cache=cache_dir,
                )
                report = verify_synthesis(
                    spec, targets, context=context, seed=args.seed,
                    n_runs=args.verify_runs, jobs=args.jobs, cache=cache_dir,
                )
                reports.append(report)
                print(report.render())
    else:
        repository = _load_repository(args.template)
        names = sorted({r.workload_name for r in repository})
        if args.workload is None and len(names) > 1:
            print(
                f"error: --template holds several workloads "
                f"({', '.join(names)}); pick one with --workload",
                file=sys.stderr,
            )
            return 2
        workload = args.workload or names[0]
        template = [
            r for r in repository if r.workload_name == workload
        ]
        if not template:
            print(
                f"error: no experiments for workload {workload!r} in "
                f"{args.template} (have: {', '.join(names)})",
                file=sys.stderr,
            )
            return 2
        context = SynthesisContext.from_result(template[0])
        result = synthesize_clone(
            template,
            name=args.name,
            context=context,
            seed=args.seed,
            settings=RefineSettings(max_iters=args.max_refine_iters),
            verify=args.verify,
            verify_runs=args.verify_runs,
            jobs=args.jobs,
            cache=cache_dir,
        )
        specs = [result.spec]
        print(
            f"synthesized {result.spec.name!r} from {len(template)} "
            f"{workload!r} run(s): {result.refine_iterations} refinement "
            f"iteration(s), residual {result.residual:.2f}x tolerance"
        )
        if result.report is not None:
            reports.append(result.report)
            print(result.report.render())
    if args.out:
        Path(args.out).write_text(
            json.dumps({"specs": [s.to_dict() for s in specs]}, indent=2)
        )
        logger.info("wrote %d spec(s) to %s", len(specs), args.out)
    if args.report_out:
        Path(args.report_out).write_text(
            json.dumps([r.to_dict() for r in reports], indent=2)
        )
    if args.simulate_out:
        built = run_experiments(
            specs,
            [context.sku],
            terminals_for=lambda w: (context.terminals,),
            n_runs=args.simulate_runs,
            duration_s=context.duration_s,
            sample_interval_s=context.sample_interval_s,
            random_state=args.seed,
            jobs=args.jobs,
            cache=cache_dir,
        )
        _save_repository(built, args.simulate_out)
        print(
            f"simulated {len(built)} experiment(s) from "
            f"{len(specs)} synthesized spec(s) -> {args.simulate_out}"
        )
    if args.verify and any(not report.passed for report in reports):
        return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.exec.arrays import ArrayStore, set_ambient_store
    from repro.exec.engine import PersistentPool, set_persistent_pool
    from repro.serve.app import ServeApp
    from repro.serve.protocol import file_digest
    from repro.serve.server import make_server, serve_until_shutdown
    from repro.serve.service import PredictionService
    from repro.utils.parallel import resolve_jobs

    references_path = Path(args.references)
    if not references_path.exists():
        raise _UsageError(f"no such repository file: {args.references}")
    references = _load_repository(references_path)
    config = PipelineConfig(
        scaling_strategy=args.strategy,
        scaling_context=args.context,
        top_k=args.top_k,
        representation=args.representation,
        measure=args.measure,
        random_state=args.seed,
        jobs=args.jobs,
        distance_cache=_resolve_distance_cache(args),
        fit_cache=_resolve_fit_cache(args),
    )
    # The server's process-wide performance state: a persistent worker
    # pool (no per-request pool spin-up) and an ambient shared-memory
    # store the warmup pins the reference matrices into.
    n_workers = resolve_jobs(args.jobs)
    pool = PersistentPool(n_workers) if n_workers > 1 else None
    previous_pool = set_persistent_pool(pool) if pool is not None else None
    store = ArrayStore()
    previous_store = set_ambient_store(store)
    try:
        service = PredictionService(
            references, config, n_subexperiments=args.subexperiments
        )
        summary = service.warmup()
        app = ServeApp(
            service,
            references_digest=file_digest(references_path),
            response_cache_size=args.response_cache_size,
            response_cache_bytes=args.response_cache_bytes,
            state_dir=args.state_dir,
            job_workers=args.job_workers,
            ledger=_resolve_ledger(args),
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
        )
        recovered = app.recover_jobs()
        server = make_server(app, host=args.host, port=args.port)
        print(
            f"serving {len(references)} reference experiment(s) "
            f"({', '.join(summary['workloads'])}) on "
            f"http://{args.host}:{server.port}"
            + (f"; resumed {recovered} job(s)" if recovered else ""),
            flush=True,
        )
        drained = serve_until_shutdown(
            server, drain_timeout=args.drain_timeout
        )
        return 0 if drained else 1
    finally:
        set_ambient_store(previous_store)
        store.close()
        if pool is not None:
            set_persistent_pool(previous_pool)
            pool.close()


def _require_obs_ledger(args) -> str | None:
    path = _resolve_ledger(args)
    if path is None:
        print(
            "error: no ledger given (--ledger or $REPRO_LEDGER)",
            file=sys.stderr,
        )
    return path


def _cmd_obs_report(args) -> int:
    from repro.obs import ProfileReport, RunLedger, tree_from_chrome

    if args.trace:
        try:
            chrome = json.loads(Path(args.trace).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"error: cannot read trace {args.trace}: {exc}",
                file=sys.stderr,
            )
            return 2
        report = ProfileReport.from_tree(
            tree_from_chrome(chrome), top=args.top
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0
    path = _require_obs_ledger(args)
    if path is None:
        return 2
    rows = RunLedger(path).rows()
    if not rows:
        print(f"error: ledger {path} has no rows", file=sys.stderr)
        return 2
    try:
        row = rows[args.run]
    except IndexError:
        print(
            f"error: ledger has {len(rows)} row(s); "
            f"--run {args.run} is out of range",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(row, indent=2))
        return 0
    when = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(row.get("ts_unix", 0))
    )
    print(f"run     : {row.get('command')}  ({' '.join(row.get('argv', []))})")
    print(f"when    : {when}")
    print(
        f"exit    : {row.get('exit_code')}   "
        f"wall {row.get('elapsed_s', 0.0):.3f} s   "
        f"cpu {row.get('cpu_s', 0.0):.3f} s"
    )
    for family, entry in sorted(row.get("caches", {}).items()):
        print(
            f"cache   : {family}  hit rate {entry['hit_rate'] * 100:.1f}%"
            f"  ({int(entry['hits'])} hits / {int(entry['misses'])} misses"
            f", {int(entry['corrupt'])} corrupt)"
        )
    profile = row.get("profile")
    if profile:
        report = ProfileReport.from_dict(profile)
    else:
        report = ProfileReport(
            total_wall_s=row.get("elapsed_s", 0.0),
            total_cpu_s=row.get("cpu_s", 0.0),
            stages=row.get("stages", {}),
        )
    print()
    print(report.render())
    return 0


def _cmd_obs_ledger(args) -> int:
    from repro.obs import RunLedger

    path = _require_obs_ledger(args)
    if path is None:
        return 2
    rows = RunLedger(path).rows()
    shown = rows[-args.limit:] if args.limit > 0 else rows
    if args.json:
        print(json.dumps(shown, indent=2))
        return 0
    print(f"ledger {path}: {len(rows)} run(s)")
    first = len(rows) - len(shown)
    for index, row in enumerate(shown, start=first):
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(row.get("ts_unix", 0))
        )
        caches = row.get("caches", {})
        cache_note = "  ".join(
            f"{family} {entry['hit_rate'] * 100:.0f}%"
            for family, entry in sorted(caches.items())
        )
        print(
            f"  [{index}] {when}  {row.get('command', '?'):<10} "
            f"exit {row.get('exit_code', '?')}  "
            f"wall {row.get('elapsed_s', 0.0):8.3f} s"
            + (f"  {cache_note}" if cache_note else "")
        )
    return 0


def _cmd_obs_diff(args) -> int:
    from repro.obs import RunLedger, diff_rows

    path = _require_obs_ledger(args)
    if path is None:
        return 2
    rows = RunLedger(path).rows()
    if not rows:
        print(f"error: ledger {path} has no rows", file=sys.stderr)
        return 2
    verdict = diff_rows(
        rows[-1],
        rows[:-1],
        rel_tol=args.tolerance,
        window=args.window,
        min_baseline=args.min_baseline,
    )
    if args.json:
        print(json.dumps(verdict.to_dict(), indent=2))
    else:
        print(verdict.render())
        if verdict.compared == 0:
            print(
                "  (no comparable earlier runs: a baseline needs the "
                "same command and options)"
            )
    return 0 if verdict.ok else 1


def _load_bench_doc(path: Path) -> dict | None:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(doc, dict):
        print(f"error: {path} is not a JSON object", file=sys.stderr)
        return None
    return doc


def _cmd_obs_check_bench(args) -> int:
    from repro.obs import check_bench

    if not args.baseline:
        print(
            "error: at least one --baseline file or directory is required",
            file=sys.stderr,
        )
        return 2
    verdicts: dict[str, object] = {}
    ok = True
    for current_path in args.current:
        current = _load_bench_doc(Path(current_path))
        if current is None:
            return 2
        baselines = []
        for base in args.baseline:
            base = Path(base)
            if base.is_dir():
                candidate = base / Path(current_path).name
                if candidate.exists():
                    doc = _load_bench_doc(candidate)
                    if doc is None:
                        return 2
                    baselines.append(doc)
            elif base.name == Path(current_path).name or len(args.current) == 1:
                doc = _load_bench_doc(base)
                if doc is None:
                    return 2
                baselines.append(doc)
        if not baselines:
            print(
                f"error: no baseline found for {current_path}",
                file=sys.stderr,
            )
            return 2
        verdict = check_bench(
            current,
            baselines,
            rel_tol=args.tolerance,
            abs_floor=args.abs_floor,
            min_baseline=args.min_baseline,
        )
        verdicts[current_path] = verdict
        ok = ok and verdict.ok
    if args.json:
        print(
            json.dumps(
                {path: v.to_dict() for path, v in verdicts.items()},
                indent=2,
            )
        )
    else:
        for path, verdict in verdicts.items():
            print(f"{path}:")
            for line in verdict.render().splitlines():
                print(f"  {line}")
    return 0 if ok else 1


def _cmd_obs(args) -> int:
    handlers = {
        "report": _cmd_obs_report,
        "ledger": _cmd_obs_ledger,
        "diff": _cmd_obs_diff,
        "check-bench": _cmd_obs_check_bench,
    }
    return handlers[args.obs_command](args)


_COMMANDS = {
    "simulate": _cmd_simulate,
    "corpus": _cmd_corpus,
    "select": _cmd_select,
    "similarity": _cmd_similarity,
    "predict": _cmd_predict,
    "cluster": _cmd_cluster,
    "synth": _cmd_synth,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
}


#: argparse attributes that do not affect what a run computes; excluded
#: from the ledger's ``config_fingerprint`` so observability flags never
#: split the baseline history.
_LEDGER_VOLATILE_OPTIONS = frozenset(
    {"command", "log_level", "trace_out", "metrics_out", "metrics_format",
     "ledger"}
)


def _append_ledger(
    ledger_path: str,
    args,
    argv: list[str],
    code: int,
    elapsed_s: float,
    cpu_s: float,
    tracer: Tracer,
) -> None:
    """Record this invocation as one row of the persistent run ledger."""
    from repro.obs import ProfileReport, RunLedger, build_row

    options = {
        key: value
        for key, value in vars(args).items()
        if key not in _LEDGER_VOLATILE_OPTIONS
    }
    tree = tracer.to_tree()
    manifest_digest = None
    manifest_out = getattr(args, "manifest_out", None)
    if manifest_out:
        try:
            manifest_digest = hashlib.sha256(
                Path(manifest_out).read_bytes()
            ).hexdigest()
        except OSError:
            pass
    row = build_row(
        command=args.command,
        argv=argv,
        options=options,
        exit_code=code,
        elapsed_s=elapsed_s,
        cpu_s=cpu_s,
        metrics_snapshot=get_metrics().snapshot(),
        tree=tree,
        profile=ProfileReport.from_tree(tree).to_dict() if tree else None,
        manifest_digest=manifest_digest,
    )
    ledger = RunLedger(ledger_path)
    ledger.append(row)
    logger.info("appended run to ledger %s", ledger.path)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes are uniform across subcommands: ``0`` success, ``1``
    domain failure (the command ran; the outcome is bad — failed
    verification, detected regression, quarantined tasks left the
    result unusable), ``2`` usage error (unknown names, missing input
    files, malformed or missing flags — including argparse's own
    errors).

    One invocation is one observed run: a fresh metrics registry (and a
    fresh enabled tracer when ``--trace-out`` or a ledger is configured)
    is installed for the duration of the command, its exports are written
    — and the ledger row appended — on the way out, and the previous
    global instruments are restored.  ``repro obs`` itself is read-only:
    it never traces or appends.
    """
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    args = _build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "WARNING"))
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    ledger_path = _resolve_ledger(args) if args.command != "obs" else None
    tracer = Tracer(enabled=bool(trace_out) or ledger_path is not None)
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(MetricsRegistry())
    start_wall = time.perf_counter()
    start_cpu = time.process_time()
    try:
        with tracer.span(f"cli.{args.command}"):
            code = _COMMANDS[args.command](args)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 1
    finally:
        elapsed_s = time.perf_counter() - start_wall
        cpu_s = time.process_time() - start_cpu
        try:
            if trace_out:
                Path(trace_out).write_text(tracer.to_chrome_json())
                logger.info("wrote trace to %s", trace_out)
            if metrics_out:
                registry = get_metrics()
                if args.metrics_format == "prometheus":
                    Path(metrics_out).write_text(
                        registry.to_prometheus()
                    )
                else:
                    Path(metrics_out).write_text(
                        registry.to_json(indent=2)
                    )
                logger.info("wrote metrics to %s", metrics_out)
            if ledger_path is not None:
                _append_ledger(
                    ledger_path, args, raw_argv, code, elapsed_s, cpu_s,
                    tracer,
                )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            code = 1
        finally:
            set_tracer(previous_tracer)
            set_metrics(previous_metrics)
    return code


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:
        # A downstream head/pager closed stdout mid-print.  Redirect
        # stdout at the descriptor level so interpreter shutdown does
        # not raise again on flush, and exit with the conventional
        # 128 + SIGPIPE code instead of a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141
    sys.exit(code)
