"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything emitted by this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input array or parameter failed validation."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted estimator was called before ``fit``."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


class WorkloadError(ReproError):
    """A workload specification or experiment request is invalid."""


class RepositoryError(ReproError):
    """An experiment repository operation failed."""


class PipelineError(ReproError):
    """An end-to-end pipeline stage could not be executed."""


class ServeError(ReproError):
    """A prediction-service request was malformed or unservable."""
