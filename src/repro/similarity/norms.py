"""Matrix-norm distances between same-shape workload representations.

The paper deploys the L1,1, L2,1, Frobenius, Canberra, Chi-square, and
Correlation norms (Section 5.1.2).  All functions take two matrices of the
same shape — Hist-FP/Phase-FP fingerprints or aligned MTS windows — and
return a non-negative scalar distance.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _pair(A, B) -> tuple[np.ndarray, np.ndarray]:
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    if A.shape != B.shape:
        raise ValidationError(
            f"matrices must share a shape, got {A.shape} vs {B.shape}"
        )
    if A.size == 0:
        raise ValidationError("matrices must not be empty")
    if A.ndim == 1:
        A = A[:, None]
        B = B[:, None]
    return A, B


def l11_distance(A, B) -> float:
    """L1,1 norm of the difference: sum of absolute entry differences."""
    A, B = _pair(A, B)
    return float(np.sum(np.abs(A - B)))


def l21_distance(A, B) -> float:
    """L2,1 norm of the difference: sum of column-wise Euclidean norms."""
    A, B = _pair(A, B)
    return float(np.sum(np.linalg.norm(A - B, axis=0)))


def frobenius_distance(A, B) -> float:
    """Frobenius norm of the difference."""
    A, B = _pair(A, B)
    return float(np.linalg.norm(A - B))


def canberra_distance(A, B) -> float:
    """Canberra distance: sum of |a-b| / (|a|+|b|), zero-safe."""
    A, B = _pair(A, B)
    numerator = np.abs(A - B)
    denominator = np.abs(A) + np.abs(B)
    mask = denominator > 0
    return float(np.sum(numerator[mask] / denominator[mask]))


def chi2_distance(A, B) -> float:
    """Chi-square histogram distance: 0.5 * sum (a-b)^2 / (a+b).

    Intended for non-negative representations (histograms); magnitudes are
    used in the denominator so the function stays defined on raw telemetry.
    """
    A, B = _pair(A, B)
    numerator = (A - B) ** 2
    denominator = np.abs(A) + np.abs(B)
    mask = denominator > 0
    return float(0.5 * np.sum(numerator[mask] / denominator[mask]))


def correlation_distance(A, B) -> float:
    """1 - Pearson correlation of the flattened matrices (in [0, 2])."""
    A, B = _pair(A, B)
    a = A.ravel()
    b = B.ravel()
    a_std = a.std()
    b_std = b.std()
    if a_std == 0 or b_std == 0:
        # A constant representation correlates with nothing; treat equal
        # matrices as identical and anything else as maximally unrelated.
        return 0.0 if np.array_equal(a, b) else 1.0
    correlation = float(
        np.mean((a - a.mean()) * (b - b.mean())) / (a_std * b_std)
    )
    # Clamp float dust: perfectly correlated inputs must yield exactly 0.
    return max(0.0, 1.0 - correlation)


#: Registry of norm names used across the Section 5 experiments.
NORMS = {
    "L2,1": l21_distance,
    "L1,1": l11_distance,
    "Fro": frobenius_distance,
    "Canb": canberra_distance,
    "Chi2": chi2_distance,
    "Corr": correlation_distance,
}
