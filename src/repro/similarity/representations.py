"""Workload data representations: MTS, Hist-FP, and Phase-FP.

All representations normalize every feature to [0, 1] using *corpus-wide*
ranges (fit once over all experiments being compared, per Section 4.3),
then encode each experiment as a fixed-shape matrix:

- **MTS**: the normalized resource time-series window itself — only
  resource features are temporal, so plan features are ignored here.
- **Hist-FP** (Appendix A, Table 8): per feature, an equi-width cumulative
  frequency histogram over the experiment's raw observations.  Cumulative
  bins make entry-wise distances respect histogram *shape* proximity.
- **Phase-FP** (Appendix A, Table 9): per feature, summary statistics
  (mean/median/variance) of each phase found by Bayesian change-point
  detection, zero-padded to a fixed phase count.  Plan features have a
  single phase by construction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.similarity.changepoint import bayesian_changepoints, segment_bounds
from repro.workloads.features import ALL_FEATURES, RESOURCE_FEATURES
from repro.workloads.runner import ExperimentResult

_PHASE_STATS = ("mean", "median", "variance")


def equi_width_cumulative_histogram(
    values, n_bins: int, *, low: float | None = None, high: float | None = None
) -> np.ndarray:
    """Equi-width cumulative relative-frequency histogram (Appendix A).

    Splits ``[low, high]`` (defaults to the sample min/max) into ``n_bins``
    equal bins, counts relative frequencies, and accumulates them — the
    Hist-FP encoding of Table 8.  Values outside the range clip into the
    edge bins.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValidationError("values must not be empty")
    if n_bins < 1:
        raise ValidationError(f"n_bins must be >= 1, got {n_bins}")
    lo = float(arr.min()) if low is None else float(low)
    hi = float(arr.max()) if high is None else float(high)
    if hi <= lo:
        # All mass in the first bin; cumulative distribution is all ones.
        return np.ones(n_bins)
    clipped = np.clip(arr, lo, hi)
    counts, _ = np.histogram(clipped, bins=n_bins, range=(lo, hi))
    return np.cumsum(counts / arr.size)


def _stat(values: np.ndarray, stat: str) -> float:
    if stat == "mean":
        return float(values.mean())
    if stat == "median":
        return float(np.median(values))
    if stat == "variance":
        return float(values.var())
    raise ValidationError(f"unknown phase statistic {stat!r}")


class RepresentationBuilder:
    """Builds comparable representations for a corpus of experiments.

    Parameters
    ----------
    feature_names:
        The telemetry features available to representations (defaults to
        all 29); similarity callers typically pass a top-k selection here
        or to the per-call ``features`` argument.
    n_bins:
        Histogram resolution for Hist-FP (the paper's default is 10).
    max_phases:
        Fixed phase count Phase-FP pads to.
    phase_stats:
        Which statistics summarize each phase.
    """

    def __init__(
        self,
        feature_names: tuple[str, ...] = ALL_FEATURES,
        *,
        n_bins: int = 10,
        max_phases: int = 4,
        phase_stats: tuple[str, ...] = _PHASE_STATS,
        changepoint_hazard: float = 1.0 / 20.0,
    ):
        if n_bins < 2:
            raise ValidationError(f"n_bins must be >= 2, got {n_bins}")
        if max_phases < 1:
            raise ValidationError(f"max_phases must be >= 1, got {max_phases}")
        unknown = [s for s in phase_stats if s not in _PHASE_STATS]
        if unknown:
            raise ValidationError(f"unknown phase statistics: {unknown}")
        self.feature_names = tuple(feature_names)
        self.n_bins = n_bins
        self.max_phases = max_phases
        self.phase_stats = tuple(phase_stats)
        self.changepoint_hazard = changepoint_hazard

    # -- fitting ----------------------------------------------------------------
    #: Dynamic-range ratio beyond which a feature is log-scaled before
    #: normalization.  Telemetry such as memory grants and row counts spans
    #: many orders of magnitude across workloads; on a linear scale an
    #: equi-width histogram collapses all low-end workloads into bin 0,
    #: destroying resolution exactly where it is needed.
    LOG_SCALE_RATIO = 1e3

    def fit(self, corpus) -> "RepresentationBuilder":
        """Learn corpus-wide [min, max] ranges (and scales) per feature."""
        self._ranges: dict[str, tuple[float, float]] = {}
        self._log_floor: dict[str, float | None] = {}
        experiments = list(corpus)
        if not experiments:
            raise ValidationError("corpus must contain at least one experiment")
        for name in self.feature_names:
            low, high = np.inf, -np.inf
            for result in experiments:
                samples = result.feature_samples(name)
                low = min(low, float(samples.min()))
                high = max(high, float(samples.max()))
            # Soft floor: values are measured against a millionth of the
            # feature's peak, so the dynamic-range test and the log
            # transform behave identically for features living at 1e-3 and
            # at 1e+6 absolute scale.
            floor = max(high * 1e-6, 1e-12)
            use_log = low >= 0.0 and (high + floor) / (low + floor) > (
                self.LOG_SCALE_RATIO
            )
            self._log_floor[name] = floor if use_log else None
            if use_log:
                low = float(np.log1p(low / floor))
                high = float(np.log1p(high / floor))
            self._ranges[name] = (low, high)
        return self

    def _normalize(self, values: np.ndarray, name: str) -> np.ndarray:
        if not hasattr(self, "_ranges"):
            raise NotFittedError(
                "RepresentationBuilder is not fitted; call fit(corpus) first"
            )
        try:
            low, high = self._ranges[name]
        except KeyError:
            raise ValidationError(
                f"feature {name!r} was not part of the fitted feature set"
            ) from None
        floor = self._log_floor[name]
        if floor is not None:
            values = np.log1p(np.maximum(values, 0.0) / floor)
        if high <= low:
            return np.zeros_like(values)
        return np.clip((values - low) / (high - low), 0.0, 1.0)

    def _select(self, features) -> tuple[str, ...]:
        if features is None:
            return self.feature_names
        selected = tuple(features)
        unknown = [f for f in selected if f not in self._ranges]
        if unknown:
            raise ValidationError(
                f"features not covered by the fitted builder: {unknown}"
            )
        return selected

    # -- representations -----------------------------------------------------------
    def mts(
        self, result: ExperimentResult, *, features=None
    ) -> np.ndarray:
        """Normalized resource time-series window, shape ``(time, k)``.

        Only resource features among ``features`` are used — plan
        statistics are not temporal (the paper's MTS experiments are
        resource-only for the same reason).
        """
        names = [
            f for f in self._select(features) if f in RESOURCE_FEATURES
        ]
        if not names:
            raise ValidationError(
                "MTS requires at least one resource feature in the selection"
            )
        columns = [
            self._normalize(result.feature_samples(name), name)
            for name in names
        ]
        return np.column_stack(columns)

    def hist_fp(
        self, result: ExperimentResult, *, features=None, cumulative: bool = True
    ) -> np.ndarray:
        """Histogram fingerprint, shape ``(n_bins, k)``.

        Each column is the relative frequency histogram of one feature's
        normalized observations; with ``cumulative=True`` (the paper's
        choice) bins hold the cumulative distribution instead.
        """
        names = self._select(features)
        fingerprint = np.empty((self.n_bins, len(names)))
        for j, name in enumerate(names):
            normalized = self._normalize(result.feature_samples(name), name)
            if cumulative:
                fingerprint[:, j] = equi_width_cumulative_histogram(
                    normalized, self.n_bins, low=0.0, high=1.0
                )
            else:
                counts, _ = np.histogram(
                    normalized, bins=self.n_bins, range=(0.0, 1.0)
                )
                fingerprint[:, j] = counts / max(normalized.size, 1)
        return fingerprint

    def phase_fp(
        self, result: ExperimentResult, *, features=None
    ) -> np.ndarray:
        """Phase-level statistical fingerprint, shape ``(stats*phases, k)``.

        Resource features are segmented with BCPD; plan features form a
        single phase.  Features with fewer phases than ``max_phases`` are
        zero-padded so all fingerprints share a shape.
        """
        names = self._select(features)
        n_stats = len(self.phase_stats)
        fingerprint = np.zeros((n_stats * self.max_phases, len(names)))
        for j, name in enumerate(names):
            normalized = self._normalize(result.feature_samples(name), name)
            if name in RESOURCE_FEATURES:
                changepoints = bayesian_changepoints(
                    normalized, hazard=self.changepoint_hazard
                )
            else:
                changepoints = []
            segments = segment_bounds(normalized.size, changepoints)
            for phase, (start, stop) in enumerate(segments[: self.max_phases]):
                window = normalized[start:stop]
                for s, stat in enumerate(self.phase_stats):
                    fingerprint[phase * n_stats + s, j] = _stat(window, stat)
        return fingerprint

    def build(
        self,
        result: ExperimentResult,
        representation: str,
        *,
        features=None,
    ) -> np.ndarray:
        """Dispatch by representation name: 'mts', 'hist', or 'phase'."""
        if representation == "mts":
            return self.mts(result, features=features)
        if representation == "hist":
            return self.hist_fp(result, features=features)
        if representation == "phase":
            return self.phase_fp(result, features=features)
        raise ValidationError(
            f"unknown representation {representation!r}; "
            "expected 'mts', 'hist', or 'phase'"
        )
