"""Robustness evaluation: similarity under data imperfections.

Section 5.2 names robustness — resilience to noise, outliers, and missing
data — as the third evaluation axis but measures it only via across-run
variation.  This module makes the axis operational: it injects controlled
imperfections into a corpus and measures how much a (representation,
measure) combination's 1-NN accuracy degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.similarity.evaluation import (
    distance_matrix,
    knn_accuracy,
    representation_matrices,
)
from repro.similarity.measures import MeasureSpec
from repro.similarity.representations import RepresentationBuilder
from repro.utils.rng import RandomState, as_generator
from repro.workloads.runner import ExperimentResult, clone_with


def perturb_experiment(
    result: ExperimentResult,
    *,
    noise_sigma: float = 0.0,
    outlier_fraction: float = 0.0,
    missing_fraction: float = 0.0,
    random_state: RandomState = None,
) -> ExperimentResult:
    """Return a copy of ``result`` with injected measurement imperfections.

    - ``noise_sigma``: multiplicative lognormal noise on every sample;
    - ``outlier_fraction``: fraction of resource samples replaced by a
      10x spike (collector glitches);
    - ``missing_fraction``: fraction of resource samples dropped
      (collection gaps).
    """
    for name, value in (
        ("noise_sigma", noise_sigma),
        ("outlier_fraction", outlier_fraction),
        ("missing_fraction", missing_fraction),
    ):
        if value < 0:
            raise ValidationError(f"{name} must be non-negative")
    if missing_fraction >= 1.0:
        raise ValidationError("missing_fraction must be < 1")
    rng = as_generator(random_state)
    resource = result.resource_series.copy()
    plans = result.plan_matrix.copy()
    if noise_sigma > 0:
        resource *= np.exp(rng.normal(0.0, noise_sigma, resource.shape))
        plans *= np.exp(rng.normal(0.0, noise_sigma, plans.shape))
    if outlier_fraction > 0:
        mask = rng.random(resource.shape) < outlier_fraction
        resource = np.where(mask, resource * 10.0, resource)
    if missing_fraction > 0:
        n_keep = max(4, int(round(resource.shape[0] * (1 - missing_fraction))))
        rows = np.sort(
            rng.choice(resource.shape[0], size=n_keep, replace=False)
        )
        resource = resource[rows]
    return clone_with(
        result,
        resource_series=resource,
        plan_matrix=plans,
        metadata={
            **result.metadata,
            "perturbed": {
                "noise_sigma": noise_sigma,
                "outlier_fraction": outlier_fraction,
                "missing_fraction": missing_fraction,
            },
        },
    )


def distance_distortion(D_clean, D_perturbed) -> float:
    """Structure preservation: 1 - Pearson correlation of distances.

    Correlates the off-diagonal entries of the clean and perturbed
    distance matrices; 0 means the perturbation left the similarity
    structure intact, values near 1 mean it was destroyed.  This is a
    far more sensitive robustness probe than 1-NN accuracy, which
    saturates whenever classes are well separated.
    """
    A = np.asarray(D_clean, dtype=float)
    B = np.asarray(D_perturbed, dtype=float)
    if A.shape != B.shape or A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValidationError("distance matrices must share a square shape")
    mask = ~np.eye(A.shape[0], dtype=bool)
    a = A[mask]
    b = B[mask]
    a_std, b_std = a.std(), b.std()
    # Relative flatness threshold: spreads at float-epsilon scale are
    # indistinguishable from constant structures.
    a_flat = a_std <= 1e-12 * max(float(np.abs(a).max()), 1.0)
    b_flat = b_std <= 1e-12 * max(float(np.abs(b).max()), 1.0)
    if a_flat and b_flat:
        # Two flat distance structures carry the same (non-)information.
        return 0.0
    if a_flat or b_flat:
        return 1.0
    correlation = float(np.mean((a - a.mean()) * (b - b.mean())) / (a_std * b_std))
    return 1.0 - correlation


@dataclass(frozen=True)
class RobustnessProfile:
    """Accuracy and structure preservation across perturbation levels."""

    representation: str
    measure: str
    clean_accuracy: float
    accuracy_by_level: dict[float, float]
    distortion_by_level: dict[float, float]

    def degradation(self) -> float:
        """Largest accuracy drop relative to the clean corpus."""
        worst = min(self.accuracy_by_level.values())
        return self.clean_accuracy - worst

    def worst_distortion(self) -> float:
        """Largest distance-structure distortion across levels."""
        return max(self.distortion_by_level.values())


def robustness_under_noise(
    corpus,
    builder: RepresentationBuilder,
    representation: str,
    measure: MeasureSpec,
    *,
    features=None,
    noise_levels=(0.05, 0.15, 0.3),
    perturbation: str = "noise",
    random_state: RandomState = 0,
    jobs: int | None = None,
    cache=None,
    clean: tuple | None = None,
) -> RobustnessProfile:
    """Measure 1-NN accuracy as perturbations of one kind intensify.

    ``perturbation`` is ``"noise"``, ``"outliers"``, or ``"missing"``; the
    values in ``noise_levels`` are the corresponding sigma/fractions.

    ``jobs`` and ``cache`` are forwarded to every
    :func:`~repro.similarity.evaluation.distance_matrix` call; with a
    cache, a repeated sweep (same corpus and seed) recomputes zero
    pairs.  ``clean`` is an optional precomputed
    ``(clean_matrices, D_clean)`` pair — :func:`robustness_profiles`
    uses it to build the clean baseline once across perturbation kinds
    instead of once per kind.
    """
    if perturbation not in ("noise", "outliers", "missing"):
        raise ValidationError(f"unknown perturbation {perturbation!r}")
    labels = [r.workload_name for r in corpus]
    if clean is None:
        clean_matrices = representation_matrices(
            corpus, builder, representation, features=features
        )
        D_clean = distance_matrix(
            clean_matrices, measure, jobs=jobs, cache=cache
        )
    else:
        clean_matrices, D_clean = clean
        if len(clean_matrices) != len(corpus) or D_clean.shape[0] != len(
            corpus
        ):
            raise ValidationError(
                "precomputed clean baseline does not match the corpus"
            )
    clean_accuracy = knn_accuracy(D_clean, labels)
    rng = as_generator(random_state)
    accuracy_by_level: dict[float, float] = {}
    distortion_by_level: dict[float, float] = {}
    for level in noise_levels:
        kwargs = {
            "noise": {"noise_sigma": level},
            "outliers": {"outlier_fraction": level},
            "missing": {"missing_fraction": level},
        }[perturbation]
        perturbed = [
            perturb_experiment(
                result,
                random_state=int(rng.integers(0, 2**62)),
                **kwargs,
            )
            for result in corpus
        ]
        matrices = representation_matrices(
            perturbed, builder, representation, features=features
        )
        D = distance_matrix(matrices, measure, jobs=jobs, cache=cache)
        accuracy_by_level[float(level)] = knn_accuracy(D, labels)
        distortion_by_level[float(level)] = distance_distortion(D_clean, D)
    return RobustnessProfile(
        representation=representation,
        measure=measure.name,
        clean_accuracy=clean_accuracy,
        accuracy_by_level=accuracy_by_level,
        distortion_by_level=distortion_by_level,
    )


def robustness_profiles(
    corpus,
    builder: RepresentationBuilder,
    representation: str,
    measure: MeasureSpec,
    *,
    features=None,
    noise_levels=(0.05, 0.15, 0.3),
    perturbations=("noise", "outliers", "missing"),
    random_state: RandomState = 0,
    jobs: int | None = None,
    cache=None,
) -> dict[str, RobustnessProfile]:
    """Robustness profiles for several perturbation kinds at once.

    The clean representation matrices and their distance matrix are
    built exactly once and shared across kinds (the historical per-kind
    sweep rebuilt them for every call).  Each kind is seeded with the
    same ``random_state``, so every returned profile is identical to a
    standalone :func:`robustness_under_noise` call for that kind.
    """
    if not perturbations:
        raise ValidationError("perturbations must not be empty")
    clean_matrices = representation_matrices(
        corpus, builder, representation, features=features
    )
    D_clean = distance_matrix(clean_matrices, measure, jobs=jobs, cache=cache)
    return {
        perturbation: robustness_under_noise(
            corpus,
            builder,
            representation,
            measure,
            features=features,
            noise_levels=noise_levels,
            perturbation=perturbation,
            random_state=random_state,
            jobs=jobs,
            cache=cache,
            clean=(clean_matrices, D_clean),
        )
        for perturbation in perturbations
    }
