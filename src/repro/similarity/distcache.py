"""Content-addressed cache of pairwise distances.

Robustness sweeps and repeated benchmark sessions evaluate the same
measure over largely overlapping sets of representation matrices — a
perturbation sweep shares every clean-vs-clean pair across levels, and a
warm benchmark session shares everything.  Each computed distance is a
pure function of the two matrices and the measure, so it can be cached
under a content address and never computed twice.

Keys
----
``matrix_digest`` hashes a matrix's *content*: its shape plus the raw
bytes of its C-contiguous ``float64`` form.  A pair key is then the
SHA-256 of the two matrix digests (sorted — every registered measure is
symmetric, so ``(A, B)`` and ``(B, A)`` share an entry), the measure
name, and :data:`DISTANCE_CACHE_FORMAT_VERSION`.  Any change to a
matrix, the measure, or the on-disk layout changes the key; stale
entries are simply never addressed again.

Storage
-------
One append-only JSONL file (``distances.jsonl``) per cache directory:
``{"key": ..., "value": ...}`` per line.  Appends and loads go through
:mod:`repro.exec.journal` — heal a torn tail before appending, write
each row atomically on an append-mode descriptor, tolerate torn/corrupt
lines on load — so a killed sweep leaves a usable cache.  Corrupt or
non-finite entries are treated as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path

import numpy as np

from repro.exec.journal import append_jsonl, load_jsonl
from repro.obs.logging import get_logger
from repro.obs.metrics import get_metrics

logger = get_logger(__name__)

#: Bump when the key derivation or the on-disk layout changes; every
#: existing entry stops being addressable.
DISTANCE_CACHE_FORMAT_VERSION = 1


def matrix_digest(matrix: np.ndarray) -> str:
    """SHA-256 content address of a representation matrix."""
    arr = np.ascontiguousarray(np.asarray(matrix, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(repr(arr.shape).encode("utf-8"))
    digest.update(arr.tobytes())
    return digest.hexdigest()


def pair_key(digest_a: str, digest_b: str, measure_name: str) -> str:
    """Cache key for one (matrix, matrix, measure) distance evaluation."""
    lo, hi = sorted((digest_a, digest_b))
    payload = json.dumps(
        {
            "format": DISTANCE_CACHE_FORMAT_VERSION,
            "measure": measure_name,
            "pair": [lo, hi],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class DistanceCache:
    """On-disk memo of pairwise distances, keyed by :func:`pair_key`.

    The full entry set is held in memory (a distance is one float; even
    a million entries are cheap) and mirrored to ``distances.jsonl``
    under ``root``.  ``get``/``put`` publish
    ``distance_cache.hits_total`` / ``distance_cache.misses_total``
    through :mod:`repro.obs`.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()
        self.path = self.root / "distances.jsonl"
        self._entries: dict[str, float] = {}
        self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def _load(self) -> None:
        entries, corrupt = load_jsonl(self.path, label="distance cache")
        for entry in entries:
            key = entry.get("key") if isinstance(entry, dict) else None
            value = entry.get("value") if isinstance(entry, dict) else None
            if (
                isinstance(key, str)
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
                and math.isfinite(value)
            ):
                self._entries[key] = float(value)
            else:
                corrupt += 1
        if corrupt:
            get_metrics().counter("distance_cache.corrupt_total").inc(corrupt)
            logger.warning(
                "distance cache %s: skipped %d corrupt line(s)",
                self.path, corrupt,
            )

    def get(self, key: str) -> float | None:
        """The cached distance for ``key``, or ``None`` on a miss."""
        value = self._entries.get(key)
        if value is None:
            get_metrics().counter("distance_cache.misses_total").inc()
            return None
        get_metrics().counter("distance_cache.hits_total").inc()
        return value

    def put(self, key: str, value: float) -> None:
        """Record a computed distance (idempotent per cache object).

        Non-finite values are never persisted — an ``inf`` from an
        early-abandoned computation is not the true distance.  Append
        failures are logged and swallowed: the cache is an optimization,
        not a correctness requirement.
        """
        value = float(value)
        if not math.isfinite(value):
            return
        if key in self._entries:
            return
        self._entries[key] = value
        append_jsonl(
            self.path, {"key": key, "value": value}, label="distance cache"
        )

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        self._entries.clear()
        try:
            self.path.unlink(missing_ok=True)
        except OSError as exc:
            logger.warning(
                "cannot remove distance cache %s: %s", self.path, exc
            )


def as_distance_cache(
    cache: "DistanceCache | str | Path | None",
) -> DistanceCache | None:
    """Normalize a cache argument: ``None``, a directory, or a cache."""
    if cache is None or isinstance(cache, DistanceCache):
        return cache
    if isinstance(cache, (str, Path)):
        return DistanceCache(cache)
    raise TypeError(
        "cache must be None, a path, or a DistanceCache, "
        f"got {type(cache).__name__}"
    )
