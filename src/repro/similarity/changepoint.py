"""Bayesian online change-point detection (BCPD).

Adams & MacKay's algorithm with a Normal-Inverse-Gamma conjugate model: at
each time step the posterior over the current "run length" is updated; a
change point is declared where the MAP run length resets.  Phase-FP
(Section 5.1.1) uses the detected segments as workload phases.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_1d


def _student_t_logpdf(
    x: float, mean: np.ndarray, scale2: np.ndarray, dof: np.ndarray
) -> np.ndarray:
    """Log density of the Student-t predictive distribution (vectorized)."""
    from scipy.special import gammaln

    z2 = (x - mean) ** 2 / (scale2 * dof)
    return (
        gammaln((dof + 1.0) / 2.0)
        - gammaln(dof / 2.0)
        - 0.5 * np.log(np.pi * dof * scale2)
        - (dof + 1.0) / 2.0 * np.log1p(z2)
    )


def bayesian_changepoints(
    values,
    *,
    hazard: float = 1.0 / 60.0,
    min_segment: int = 5,
    max_changepoints: int = 8,
) -> list[int]:
    """Detect change points in a univariate series.

    Parameters
    ----------
    values:
        The time-series to segment.
    hazard:
        Constant prior probability of a change at each step (1/expected
        segment length).
    min_segment:
        Change points closer than this to the previous one are suppressed.
    max_changepoints:
        Upper bound on reported change points (most confident first in
        time order).

    Returns
    -------
    Sorted indices ``t`` such that a new phase starts at ``values[t]``.
    """
    x = check_1d(values, "values")
    if not 0.0 < hazard < 1.0:
        raise ValidationError(f"hazard must be in (0, 1), got {hazard}")
    n = x.size
    if n < 2 * min_segment:
        return []
    # Normalize for numerical stability; detection is scale-invariant.
    spread = x.std()
    if spread == 0:
        return []
    xs = (x - x.mean()) / spread

    # NIG prior hyperparameters (weakly informative on the normalized data).
    mu0, kappa0, alpha0, beta0 = 0.0, 0.1, 1.0, 0.5

    run_log_prob = np.full(n + 1, -np.inf)
    run_log_prob[0] = 0.0
    mu = np.array([mu0])
    kappa = np.array([kappa0])
    alpha = np.array([alpha0])
    beta = np.array([beta0])
    map_run_lengths = np.zeros(n, dtype=int)
    log_hazard = np.log(hazard)
    log_survive = np.log1p(-hazard)

    for t in range(n):
        active = t + 1
        scale2 = beta * (kappa + 1.0) / (alpha * kappa)
        log_pred = _student_t_logpdf(xs[t], mu, scale2, 2.0 * alpha)
        prior = run_log_prob[:active]
        growth = prior + log_pred + log_survive
        change = np.logaddexp.reduce(prior + log_pred + log_hazard)
        new_log_prob = np.full(n + 1, -np.inf)
        new_log_prob[0] = change
        new_log_prob[1 : active + 1] = growth
        # Normalize to keep magnitudes bounded.
        total = np.logaddexp.reduce(new_log_prob[: active + 1])
        run_log_prob = new_log_prob - total
        map_run_lengths[t] = int(np.argmax(run_log_prob[: active + 1]))
        # Posterior updates: prepend the reset hypothesis.
        kappa_new = kappa + 1.0
        mu_new = (kappa * mu + xs[t]) / kappa_new
        alpha_new = alpha + 0.5
        beta_new = beta + 0.5 * kappa * (xs[t] - mu) ** 2 / kappa_new
        mu = np.concatenate([[mu0], mu_new])
        kappa = np.concatenate([[kappa0], kappa_new])
        alpha = np.concatenate([[alpha0], alpha_new])
        beta = np.concatenate([[beta0], beta_new])

    # A change point is where the MAP run length drops sharply.
    changepoints: list[int] = []
    last = -min_segment
    for t in range(1, n):
        dropped = map_run_lengths[t] < map_run_lengths[t - 1] - min_segment
        if dropped and t - last >= min_segment and t >= min_segment:
            changepoints.append(t)
            last = t
    return changepoints[:max_changepoints]


def segment_bounds(n_samples: int, changepoints: list[int]) -> list[tuple[int, int]]:
    """Convert change points into half-open segment bounds."""
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    boundaries = [0, *sorted(set(changepoints)), n_samples]
    segments = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        if stop > start:
            segments.append((start, stop))
    return segments
