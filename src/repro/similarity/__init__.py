"""Workload similarity computation (Section 5 of the paper).

Two concerns, composed freely:

- **Data representation** (:mod:`repro.similarity.representations`):
  multivariate time-series (MTS), histogram-based fingerprints (Hist-FP,
  cumulative equi-width histograms), and phase-level statistical
  fingerprints (Phase-FP, built on Bayesian change-point detection).
- **Distance computation**: matrix norms (:mod:`repro.similarity.norms`)
  for same-shape representations, and elastic time-series measures —
  dependent/independent DTW (:mod:`repro.similarity.dtw`) and LCSS
  (:mod:`repro.similarity.lcss`).

:mod:`repro.similarity.evaluation` scores a (representation, measure)
combination on the paper's three axes: reliability (1-NN accuracy, mAP),
discrimination power (NDCG), and robustness (across-run variation).
"""

from repro.similarity.norms import (
    NORMS,
    canberra_distance,
    chi2_distance,
    correlation_distance,
    frobenius_distance,
    l11_distance,
    l21_distance,
)
from repro.similarity.changepoint import bayesian_changepoints, segment_bounds
from repro.similarity.representations import RepresentationBuilder
from repro.similarity.distcache import (
    DistanceCache,
    as_distance_cache,
    matrix_digest,
    pair_key,
)
from repro.similarity.dtw import (
    dtw_distance,
    lb_keogh,
    lb_kim,
    multivariate_dtw,
)
from repro.similarity.lcss import lcss_distance, multivariate_lcss
from repro.similarity.measures import (
    MeasureSpec,
    default_measures,
    measure_registry,
)
from repro.similarity.clustering import (
    ClusteringResult,
    adjusted_rand_index,
    cluster_purity,
    cluster_workloads,
)
from repro.similarity.robustness import (
    RobustnessProfile,
    perturb_experiment,
    robustness_profiles,
    robustness_under_noise,
)
from repro.similarity.evaluation import (
    SimilarityEvaluation,
    distance_matrix,
    evaluate_measure,
    knn_accuracy,
    pairwise_workload_distances,
    ranking_mean_average_precision,
    ranking_ndcg,
)
from repro.similarity.pruning import knn_accuracy_pruned, nearest_neighbor

__all__ = [
    "NORMS",
    "l11_distance",
    "l21_distance",
    "frobenius_distance",
    "canberra_distance",
    "chi2_distance",
    "correlation_distance",
    "bayesian_changepoints",
    "segment_bounds",
    "RepresentationBuilder",
    "dtw_distance",
    "multivariate_dtw",
    "lcss_distance",
    "multivariate_lcss",
    "MeasureSpec",
    "measure_registry",
    "default_measures",
    "SimilarityEvaluation",
    "distance_matrix",
    "evaluate_measure",
    "knn_accuracy",
    "ranking_mean_average_precision",
    "ranking_ndcg",
    "pairwise_workload_distances",
    "ClusteringResult",
    "cluster_workloads",
    "cluster_purity",
    "adjusted_rand_index",
    "RobustnessProfile",
    "perturb_experiment",
    "robustness_under_noise",
    "robustness_profiles",
    "DistanceCache",
    "as_distance_cache",
    "matrix_digest",
    "pair_key",
    "lb_kim",
    "lb_keogh",
    "knn_accuracy_pruned",
    "nearest_neighbor",
]
