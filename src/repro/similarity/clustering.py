"""Workload clustering on top of similarity distances.

The pipeline's similarity stage exists so providers can *group* workloads
and train predictors per group instead of per deployment (Section 2).
This module turns a distance matrix from
:func:`repro.similarity.evaluation.distance_matrix` into workload groups
and scores how well the groups recover ground-truth workload identities
or types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.cluster import KMedoids, agglomerative_labels
from repro.utils.rng import RandomState


@dataclass(frozen=True)
class ClusteringResult:
    """Cluster assignment of a corpus of experiments."""

    labels: np.ndarray  # cluster index per experiment
    method: str
    n_clusters: int

    def groups(self, names) -> dict[int, list[str]]:
        """Map cluster index -> member identifiers."""
        names = list(names)
        if len(names) != self.labels.size:
            raise ValidationError("names must align with the labels")
        out: dict[int, list[str]] = {}
        for label, name in zip(self.labels, names):
            out.setdefault(int(label), []).append(name)
        return out


def cluster_workloads(
    D,
    n_clusters: int,
    *,
    method: str = "agglomerative",
    linkage: str = "average",
    random_state: RandomState = 0,
) -> ClusteringResult:
    """Cluster experiments from their pairwise distances.

    ``method`` is ``"agglomerative"`` (default; deterministic) or
    ``"kmedoids"``.
    """
    D = np.asarray(D, dtype=float)
    if method == "agglomerative":
        labels = agglomerative_labels(D, n_clusters, linkage=linkage)
    elif method == "kmedoids":
        model = KMedoids(n_clusters, random_state=random_state).fit(D)
        labels = model.labels_
    else:
        raise ValidationError(
            f"unknown method {method!r}; use 'agglomerative' or 'kmedoids'"
        )
    return ClusteringResult(
        labels=np.asarray(labels), method=method, n_clusters=n_clusters
    )


def cluster_purity(cluster_labels, true_labels) -> float:
    """Fraction of experiments in their cluster's majority class."""
    cluster_labels = np.asarray(cluster_labels)
    true_labels = np.asarray(true_labels)
    if cluster_labels.size != true_labels.size or cluster_labels.size == 0:
        raise ValidationError("label arrays must align and be non-empty")
    correct = 0
    for cluster in np.unique(cluster_labels):
        members = true_labels[cluster_labels == cluster]
        _, counts = np.unique(members, return_counts=True)
        correct += int(counts.max())
    return correct / cluster_labels.size


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Adjusted Rand index between two clusterings (1 = identical)."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.size != b.size or a.size == 0:
        raise ValidationError("label arrays must align and be non-empty")
    classes_a, a_codes = np.unique(a, return_inverse=True)
    classes_b, b_codes = np.unique(b, return_inverse=True)
    contingency = np.zeros((classes_a.size, classes_b.size), dtype=np.int64)
    np.add.at(contingency, (a_codes, b_codes), 1)

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_cells = comb2(contingency).sum()
    sum_rows = comb2(contingency.sum(axis=1)).sum()
    sum_cols = comb2(contingency.sum(axis=0)).sum()
    total = comb2(a.size)
    if total == 0:
        return 1.0
    expected = sum_rows * sum_cols / total
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))
