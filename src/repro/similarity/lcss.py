"""Longest common sub-sequence distances (Hirschberg [45]).

LCSS counts the longest alignment of samples that match within an
``epsilon`` tolerance and a ``delta`` time window, and converts it to a
distance ``1 - LCSS / min(m, n)``.  The dependent variant requires all
dimensions of a multivariate sample to match simultaneously; the
independent variant averages per-dimension LCSS distances [83].
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _lcss_length(
    A: np.ndarray, B: np.ndarray, epsilon: float, delta: int | None
) -> int:
    """Length of the longest epsilon/delta-constrained common subsequence.

    ``A`` and ``B`` are ``(time, features)``; a pair matches when every
    dimension differs by at most ``epsilon``.  The dynamic program runs
    along anti-diagonals so each step is a vectorized max (the similarity
    benchmarks evaluate thousands of pairs).
    """
    m, n = A.shape[0], B.shape[0]
    matches = np.all(
        np.abs(A[:, None, :] - B[None, :, :]) <= epsilon, axis=2
    )
    if delta is not None and delta < max(m, n) - 1:
        # A wider delta admits every (i, j) pair; masking would change
        # nothing, so skip building the index grids entirely.
        i_idx = np.arange(m)[:, None]
        j_idx = np.arange(n)[None, :]
        matches = matches & (np.abs(i_idx - j_idx) <= delta)
    table = np.zeros((m + 1, n + 1), dtype=int)
    for diagonal in range(2, m + n + 1):
        i_low = max(1, diagonal - n)
        i_high = min(m, diagonal - 1)
        if i_low > i_high:
            continue
        i = np.arange(i_low, i_high + 1)
        j = diagonal - i
        extended = table[i - 1, j - 1] + 1
        skipped = np.maximum(table[i - 1, j], table[i, j - 1])
        table[i, j] = np.where(matches[i - 1, j - 1], extended, skipped)
    return int(table[m, n])


def _as_matrix(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValidationError(f"{name} must be a non-empty (time, features) matrix")
    return arr


def lcss_distance(a, b, *, epsilon: float = 0.1, delta: int | None = None) -> float:
    """Univariate LCSS distance in [0, 1] (0 = one contains the other)."""
    A = _as_matrix(a, "a")
    B = _as_matrix(b, "b")
    if A.shape[1] != 1 or B.shape[1] != 1:
        raise ValidationError("lcss_distance expects univariate series")
    if epsilon < 0:
        raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
    length = _lcss_length(A, B, epsilon, delta)
    return 1.0 - length / min(A.shape[0], B.shape[0])


def multivariate_lcss(
    A,
    B,
    *,
    strategy: str = "dependent",
    epsilon: float = 0.1,
    delta: int | None = None,
) -> float:
    """Multivariate LCSS distance between ``(time, features)`` matrices."""
    A = _as_matrix(A, "A")
    B = _as_matrix(B, "B")
    if A.shape[1] != B.shape[1]:
        raise ValidationError(
            f"feature dimensions differ: {A.shape[1]} vs {B.shape[1]}"
        )
    if epsilon < 0:
        raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
    if strategy == "dependent":
        length = _lcss_length(A, B, epsilon, delta)
        return 1.0 - length / min(A.shape[0], B.shape[0])
    if strategy == "independent":
        distances = [
            lcss_distance(A[:, k], B[:, k], epsilon=epsilon, delta=delta)
            for k in range(A.shape[1])
        ]
        return float(np.mean(distances))
    raise ValidationError(
        f"strategy must be 'dependent' or 'independent', got {strategy!r}"
    )
