"""Lower-bound pruned 1-NN search over representation matrices.

1-NN workload identification (:func:`repro.similarity.evaluation.
knn_accuracy`) needs, per query, only the *identity* of the nearest
experiment — not the exact distance to every candidate.  For DTW that
means most of the O(n²) dynamic programs are provably unnecessary: a
candidate whose cheap lower bound (:func:`~repro.similarity.dtw.lb_kim`,
then :func:`~repro.similarity.dtw.lb_keogh`) already reaches the best
distance found so far can be skipped outright, and the remaining
candidates run with ``cutoff=best`` so the dynamic program early-abandons
the moment it proves the candidate loses.

The search is **exact**: candidates are scanned in index order and the
best is only replaced on a strictly smaller distance, which reproduces
``np.argmin``'s first-index tie-breaking — so
:func:`knn_accuracy_pruned` equals
``knn_accuracy(distance_matrix(matrices, measure), labels)`` on any
corpus (``tests/similarity/test_pruning.py`` asserts it, and a
hypothesis suite fuzzes the equivalence on random series).

Skipped and abandoned candidates are counted in
``similarity.pairs_pruned_total``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.obs.metrics import get_metrics
from repro.obs.tracing import span
from repro.similarity.dtw import lb_keogh, lb_kim, multivariate_dtw
from repro.similarity.evaluation import _is_elastic, _prepare_pair
from repro.similarity.measures import (
    MeasureSpec,
    _dtw_dependent,
    _dtw_independent,
)


def _pair_distance(
    A: np.ndarray,
    B: np.ndarray,
    measure: MeasureSpec,
    cutoff: float | None,
) -> float:
    """Distance for one pair, early-abandoning at ``cutoff`` when the
    measure supports it.  A finite return value is always exact."""
    if measure.func is _dtw_dependent:
        return multivariate_dtw(A, B, strategy="dependent", cutoff=cutoff)
    if measure.func is _dtw_independent:
        return multivariate_dtw(A, B, strategy="independent", cutoff=cutoff)
    A, B = _prepare_pair(A, B, _is_elastic(measure))
    return float(measure(A, B))


def nearest_neighbor(
    matrices: list[np.ndarray], query: int, measure: MeasureSpec
) -> int:
    """Index of the query's nearest other matrix under ``measure``.

    Equal to ``np.argmin`` over the masked query row of the full
    distance matrix — including its first-index tie-breaking — while
    computing as few exact distances as the bounds allow.
    """
    n = len(matrices)
    if n < 2:
        raise ValidationError("need at least two experiments for 1-NN")
    if not 0 <= query < n:
        raise ValidationError(f"query index {query} out of range [0, {n})")
    dependent_dtw = measure.func is _dtw_dependent
    A = matrices[query]
    best = np.inf
    best_index = -1
    pruned = 0
    for candidate in range(n):
        if candidate == query:
            continue
        B = matrices[candidate]
        if dependent_dtw and np.isfinite(best):
            # Cascade of ever-tighter lower bounds: a bound that already
            # reaches ``best`` proves the candidate cannot win (the best
            # is only replaced on a strictly smaller distance).
            if lb_kim(A, B) >= best or lb_keogh(A, B) >= best:
                pruned += 1
                continue
        cutoff = best if np.isfinite(best) else None
        value = _pair_distance(A, B, measure, cutoff)
        if not np.isfinite(value):
            # Early-abandoned: provably > best, never a candidate.
            pruned += 1
            continue
        if value < best:
            best = value
            best_index = candidate
    if best_index < 0:
        # Every exact distance was inf (degenerate inputs).  np.argmin
        # over an all-inf masked row returns 0; reproduce that.
        best_index = 0
    if pruned:
        get_metrics().counter("similarity.pairs_pruned_total").inc(pruned)
    return best_index


def knn_accuracy_pruned(
    matrices: list[np.ndarray], labels, measure: MeasureSpec
) -> float:
    """1-NN workload identification accuracy, without the full matrix.

    Equals ``knn_accuracy(distance_matrix(matrices, measure), labels)``
    while skipping every pairwise distance the lower bounds rule out.
    """
    labels = np.asarray(labels)
    if len(matrices) != labels.size:
        raise ValidationError("labels must align with the matrices")
    with span(
        "similarity.knn_pruned",
        attrs={"n_experiments": len(matrices), "measure": measure.name},
    ):
        correct = 0
        for query in range(len(matrices)):
            nearest = nearest_neighbor(matrices, query, measure)
            if labels[nearest] == labels[query]:
                correct += 1
    return correct / len(matrices)
