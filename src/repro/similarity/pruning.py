"""Lower-bound pruned 1-NN search over representation matrices.

1-NN workload identification (:func:`repro.similarity.evaluation.
knn_accuracy`) needs, per query, only the *identity* of the nearest
experiment — not the exact distance to every candidate.  For DTW that
means most of the O(n²) dynamic programs are provably unnecessary: a
candidate whose cheap lower bound (:func:`~repro.similarity.dtw.lb_kim`,
then :func:`~repro.similarity.dtw.lb_keogh`) already reaches the best
distance found so far can be skipped outright, and the remaining
candidates run with ``cutoff=best`` so the dynamic program early-abandons
the moment it proves the candidate loses.

The search is **exact**: candidates are scanned in index order and the
best is only replaced on a strictly smaller distance, which reproduces
``np.argmin``'s first-index tie-breaking — so
:func:`knn_accuracy_pruned` equals
``knn_accuracy(distance_matrix(matrices, measure), labels)`` on any
corpus (``tests/similarity/test_pruning.py`` asserts it, and a
hypothesis suite fuzzes the equivalence on random series).

Skipped and abandoned candidates are counted in
``similarity.pairs_pruned_total``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.obs.metrics import get_metrics
from repro.obs.tracing import span
from repro.similarity.dtw import (
    lb_keogh,
    lb_keogh_from_envelope,
    lb_kim,
    multivariate_dtw,
)
from repro.similarity.evaluation import _is_elastic, _prepare_pair
from repro.similarity.measures import (
    MeasureSpec,
    _dtw_dependent,
    _dtw_independent,
)


def _pair_distance(
    A: np.ndarray,
    B: np.ndarray,
    measure: MeasureSpec,
    cutoff: float | None,
) -> float:
    """Distance for one pair, early-abandoning at ``cutoff`` when the
    measure supports it.  A finite return value is always exact."""
    if measure.func is _dtw_dependent:
        return multivariate_dtw(A, B, strategy="dependent", cutoff=cutoff)
    if measure.func is _dtw_independent:
        return multivariate_dtw(A, B, strategy="independent", cutoff=cutoff)
    A, B = _prepare_pair(A, B, _is_elastic(measure))
    return float(measure(A, B))


def nearest_neighbor(
    matrices: list[np.ndarray], query: int, measure: MeasureSpec
) -> int:
    """Index of the query's nearest other matrix under ``measure``.

    Equal to ``np.argmin`` over the masked query row of the full
    distance matrix — including its first-index tie-breaking — while
    computing as few exact distances as the bounds allow.
    """
    n = len(matrices)
    if n < 2:
        raise ValidationError("need at least two experiments for 1-NN")
    if not 0 <= query < n:
        raise ValidationError(f"query index {query} out of range [0, {n})")
    dependent_dtw = measure.func is _dtw_dependent
    A = matrices[query]
    best = np.inf
    best_index = -1
    pruned = 0
    for candidate in range(n):
        if candidate == query:
            continue
        B = matrices[candidate]
        if dependent_dtw and np.isfinite(best):
            # Cascade of ever-tighter lower bounds: a bound that already
            # reaches ``best`` proves the candidate cannot win (the best
            # is only replaced on a strictly smaller distance).
            if lb_kim(A, B) >= best or lb_keogh(A, B) >= best:
                pruned += 1
                continue
        cutoff = best if np.isfinite(best) else None
        value = _pair_distance(A, B, measure, cutoff)
        if not np.isfinite(value):
            # Early-abandoned: provably > best, never a candidate.
            pruned += 1
            continue
        if value < best:
            best = value
            best_index = candidate
    if best_index < 0:
        # Every exact distance was inf (degenerate inputs).  np.argmin
        # over an all-inf masked row returns 0; reproduce that.
        best_index = 0
    if pruned:
        get_metrics().counter("similarity.pairs_pruned_total").inc(pruned)
    return best_index


def measure_norm(measure: MeasureSpec, A: np.ndarray) -> float | None:
    """Value of the matrix norm that induces ``measure``, or ``None``.

    L2,1, L1,1, and Frobenius distances are norm-induced —
    ``d(A, B) = N(A - B)`` — so the reverse triangle inequality
    ``|N(A) - N(B)| <= d(A, B)`` gives a constant-time lower bound from
    two precomputable scalars.  Canberra, Chi-square, and Correlation
    are not norms; elastic measures compare unequal lengths.  For those
    this returns ``None`` and callers fall back to exact evaluation.
    """
    if measure.name == "L2,1":
        return float(np.sum(np.linalg.norm(A, axis=0)))
    if measure.name == "L1,1":
        return float(np.sum(np.abs(A)))
    if measure.name == "Fro":
        return float(np.linalg.norm(A))
    return None


def _group_lower_bounds(
    query_matrices: list[np.ndarray],
    candidates: list[np.ndarray],
    indices: list[int],
    measure: MeasureSpec,
    envelopes,
    norms,
    query_norms,
) -> np.ndarray:
    """Per-pair lower bounds for one query-set x candidate-group block.

    Every entry is ``<=`` the exact pair distance, so the block mean —
    numpy's pairwise summation is weakly monotone element-for-element —
    is ``<=`` the exact block mean and a bound that reaches the current
    best proves the whole group cannot win.
    """
    dependent_dtw = measure.func is _dtw_dependent
    lbs = np.zeros((len(query_matrices), len(indices)))
    for row, A in enumerate(query_matrices):
        for col, candidate in enumerate(indices):
            B = candidates[candidate]
            if dependent_dtw:
                bound = lb_kim(A, B)
                envelope = (
                    envelopes[candidate] if envelopes is not None else None
                )
                if envelope is not None:
                    bound = max(
                        bound,
                        lb_keogh_from_envelope(A, envelope[0], envelope[1]),
                    )
                else:
                    bound = max(bound, lb_keogh(A, B))
                lbs[row, col] = bound
            elif (
                norms is not None
                and query_norms is not None
                and query_norms[row] is not None
                and norms[candidate] is not None
                and A.shape == B.shape
            ):
                # Reverse triangle inequality; only valid when the exact
                # path compares the full matrices (equal shapes — unequal
                # ones are truncated by _prepare_pair, which the
                # precomputed norms know nothing about).
                lbs[row, col] = abs(query_norms[row] - norms[candidate])
    return lbs


def nearest_group(
    query_matrices: list[np.ndarray],
    candidates: list[np.ndarray],
    groups: list[tuple[str, list[int]]],
    measure: MeasureSpec,
    *,
    envelopes=None,
    norms=None,
) -> str:
    """Name of the candidate group nearest to the query set.

    The distance to a group is the mean over the query x member block —
    exactly the per-reference aggregation
    :meth:`repro.serve.service.PredictionService.rank` applies to the
    cross-distance matrix — and groups are scanned in the given order
    with strict-improvement replacement, reproducing the stable
    first-wins tie-breaking of
    :meth:`repro.core.report.SimilarityRanking.nearest` when ``groups``
    follows the reference corpus's workload order.

    The comparison happens on **raw** block means; the full path's
    [0, 1] rescale divides every mean by the same positive peak, a
    monotone map, so the orderings agree — including bit-exact ties,
    which stay bit-exact after the division and resolve first-wins on
    both paths.  The one corner where the domains can disagree is two
    *distinct* raw means whose quotients round to the same float (needs
    a quantized measure such as LCSS producing mathematically equal
    means with different float roundings); continuous-valued measures
    on real telemetry never land there.

    A group whose lower-bound block mean already reaches the best mean
    found so far is skipped without computing a single exact distance:
    Dependent-DTW groups use the LB_Kim / LB_Keogh cascade (with
    precomputed ``envelopes`` — pairs of per-dimension ``(lower,
    upper)`` from :func:`~repro.similarity.dtw.keogh_envelope` — when
    the caller indexed the candidates ahead of time), norm-induced
    measures use the reverse triangle inequality over precomputed
    ``norms``.  Surviving groups are evaluated exactly, so the result
    matches the full-matrix path on every input
    (``tests/similarity/test_pruned_group.py``).
    """
    if not query_matrices:
        raise ValidationError("nearest_group needs at least one query matrix")
    if not groups:
        raise ValidationError("nearest_group needs at least one group")
    if any(not indices for _, indices in groups):
        raise ValidationError("every group needs at least one candidate")
    use_bounds = measure.func is _dtw_dependent or any(
        measure.name == name for name in ("L2,1", "L1,1", "Fro")
    )
    query_norms = None
    if use_bounds and measure.func is not _dtw_dependent:
        query_norms = [measure_norm(measure, A) for A in query_matrices]
    best = np.inf
    best_name: str | None = None
    pruned = 0
    with span(
        "similarity.nearest_group",
        attrs={
            "n_queries": len(query_matrices),
            "n_groups": len(groups),
            "measure": measure.name,
        },
    ):
        for name, indices in groups:
            if use_bounds and np.isfinite(best):
                lbs = _group_lower_bounds(
                    query_matrices,
                    candidates,
                    indices,
                    measure,
                    envelopes,
                    norms,
                    query_norms,
                )
                if float(lbs.mean()) >= best:
                    pruned += lbs.size
                    continue
            block = np.empty((len(query_matrices), len(indices)))
            for row, A in enumerate(query_matrices):
                for col, candidate in enumerate(indices):
                    block[row, col] = _pair_distance(
                        A, candidates[candidate], measure, None
                    )
            value = float(block.mean())
            if value < best:
                best = value
                best_name = name
    if best_name is None:
        # Every group mean was inf/nan (degenerate inputs); mirror the
        # full path, where sorting all-equal distances keeps corpus order.
        best_name = groups[0][0]
    if pruned:
        get_metrics().counter("similarity.pairs_pruned_total").inc(pruned)
    return best_name


def knn_accuracy_pruned(
    matrices: list[np.ndarray], labels, measure: MeasureSpec
) -> float:
    """1-NN workload identification accuracy, without the full matrix.

    Equals ``knn_accuracy(distance_matrix(matrices, measure), labels)``
    while skipping every pairwise distance the lower bounds rule out.
    """
    labels = np.asarray(labels)
    if len(matrices) != labels.size:
        raise ValidationError("labels must align with the matrices")
    with span(
        "similarity.knn_pruned",
        attrs={"n_experiments": len(matrices), "measure": measure.name},
    ):
        correct = 0
        for query in range(len(matrices)):
            nearest = nearest_neighbor(matrices, query, measure)
            if labels[nearest] == labels[query]:
                correct += 1
    return correct / len(matrices)
