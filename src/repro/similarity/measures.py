"""Registry of similarity measures and the representations they fit.

Norm-based measures apply to any same-shape representation (MTS windows,
Hist-FP, Phase-FP); the elastic measures (DTW, LCSS) exploit temporal
ordering and therefore only apply to MTS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.similarity.dtw import multivariate_dtw
from repro.similarity.lcss import multivariate_lcss
from repro.similarity.norms import NORMS


@dataclass(frozen=True)
class MeasureSpec:
    """A named distance measure plus the representations it supports."""

    name: str
    func: Callable[[np.ndarray, np.ndarray], float]
    representations: tuple[str, ...]

    def __call__(self, A: np.ndarray, B: np.ndarray) -> float:
        return self.func(A, B)


def _dtw_dependent(A, B):
    return multivariate_dtw(A, B, strategy="dependent")


def _dtw_independent(A, B):
    return multivariate_dtw(A, B, strategy="independent")


def _lcss_dependent(A, B):
    return multivariate_lcss(A, B, strategy="dependent", epsilon=0.15)


def _lcss_independent(A, B):
    return multivariate_lcss(A, B, strategy="independent", epsilon=0.15)


def measure_registry() -> dict[str, MeasureSpec]:
    """All measures of Section 5.1.2, keyed by display name."""
    registry: dict[str, MeasureSpec] = {}
    for name, func in NORMS.items():
        registry[name] = MeasureSpec(
            name=name, func=func, representations=("mts", "hist", "phase")
        )
    registry["Dependent-DTW"] = MeasureSpec(
        "Dependent-DTW", _dtw_dependent, ("mts",)
    )
    registry["Independent-DTW"] = MeasureSpec(
        "Independent-DTW", _dtw_independent, ("mts",)
    )
    registry["Dependent-LCSS"] = MeasureSpec(
        "Dependent-LCSS", _lcss_dependent, ("mts",)
    )
    registry["Independent-LCSS"] = MeasureSpec(
        "Independent-LCSS", _lcss_independent, ("mts",)
    )
    return registry


def get_measure(name: str) -> MeasureSpec:
    """Look up one measure by name."""
    registry = measure_registry()
    try:
        return registry[name]
    except KeyError:
        raise ValidationError(
            f"unknown measure {name!r}; known: {sorted(registry)}"
        ) from None


def default_measures(representation: str) -> list[MeasureSpec]:
    """Measures applicable to a representation, in registry order."""
    return [
        spec
        for spec in measure_registry().values()
        if representation in spec.representations
    ]
