"""Dynamic time warping distances (Sakoe & Chiba [78]).

Univariate DTW plus the two multivariate generalizations of
Shokoohi-Yekta et al. [83]: *independent* DTW sums per-dimension DTW
distances, *dependent* DTW warps all dimensions jointly using squared
Euclidean local costs.

Fast-path machinery for the pairwise-distance engine
(:mod:`repro.similarity.evaluation`) and the pruned 1-NN search
(:mod:`repro.similarity.pruning`) lives here too:

- :func:`lb_kim` and :func:`lb_keogh` are cheap lower bounds on the
  dependent-DTW distance — a candidate whose bound already exceeds the
  best distance found so far never needs the full dynamic program;
- ``cutoff`` on the distance functions enables *early abandoning*: the
  dynamic program stops as soon as the accumulated cost provably
  exceeds the cutoff, returning ``inf``.  A returned finite value is
  always the exact distance — abandoning only ever replaces values that
  are provably larger than the cutoff;
- :func:`batch_dependent_costs` computes the local-cost matrices for a
  whole stack of equal-shape pairs in one batched contraction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _as_series(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional")
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    return arr


def _dtw_from_cost(
    cost: np.ndarray, window: int | None, *, cutoff: float | None = None
) -> float:
    """Dynamic program over a precomputed local-cost matrix.

    The recurrence is evaluated along anti-diagonals: every cell of one
    diagonal depends only on the two previous diagonals, so each diagonal
    is computed with vectorized minima — the similarity benchmarks run
    thousands of pairwise DTWs, where the cell-by-cell loop would dominate.

    ``window`` is a Sakoe-Chiba band half-width; a band at least
    ``max(m, n) - 1`` wide can never exclude a cell, so the mask is not
    even allocated in that case.  With ``cutoff``, the program abandons
    (returning ``inf``) once two consecutive anti-diagonals both exceed
    ``cutoff**2`` — every warping path crosses one of any two consecutive
    anti-diagonals and accumulated costs only grow, so the final distance
    is provably ``> cutoff``.  Values actually returned are bit-identical
    to an un-abandoned run.
    """
    m, n = cost.shape
    if window is not None:
        window = max(window, abs(m - n))
        if window >= max(m, n) - 1:
            # The band covers the whole matrix; masking would be a no-op
            # on every diagonal.
            window = None
    acc = np.full((m + 1, n + 1), np.inf)
    acc[0, 0] = 0.0
    if window is not None:
        i_idx = np.arange(1, m + 1)[:, None]
        j_idx = np.arange(1, n + 1)[None, :]
        banned = np.abs(i_idx - j_idx) > window
    cutoff_sq = None if cutoff is None else float(cutoff) ** 2
    previous_min = np.inf
    for diagonal in range(2, m + n + 1):
        i_low = max(1, diagonal - n)
        i_high = min(m, diagonal - 1)
        if i_low > i_high:
            continue
        i = np.arange(i_low, i_high + 1)
        j = diagonal - i
        best_prev = np.minimum(
            np.minimum(acc[i - 1, j], acc[i, j - 1]), acc[i - 1, j - 1]
        )
        values = cost[i - 1, j - 1] + best_prev
        if window is not None:
            values = np.where(banned[i - 1, j - 1], np.inf, values)
        acc[i, j] = values
        if cutoff_sq is not None:
            current_min = float(np.min(values))
            if current_min > cutoff_sq and previous_min > cutoff_sq:
                return np.inf
            previous_min = current_min
    return float(np.sqrt(acc[m, n]))


def dtw_distance(
    a, b, *, window: int | None = None, cutoff: float | None = None
) -> float:
    """Univariate DTW distance with optional Sakoe-Chiba band ``window``.

    Local cost is the squared difference; the returned value is the square
    root of the accumulated cost, so DTW of equal-length series is upper
    bounded by their Euclidean distance.  With ``cutoff``, the dynamic
    program early-abandons and returns ``inf`` when the distance provably
    exceeds the cutoff.
    """
    a = _as_series(a, "a")
    b = _as_series(b, "b")
    cost = (a[:, None] - b[None, :]) ** 2
    return _dtw_from_cost(cost, window, cutoff=cutoff)


def _dependent_cost(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean local costs, vectorized."""
    sq_a = np.sum(A**2, axis=1)[:, None]
    sq_b = np.sum(B**2, axis=1)[None, :]
    return np.maximum(sq_a + sq_b - 2.0 * (A @ B.T), 0.0)


def batch_dependent_costs(
    stack_a: np.ndarray, stack_b: np.ndarray
) -> np.ndarray:
    """Local-cost matrices for a stack of equal-shape pairs at once.

    ``stack_a`` is ``(pairs, m, features)`` and ``stack_b`` is
    ``(pairs, n, features)``; the result is ``(pairs, m, n)``.  Each
    slice is bit-identical to :func:`_dependent_cost` on the single pair
    (the batched ``matmul`` runs the same GEMM per slice), so the
    distance engine's batch path reproduces the per-pair path exactly.
    """
    sq_a = np.sum(stack_a**2, axis=2)[:, :, None]
    sq_b = np.sum(stack_b**2, axis=2)[:, None, :]
    cross = np.matmul(stack_a, stack_b.transpose(0, 2, 1))
    return np.maximum(sq_a + sq_b - 2.0 * cross, 0.0)


def _as_mts(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be a (time, features) matrix")
    if arr.shape[0] == 0:
        raise ValidationError(f"{name} must not be empty")
    return arr


def lb_kim(A, B) -> float:
    """LB_Kim-style lower bound on the dependent DTW distance.

    Every warping path aligns the first samples with each other and the
    last samples with each other, so the accumulated cost is at least
    the sum of those two local costs (just the one cell when both series
    have length 1).  Costs only accumulate, hence ``lb_kim(A, B) <=
    multivariate_dtw(A, B, strategy="dependent")`` for any band.
    """
    A = _as_mts(A, "A")
    B = _as_mts(B, "B")
    if A.shape[1] != B.shape[1]:
        raise ValidationError(
            f"feature dimensions differ: {A.shape[1]} vs {B.shape[1]}"
        )
    first = float(np.sum((A[0] - B[0]) ** 2))
    if A.shape[0] == 1 and B.shape[0] == 1:
        return float(np.sqrt(first))
    last = float(np.sum((A[-1] - B[-1]) ** 2))
    return float(np.sqrt(first + last))


def _envelope(
    B: np.ndarray, n_queries: int, radius: int | None
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query-index (lower, upper) envelopes of ``B``.

    ``radius=None`` means an unconstrained alignment: the envelope is the
    global per-dimension min/max.  Otherwise query index ``i`` may align
    with ``B[i - radius : i + radius + 1]`` only (Sakoe-Chiba band).
    """
    n = B.shape[0]
    if radius is None or radius >= n - 1 and n_queries <= n:
        lower = np.broadcast_to(B.min(axis=0), (n_queries, B.shape[1]))
        upper = np.broadcast_to(B.max(axis=0), (n_queries, B.shape[1]))
        return lower, upper
    pad_right = radius + max(0, n_queries - n)
    width = 2 * radius + 1
    padded_min = np.pad(
        B, ((radius, pad_right), (0, 0)), constant_values=np.inf
    )
    padded_max = np.pad(
        B, ((radius, pad_right), (0, 0)), constant_values=-np.inf
    )
    windows_min = np.lib.stride_tricks.sliding_window_view(
        padded_min, width, axis=0
    )
    windows_max = np.lib.stride_tricks.sliding_window_view(
        padded_max, width, axis=0
    )
    lower = windows_min.min(axis=-1)[:n_queries]
    upper = windows_max.max(axis=-1)[:n_queries]
    return lower, upper


def keogh_envelope(B) -> tuple[np.ndarray, np.ndarray]:
    """Precomputable unconstrained-band LB_Keogh envelope of ``B``.

    With no Sakoe-Chiba band every query sample may align with any
    sample of ``B``, so the envelope collapses to the global
    per-dimension ``(min, max)`` — independent of the query length,
    which is what makes it precomputable once per reference series
    (the serving :class:`~repro.serve.index.ReferenceIndex` stores one
    per reference matrix).  Feed the result to
    :func:`lb_keogh_from_envelope`.
    """
    B = _as_mts(B, "B")
    return B.min(axis=0), B.max(axis=0)


def lb_keogh_from_envelope(A, lower: np.ndarray, upper: np.ndarray) -> float:
    """LB_Keogh from a precomputed :func:`keogh_envelope`.

    Bit-identical to ``lb_keogh(A, B)`` (unconstrained band) when
    ``(lower, upper)`` is ``keogh_envelope(B)``: broadcasting the 1-D
    envelope against ``A`` performs element-for-element the same float
    operations as the materialized envelope in :func:`lb_keogh`
    (pinned by ``tests/similarity/test_pruning.py``).
    """
    A = _as_mts(A, "A")
    if A.shape[1] != lower.shape[-1]:
        raise ValidationError(
            f"feature dimensions differ: {A.shape[1]} vs {lower.shape[-1]}"
        )
    exceed = np.maximum(0.0, np.maximum(A - upper, lower - A))
    return float(np.sqrt(np.sum(exceed**2)))


def lb_keogh(A, B, *, window: int | None = None) -> float:
    """LB_Keogh lower bound on the dependent DTW distance.

    Builds per-dimension envelopes of ``B`` over the (effective) warping
    band and sums the squared amounts by which ``A`` escapes them.  Every
    sample of ``A`` is aligned with at least one sample of ``B`` inside
    its band, at a local cost no smaller than the squared envelope
    exceedance, so the bound never exceeds the true distance.
    """
    A = _as_mts(A, "A")
    B = _as_mts(B, "B")
    if A.shape[1] != B.shape[1]:
        raise ValidationError(
            f"feature dimensions differ: {A.shape[1]} vs {B.shape[1]}"
        )
    radius = window
    if radius is not None:
        radius = max(int(radius), abs(A.shape[0] - B.shape[0]))
    lower, upper = _envelope(B, A.shape[0], radius)
    exceed = np.maximum(0.0, np.maximum(A - upper, lower - A))
    return float(np.sqrt(np.sum(exceed**2)))


def multivariate_dtw(
    A,
    B,
    *,
    strategy: str = "dependent",
    window: int | None = None,
    cutoff: float | None = None,
) -> float:
    """Multivariate DTW between ``(time, features)`` matrices.

    ``strategy="dependent"`` warps all dimensions together (local cost is
    the squared Euclidean distance between multivariate samples);
    ``strategy="independent"`` sums per-dimension univariate DTWs.  With
    ``cutoff``, the computation early-abandons and returns ``inf`` once
    the distance provably exceeds the cutoff; finite return values are
    exact.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    if A.ndim == 1:
        A = A[:, None]
    if B.ndim == 1:
        B = B[:, None]
    if A.ndim != 2 or B.ndim != 2:
        raise ValidationError("inputs must be (time, features) matrices")
    if A.shape[1] != B.shape[1]:
        raise ValidationError(
            f"feature dimensions differ: {A.shape[1]} vs {B.shape[1]}"
        )
    if A.shape[0] == 0 or B.shape[0] == 0:
        raise ValidationError("inputs must not be empty")
    if strategy == "dependent":
        return _dtw_from_cost(_dependent_cost(A, B), window, cutoff=cutoff)
    if strategy == "independent":
        total = 0.0
        for k in range(A.shape[1]):
            total += dtw_distance(A[:, k], B[:, k], window=window)
            # Per-dimension distances are non-negative, so a partial sum
            # past the cutoff already proves the total is past it.
            if cutoff is not None and total > cutoff:
                return np.inf
        return float(total)
    raise ValidationError(
        f"strategy must be 'dependent' or 'independent', got {strategy!r}"
    )
