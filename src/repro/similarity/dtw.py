"""Dynamic time warping distances (Sakoe & Chiba [78]).

Univariate DTW plus the two multivariate generalizations of
Shokoohi-Yekta et al. [83]: *independent* DTW sums per-dimension DTW
distances, *dependent* DTW warps all dimensions jointly using squared
Euclidean local costs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _as_series(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional")
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    return arr


def _dtw_from_cost(cost: np.ndarray, window: int | None) -> float:
    """Dynamic program over a precomputed local-cost matrix.

    The recurrence is evaluated along anti-diagonals: every cell of one
    diagonal depends only on the two previous diagonals, so each diagonal
    is computed with vectorized minima — the similarity benchmarks run
    thousands of pairwise DTWs, where the cell-by-cell loop would dominate.
    """
    m, n = cost.shape
    if window is not None:
        window = max(window, abs(m - n))
    acc = np.full((m + 1, n + 1), np.inf)
    acc[0, 0] = 0.0
    if window is not None:
        i_idx = np.arange(1, m + 1)[:, None]
        j_idx = np.arange(1, n + 1)[None, :]
        banned = np.abs(i_idx - j_idx) > window
    for diagonal in range(2, m + n + 1):
        i_low = max(1, diagonal - n)
        i_high = min(m, diagonal - 1)
        if i_low > i_high:
            continue
        i = np.arange(i_low, i_high + 1)
        j = diagonal - i
        best_prev = np.minimum(
            np.minimum(acc[i - 1, j], acc[i, j - 1]), acc[i - 1, j - 1]
        )
        values = cost[i - 1, j - 1] + best_prev
        if window is not None:
            values = np.where(banned[i - 1, j - 1], np.inf, values)
        acc[i, j] = values
    return float(np.sqrt(acc[m, n]))


def dtw_distance(a, b, *, window: int | None = None) -> float:
    """Univariate DTW distance with optional Sakoe-Chiba band ``window``.

    Local cost is the squared difference; the returned value is the square
    root of the accumulated cost, so DTW of equal-length series is upper
    bounded by their Euclidean distance.
    """
    a = _as_series(a, "a")
    b = _as_series(b, "b")
    cost = (a[:, None] - b[None, :]) ** 2
    return _dtw_from_cost(cost, window)


def multivariate_dtw(
    A, B, *, strategy: str = "dependent", window: int | None = None
) -> float:
    """Multivariate DTW between ``(time, features)`` matrices.

    ``strategy="dependent"`` warps all dimensions together (local cost is
    the squared Euclidean distance between multivariate samples);
    ``strategy="independent"`` sums per-dimension univariate DTWs.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    if A.ndim == 1:
        A = A[:, None]
    if B.ndim == 1:
        B = B[:, None]
    if A.ndim != 2 or B.ndim != 2:
        raise ValidationError("inputs must be (time, features) matrices")
    if A.shape[1] != B.shape[1]:
        raise ValidationError(
            f"feature dimensions differ: {A.shape[1]} vs {B.shape[1]}"
        )
    if A.shape[0] == 0 or B.shape[0] == 0:
        raise ValidationError("inputs must not be empty")
    if strategy == "dependent":
        # Pairwise squared Euclidean local costs, vectorized.
        sq_a = np.sum(A**2, axis=1)[:, None]
        sq_b = np.sum(B**2, axis=1)[None, :]
        cost = np.maximum(sq_a + sq_b - 2.0 * (A @ B.T), 0.0)
        return _dtw_from_cost(cost, window)
    if strategy == "independent":
        return float(
            sum(
                dtw_distance(A[:, k], B[:, k], window=window)
                for k in range(A.shape[1])
            )
        )
    raise ValidationError(
        f"strategy must be 'dependent' or 'independent', got {strategy!r}"
    )
