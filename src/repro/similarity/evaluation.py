"""Similarity-method evaluation along the paper's three axes (Section 5.2).

- **Reliability** — does the method find the most similar workload run?
  Measured by 1-NN workload-identification accuracy and mean Average
  Precision over the per-experiment similarity rankings.
- **Discrimination power** — NDCG with graded relevance: another run of
  the same workload gains 2, a workload of the same type gains 1,
  anything else 0.
- **Robustness** — the spread (standard error) of normalized distances
  between repeated runs of the same workload pair; small bars in
  Figures 5/6 mean a robust method.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.exec.arrays import acquire_store
from repro.exec.engine import ExecTask, run_tasks
from repro.ml.metrics import mean_average_precision, ndcg
from repro.obs.logging import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.tracing import span
from repro.similarity.distcache import (
    DistanceCache,
    as_distance_cache,
    matrix_digest,
    pair_key,
)
from repro.similarity.dtw import _dtw_from_cost, batch_dependent_costs
from repro.similarity.measures import MeasureSpec, _dtw_dependent
from repro.similarity.representations import RepresentationBuilder
from repro.utils.parallel import chunk_bounds, resolve_jobs

logger = get_logger(__name__)

#: Target number of chunks the miss list is split into.  The chunk
#: layout is a pure function of the miss count — never of the worker
#: count — so any ``jobs`` value walks identical chunks in identical
#: order and the assembled matrix is bit-identical to serial.
PAIR_CHUNK_TARGET = 64


def representation_matrices(
    corpus,
    builder: RepresentationBuilder,
    representation: str,
    *,
    features=None,
) -> list[np.ndarray]:
    """Build one representation matrix per experiment in the corpus."""
    matrices = [
        builder.build(result, representation, features=features)
        for result in corpus
    ]
    if not matrices:
        raise ValidationError("corpus must not be empty")
    return matrices


def _is_elastic(measure: MeasureSpec) -> bool:
    return measure.name.endswith(("DTW", "LCSS"))


def _prepare_pair(
    A: np.ndarray, B: np.ndarray, elastic: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Align one pair for a measure that needs equal shapes.

    MTS windows can differ in length between experiments; norm measures
    need aligned shapes, so pairs are truncated to their common prefix.
    Elastic measures (DTW/LCSS) handle unequal lengths natively.
    """
    if not elastic and A.shape != B.shape:
        if A.shape[1] != B.shape[1]:
            raise ValidationError(
                "representations have different feature dimensions"
            )
        rows = min(A.shape[0], B.shape[0])
        A, B = A[:rows], B[:rows]
    return A, B


def _compute_pair_chunk(
    sub_matrices: list[np.ndarray],
    local_pairs: list[tuple[int, int]],
    measure: MeasureSpec,
) -> tuple[list[float], list[float]]:
    """Distances (plus per-pair seconds) for one chunk of pairs.

    This is the unit of work shipped to pool workers, and the exact same
    function the serial path calls — which is what makes parallel output
    bit-identical to serial.  When the measure is Dependent-DTW and every
    matrix in the chunk has the same shape, the local-cost matrices for
    all pairs are built in one batched contraction
    (:func:`~repro.similarity.dtw.batch_dependent_costs`, bit-identical
    per slice to the per-pair path) before the dynamic programs run.
    """
    elastic = _is_elastic(measure)
    costs = None
    if measure.func is _dtw_dependent and local_pairs:
        shapes = {sub_matrices[k].shape for pair in local_pairs for k in pair}
        if len(shapes) == 1:
            stack_a = np.stack([sub_matrices[i] for i, _ in local_pairs])
            stack_b = np.stack([sub_matrices[j] for _, j in local_pairs])
            costs = batch_dependent_costs(stack_a, stack_b)
    values: list[float] = []
    seconds: list[float] = []
    for position, (i, j) in enumerate(local_pairs):
        start = time.perf_counter()
        if costs is not None:
            value = _dtw_from_cost(costs[position], None)
        else:
            A, B = _prepare_pair(sub_matrices[i], sub_matrices[j], elastic)
            value = float(measure(A, B))
        seconds.append(time.perf_counter() - start)
        values.append(value)
    return values, seconds


def _pair_chunk_body(
    sub_matrices: list[np.ndarray],
    local_pairs: list[tuple[int, int]],
    measure: MeasureSpec,
    chunk_index: int,
) -> tuple[list[float], list[float]]:
    with span(
        "similarity.pair_chunk",
        attrs={"chunk": chunk_index, "pairs": len(local_pairs)},
    ):
        return _compute_pair_chunk(sub_matrices, local_pairs, measure)


def _pair_chunk_unit(payload, attempt: int, in_worker: bool):
    """Engine adapter: one pair chunk, shared-memory refs pre-resolved."""
    sub_matrices, local_pairs, measure, chunk_index = payload
    return _pair_chunk_body(sub_matrices, local_pairs, measure, chunk_index)


def _chunk_payload(
    matrices: list[np.ndarray], pair_chunk: list[tuple[int, int]]
) -> tuple[list[np.ndarray], list[tuple[int, int]]]:
    """Restrict ``matrices`` to the ones a chunk references.

    Workers receive only the matrices their pairs touch (with the pair
    indices remapped), so fan-out cost scales with the chunk, not the
    corpus.
    """
    ids = sorted({k for pair in pair_chunk for k in pair})
    local = {k: position for position, k in enumerate(ids)}
    sub = [matrices[k] for k in ids]
    local_pairs = [(local[i], local[j]) for i, j in pair_chunk]
    return sub, local_pairs


def distance_matrix(
    matrices: list[np.ndarray],
    measure: MeasureSpec,
    *,
    jobs: int | None = None,
    cache: "DistanceCache | str | None" = None,
) -> np.ndarray:
    """Symmetric pairwise distance matrix over representation matrices.

    The upper-triangle pairs are scheduled in deterministic chunks;
    ``jobs`` fans the chunks out over a ``ProcessPoolExecutor``
    (``None``/``1`` serial, ``0`` one worker per CPU) with a serial
    fallback when no pool can be created.  Chunk layout depends only on
    the pair list, so **parallel output is bit-identical to serial** —
    ``tests/similarity/test_parallel_distance.py`` asserts exact array
    equality.

    ``cache`` (a :class:`~repro.similarity.distcache.DistanceCache` or a
    directory path) memoizes each pair under a content address — sweeps
    that share matrices (robustness levels, repeated sessions) only
    compute the pairs they have not seen.
    """
    n = len(matrices)
    D = np.zeros((n, n))
    cache = as_distance_cache(cache)
    n_workers = resolve_jobs(jobs)
    metrics = get_metrics()
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    with span(
        "similarity.distance_matrix",
        attrs={
            "n_experiments": n,
            "measure": measure.name,
            "workers": n_workers,
        },
    ):
        misses: list[tuple[int, int]] = []
        keys: dict[tuple[int, int], str] = {}
        if cache is not None and pairs:
            digests = [matrix_digest(M) for M in matrices]
            for i, j in pairs:
                key = pair_key(digests[i], digests[j], measure.name)
                keys[(i, j)] = key
                value = cache.get(key)
                if value is None:
                    misses.append((i, j))
                else:
                    D[i, j] = D[j, i] = value
        else:
            misses = pairs
        chunk_size = max(1, math.ceil(len(misses) / PAIR_CHUNK_TARGET))
        chunks = [
            misses[start:stop]
            for start, stop in chunk_bounds(len(misses), chunk_size)
        ]
        outputs = _run_pair_chunks(matrices, chunks, measure, n_workers)
        histogram = metrics.histogram("similarity.pair_seconds")
        for chunk, (values, seconds) in zip(chunks, outputs):
            for (i, j), value, elapsed in zip(chunk, values, seconds):
                D[i, j] = D[j, i] = value
                histogram.observe(elapsed)
                if cache is not None:
                    cache.put(keys[(i, j)], value)
    metrics.counter("similarity.pairs_computed").inc(len(misses))
    return D


def _run_pair_chunks(
    matrices: list[np.ndarray],
    chunks: list[list[tuple[int, int]]],
    measure: MeasureSpec,
    n_workers: int,
) -> list[tuple[list[float], list[float]]]:
    """Run pair chunks on the shared engine; results in chunk order.

    Each chunk runs under telemetry capture and its snapshot is merged
    back in chunk order on both paths, so spans recorded inside workers
    match a serial run exactly.  On the parallel path the matrices are
    published once into a shared-memory
    :class:`~repro.exec.arrays.ArrayStore` and chunks ship content
    refs, so fan-out no longer pickles a copy of each referenced
    matrix per chunk.
    """
    store, owned = acquire_store(n_workers > 1 and len(chunks) > 1)
    try:
        if store is not None:
            shipped = [store.put(matrix) for matrix in matrices]
        else:
            shipped = matrices
        tasks = []
        for index, chunk in enumerate(chunks):
            sub, local_pairs = _chunk_payload(shipped, chunk)
            tasks.append(
                ExecTask(
                    index=index,
                    fn=_pair_chunk_unit,
                    payload=(sub, local_pairs, measure, index),
                    task_id=f"{measure.name}-chunk-{index}",
                )
            )
        return list(
            run_tasks(
                tasks,
                jobs=n_workers,
                retry=1,
                label="similarity",
                on_error="raise",
            )
        )
    finally:
        if store is not None and owned:
            store.close()


def cross_distance_matrix(
    rows: list[np.ndarray],
    cols: list[np.ndarray],
    measure: MeasureSpec,
    *,
    jobs: int | None = None,
    cache: "DistanceCache | str | None" = None,
) -> np.ndarray:
    """Distances between two matrix sets: ``C[i, j] = d(rows[i], cols[j])``.

    The serving hot path ranks a submitted target against a fixed
    reference corpus, which needs only the ``len(rows) x len(cols)``
    cross block — not the full symmetric matrix over the union that
    :func:`distance_matrix` computes.  Chunk layout, worker fan-out, and
    the content-addressed ``cache`` follow :func:`distance_matrix`
    exactly, so output is bit-identical at any worker count and cached
    pairs are shared with the batch path (the pair key is symmetric).
    """
    if not rows or not cols:
        raise ValidationError("cross_distance_matrix needs non-empty sets")
    matrices = list(rows) + list(cols)
    offset = len(rows)
    C = np.zeros((len(rows), len(cols)))
    cache = as_distance_cache(cache)
    n_workers = resolve_jobs(jobs)
    metrics = get_metrics()
    pairs = [
        (i, offset + j) for i in range(len(rows)) for j in range(len(cols))
    ]
    with span(
        "similarity.cross_distance_matrix",
        attrs={
            "n_rows": len(rows),
            "n_cols": len(cols),
            "measure": measure.name,
            "workers": n_workers,
        },
    ):
        misses: list[tuple[int, int]] = []
        keys: dict[tuple[int, int], str] = {}
        if cache is not None:
            digests = [matrix_digest(M) for M in matrices]
            for i, j in pairs:
                key = pair_key(digests[i], digests[j], measure.name)
                keys[(i, j)] = key
                value = cache.get(key)
                if value is None:
                    misses.append((i, j))
                else:
                    C[i, j - offset] = value
        else:
            misses = pairs
        chunk_size = max(1, math.ceil(len(misses) / PAIR_CHUNK_TARGET))
        chunks = [
            misses[start:stop]
            for start, stop in chunk_bounds(len(misses), chunk_size)
        ]
        outputs = _run_pair_chunks(matrices, chunks, measure, n_workers)
        histogram = metrics.histogram("similarity.pair_seconds")
        for chunk, (values, seconds) in zip(chunks, outputs):
            for (i, j), value, elapsed in zip(chunk, values, seconds):
                C[i, j - offset] = value
                histogram.observe(elapsed)
                if cache is not None:
                    cache.put(keys[(i, j)], value)
    metrics.counter("similarity.pairs_computed").inc(len(misses))
    return C


def multi_query_cross_distances(
    query_sets: list[list[np.ndarray]],
    cols: list[np.ndarray],
    measure: MeasureSpec,
    *,
    jobs: int | None = None,
    cache: "DistanceCache | str | None" = None,
    col_digests: list[str] | None = None,
) -> list[np.ndarray]:
    """Cross-distance blocks for many queries against one column set.

    ``result[q]`` is bit-identical to
    ``cross_distance_matrix(query_sets[q], cols, measure, ...)`` — each
    per-pair value is a pure function of the pair (the batched
    Dependent-DTW contraction is bit-identical per slice to the per-pair
    path), so stitching every query's pairs into **one** chunked fan-out
    cannot change any value, only the wall-clock cost: a batch of Q
    queries x R references is one engine dispatch instead of Q
    (``tests/similarity/test_multi_query.py`` pins the equality across
    batch sizes and worker counts).

    ``col_digests`` lets callers that froze ``cols`` ahead of time (the
    serving :class:`~repro.serve.index.ReferenceIndex`) skip re-hashing
    the reference matrices on every request; when given it must align
    with ``cols``.
    """
    if not query_sets:
        raise ValidationError(
            "multi_query_cross_distances needs at least one query"
        )
    if any(not query for query in query_sets) or not cols:
        raise ValidationError(
            "multi_query_cross_distances needs non-empty sets"
        )
    if col_digests is not None and len(col_digests) != len(cols):
        raise ValidationError("col_digests must align with cols")
    matrices: list[np.ndarray] = []
    query_offsets: list[int] = []
    for query in query_sets:
        query_offsets.append(len(matrices))
        matrices.extend(query)
    col_offset = len(matrices)
    matrices.extend(cols)
    results = [
        np.zeros((len(query), len(cols))) for query in query_sets
    ]
    cache = as_distance_cache(cache)
    n_workers = resolve_jobs(jobs)
    metrics = get_metrics()
    pairs: list[tuple[int, int]] = []
    owner: dict[tuple[int, int], tuple[int, int, int]] = {}
    for q, query in enumerate(query_sets):
        base = query_offsets[q]
        for i in range(len(query)):
            for j in range(len(cols)):
                pair = (base + i, col_offset + j)
                pairs.append(pair)
                owner[pair] = (q, i, j)
    with span(
        "similarity.multi_query_cross_distances",
        attrs={
            "n_queries": len(query_sets),
            "n_cols": len(cols),
            "measure": measure.name,
            "workers": n_workers,
        },
    ):
        misses: list[tuple[int, int]] = []
        keys: dict[tuple[int, int], str] = {}
        if cache is not None:
            digests = [matrix_digest(M) for M in matrices[:col_offset]]
            if col_digests is not None:
                digests.extend(col_digests)
            else:
                digests.extend(matrix_digest(M) for M in cols)
            for i, j in pairs:
                key = pair_key(digests[i], digests[j], measure.name)
                keys[(i, j)] = key
                value = cache.get(key)
                if value is None:
                    misses.append((i, j))
                else:
                    q, row, col = owner[(i, j)]
                    results[q][row, col] = value
        else:
            misses = pairs
        chunk_size = max(1, math.ceil(len(misses) / PAIR_CHUNK_TARGET))
        chunks = [
            misses[start:stop]
            for start, stop in chunk_bounds(len(misses), chunk_size)
        ]
        outputs = _run_pair_chunks(matrices, chunks, measure, n_workers)
        histogram = metrics.histogram("similarity.pair_seconds")
        for chunk, (values, seconds) in zip(chunks, outputs):
            for (i, j), value, elapsed in zip(chunk, values, seconds):
                q, row, col = owner[(i, j)]
                results[q][row, col] = value
                histogram.observe(elapsed)
                if cache is not None:
                    cache.put(keys[(i, j)], value)
    metrics.counter("similarity.pairs_computed").inc(len(misses))
    return results


def normalized_distances(D: np.ndarray) -> np.ndarray:
    """Scale distances to [0, 1] by the largest off-diagonal entry."""
    D = np.asarray(D, dtype=float)
    off_diag = D[~np.eye(D.shape[0], dtype=bool)]
    peak = float(off_diag.max()) if off_diag.size else 0.0
    return D / peak if peak > 0 else D.copy()


def knn_accuracy(D: np.ndarray, labels) -> float:
    """1-NN workload identification accuracy over the distance matrix."""
    labels = np.asarray(labels)
    n = D.shape[0]
    if n != labels.size:
        raise ValidationError("labels must align with the distance matrix")
    if n < 2:
        raise ValidationError("need at least two experiments for 1-NN")
    correct = 0
    masked = D.copy()
    np.fill_diagonal(masked, np.inf)
    nearest = np.argmin(masked, axis=1)
    correct = int(np.sum(labels[nearest] == labels))
    return correct / n


def _ranked_indices(D: np.ndarray, query: int) -> np.ndarray:
    order = np.argsort(D[query], kind="stable")
    return order[order != query]


def ranking_mean_average_precision(D: np.ndarray, labels) -> float:
    """mAP of per-experiment similarity rankings (relevant = same workload)."""
    labels = np.asarray(labels)
    relevance_lists = []
    for query in range(D.shape[0]):
        ranked = _ranked_indices(D, query)
        relevance_lists.append(labels[ranked] == labels[query])
    return mean_average_precision(relevance_lists)


def ranking_ndcg(D: np.ndarray, labels, types) -> float:
    """Mean NDCG with graded gains (same workload 2, same type 1, else 0)."""
    labels = np.asarray(labels)
    types = np.asarray(types)
    if labels.size != types.size or labels.size != D.shape[0]:
        raise ValidationError("labels/types must align with the distance matrix")
    scores = []
    for query in range(D.shape[0]):
        ranked = _ranked_indices(D, query)
        gains = np.where(
            labels[ranked] == labels[query],
            2.0,
            np.where(types[ranked] == types[query], 1.0, 0.0),
        )
        scores.append(ndcg(gains))
    return float(np.mean(scores))


def pairwise_workload_distances(
    D: np.ndarray, labels, *, normalize: bool = True
) -> dict[tuple[str, str], tuple[float, float]]:
    """Mean and std of (normalized) distances per workload pair.

    This is the data behind the similarity bar charts (Figures 5, 6, 7,
    and 10): for each ordered pair ``(a, b)`` the value aggregates all
    cross-run distances between experiments of workload ``a`` and ``b``
    (self-pairs exclude the zero diagonal).
    """
    labels = np.asarray(labels)
    matrix = normalized_distances(D) if normalize else np.asarray(D, float)
    names = list(dict.fromkeys(labels.tolist()))
    stats: dict[tuple[str, str], tuple[float, float]] = {}
    for a in names:
        rows = np.flatnonzero(labels == a)
        for b in names:
            cols = np.flatnonzero(labels == b)
            block = matrix[np.ix_(rows, cols)]
            if a == b:
                mask = ~np.eye(len(rows), dtype=bool)
                values = block[mask]
            else:
                values = block.ravel()
            if values.size == 0:
                continue
            stats[(a, b)] = (float(values.mean()), float(values.std()))
    return stats


@dataclass(frozen=True)
class SimilarityEvaluation:
    """Scores of one (representation, measure, feature-set) combination."""

    representation: str
    measure: str
    n_features: int
    knn_accuracy: float
    mean_average_precision: float
    ndcg: float

    @property
    def perfect_reliability(self) -> bool:
        """True when the method achieves perfect 1-NN prediction."""
        return self.knn_accuracy >= 1.0


def evaluate_measure(
    corpus,
    builder: RepresentationBuilder,
    representation: str,
    measure: MeasureSpec,
    *,
    features=None,
    jobs: int | None = None,
    cache: "DistanceCache | str | None" = None,
) -> SimilarityEvaluation:
    """Full evaluation of one method combination on a corpus.

    ``jobs`` and ``cache`` are forwarded to :func:`distance_matrix`.
    """
    if representation not in measure.representations:
        raise ValidationError(
            f"measure {measure.name!r} does not support representation "
            f"{representation!r}"
        )
    with span(
        "similarity.evaluate_measure",
        attrs={"representation": representation, "measure": measure.name},
    ):
        matrices = representation_matrices(
            corpus, builder, representation, features=features
        )
        D = distance_matrix(matrices, measure, jobs=jobs, cache=cache)
        labels = [r.workload_name for r in corpus]
        types = [r.workload_type for r in corpus]
        evaluation = SimilarityEvaluation(
            representation=representation,
            measure=measure.name,
            n_features=matrices[0].shape[1],
            knn_accuracy=knn_accuracy(D, labels),
            mean_average_precision=ranking_mean_average_precision(D, labels),
            ndcg=ranking_ndcg(D, labels, types),
        )
    return evaluation
