"""Similarity-method evaluation along the paper's three axes (Section 5.2).

- **Reliability** — does the method find the most similar workload run?
  Measured by 1-NN workload-identification accuracy and mean Average
  Precision over the per-experiment similarity rankings.
- **Discrimination power** — NDCG with graded relevance: another run of
  the same workload gains 2, a workload of the same type gains 1,
  anything else 0.
- **Robustness** — the spread (standard error) of normalized distances
  between repeated runs of the same workload pair; small bars in
  Figures 5/6 mean a robust method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.metrics import mean_average_precision, ndcg
from repro.obs.metrics import get_metrics
from repro.obs.tracing import span
from repro.similarity.measures import MeasureSpec
from repro.similarity.representations import RepresentationBuilder


def representation_matrices(
    corpus,
    builder: RepresentationBuilder,
    representation: str,
    *,
    features=None,
) -> list[np.ndarray]:
    """Build one representation matrix per experiment in the corpus."""
    matrices = [
        builder.build(result, representation, features=features)
        for result in corpus
    ]
    if not matrices:
        raise ValidationError("corpus must not be empty")
    return matrices


def distance_matrix(
    matrices: list[np.ndarray], measure: MeasureSpec
) -> np.ndarray:
    """Symmetric pairwise distance matrix over representation matrices.

    MTS windows can differ in length between experiments; norm measures
    need aligned shapes, so pairs are truncated to their common prefix.
    Elastic measures (DTW/LCSS) handle unequal lengths natively.
    """
    n = len(matrices)
    D = np.zeros((n, n))
    elastic = measure.name.endswith(("DTW", "LCSS"))
    with span(
        "similarity.distance_matrix",
        attrs={"n_experiments": n, "measure": measure.name},
    ):
        for i in range(n):
            for j in range(i + 1, n):
                A, B = matrices[i], matrices[j]
                if not elastic and A.shape != B.shape:
                    rows = min(A.shape[0], B.shape[0])
                    if A.shape[1] != B.shape[1]:
                        raise ValidationError(
                            "representations have different feature dimensions"
                        )
                    A, B = A[:rows], B[:rows]
                D[i, j] = D[j, i] = measure(A, B)
    get_metrics().counter("similarity.pairs_computed").inc(n * (n - 1) // 2)
    return D


def normalized_distances(D: np.ndarray) -> np.ndarray:
    """Scale distances to [0, 1] by the largest off-diagonal entry."""
    D = np.asarray(D, dtype=float)
    off_diag = D[~np.eye(D.shape[0], dtype=bool)]
    peak = float(off_diag.max()) if off_diag.size else 0.0
    return D / peak if peak > 0 else D.copy()


def knn_accuracy(D: np.ndarray, labels) -> float:
    """1-NN workload identification accuracy over the distance matrix."""
    labels = np.asarray(labels)
    n = D.shape[0]
    if n != labels.size:
        raise ValidationError("labels must align with the distance matrix")
    if n < 2:
        raise ValidationError("need at least two experiments for 1-NN")
    correct = 0
    masked = D.copy()
    np.fill_diagonal(masked, np.inf)
    nearest = np.argmin(masked, axis=1)
    correct = int(np.sum(labels[nearest] == labels))
    return correct / n


def _ranked_indices(D: np.ndarray, query: int) -> np.ndarray:
    order = np.argsort(D[query], kind="stable")
    return order[order != query]


def ranking_mean_average_precision(D: np.ndarray, labels) -> float:
    """mAP of per-experiment similarity rankings (relevant = same workload)."""
    labels = np.asarray(labels)
    relevance_lists = []
    for query in range(D.shape[0]):
        ranked = _ranked_indices(D, query)
        relevance_lists.append(labels[ranked] == labels[query])
    return mean_average_precision(relevance_lists)


def ranking_ndcg(D: np.ndarray, labels, types) -> float:
    """Mean NDCG with graded gains (same workload 2, same type 1, else 0)."""
    labels = np.asarray(labels)
    types = np.asarray(types)
    if labels.size != types.size or labels.size != D.shape[0]:
        raise ValidationError("labels/types must align with the distance matrix")
    scores = []
    for query in range(D.shape[0]):
        ranked = _ranked_indices(D, query)
        gains = np.where(
            labels[ranked] == labels[query],
            2.0,
            np.where(types[ranked] == types[query], 1.0, 0.0),
        )
        scores.append(ndcg(gains))
    return float(np.mean(scores))


def pairwise_workload_distances(
    D: np.ndarray, labels, *, normalize: bool = True
) -> dict[tuple[str, str], tuple[float, float]]:
    """Mean and std of (normalized) distances per workload pair.

    This is the data behind the similarity bar charts (Figures 5, 6, 7,
    and 10): for each ordered pair ``(a, b)`` the value aggregates all
    cross-run distances between experiments of workload ``a`` and ``b``
    (self-pairs exclude the zero diagonal).
    """
    labels = np.asarray(labels)
    matrix = normalized_distances(D) if normalize else np.asarray(D, float)
    names = list(dict.fromkeys(labels.tolist()))
    stats: dict[tuple[str, str], tuple[float, float]] = {}
    for a in names:
        rows = np.flatnonzero(labels == a)
        for b in names:
            cols = np.flatnonzero(labels == b)
            block = matrix[np.ix_(rows, cols)]
            if a == b:
                mask = ~np.eye(len(rows), dtype=bool)
                values = block[mask]
            else:
                values = block.ravel()
            if values.size == 0:
                continue
            stats[(a, b)] = (float(values.mean()), float(values.std()))
    return stats


@dataclass(frozen=True)
class SimilarityEvaluation:
    """Scores of one (representation, measure, feature-set) combination."""

    representation: str
    measure: str
    n_features: int
    knn_accuracy: float
    mean_average_precision: float
    ndcg: float

    @property
    def perfect_reliability(self) -> bool:
        """True when the method achieves perfect 1-NN prediction."""
        return self.knn_accuracy >= 1.0


def evaluate_measure(
    corpus,
    builder: RepresentationBuilder,
    representation: str,
    measure: MeasureSpec,
    *,
    features=None,
) -> SimilarityEvaluation:
    """Full evaluation of one method combination on a corpus."""
    if representation not in measure.representations:
        raise ValidationError(
            f"measure {measure.name!r} does not support representation "
            f"{representation!r}"
        )
    with span(
        "similarity.evaluate_measure",
        attrs={"representation": representation, "measure": measure.name},
    ):
        matrices = representation_matrices(
            corpus, builder, representation, features=features
        )
        D = distance_matrix(matrices, measure)
        labels = [r.workload_name for r in corpus]
        types = [r.workload_type for r in corpus]
        evaluation = SimilarityEvaluation(
            representation=representation,
            measure=measure.name,
            n_features=matrices[0].shape[1],
            knn_accuracy=knn_accuracy(D, labels),
            mean_average_precision=ranking_mean_average_precision(D, labels),
            ndcg=ranking_ndcg(D, labels, types),
        )
    return evaluation
