"""SKU recommendation: pick the cheapest configuration meeting a target.

Combines the pipeline's pieces the way Section 6's motivation describes:
pairwise scaling models estimate each candidate SKU's throughput from
measurements on the current SKU, Roofline ceilings (Appendix B) cap the
estimates, and the cheapest candidate meeting the target wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.prediction.context import PairwiseScalingModel
from repro.prediction.evaluation import ScalingDataset
from repro.utils.rng import RandomState
from repro.workloads.engine.roofline import hardware_ceilings
from repro.workloads.spec import WorkloadSpec
from repro.workloads.sku import SKU


@dataclass(frozen=True)
class SKUAssessment:
    """Predicted viability of one candidate SKU."""

    sku: SKU
    price: float
    predicted_throughput: float
    ceiling: float
    compute_bound: bool

    @property
    def effective_throughput(self) -> float:
        """Prediction capped by the hardware ceiling."""
        return min(self.predicted_throughput, self.ceiling)

    def meets(self, target: float) -> bool:
        return self.effective_throughput >= target


@dataclass(frozen=True)
class Recommendation:
    """Outcome of an SKU search."""

    target_throughput: float
    assessments: tuple[SKUAssessment, ...]
    chosen: SKUAssessment | None

    @property
    def feasible(self) -> bool:
        return self.chosen is not None


def recommend_sku(
    workload: WorkloadSpec,
    dataset: ScalingDataset,
    current_sku_name: str,
    *,
    target_throughput: float,
    prices: dict[str, float],
    terminals: int,
    skus: dict[str, SKU],
    strategy: str = "SVM",
    random_state: RandomState = 0,
) -> Recommendation:
    """Choose the cheapest SKU predicted to sustain the target throughput.

    ``dataset`` must contain aligned observations for the current SKU and
    every candidate (see :func:`repro.prediction.build_scaling_dataset`);
    ``prices`` and ``skus`` are keyed by SKU name.
    """
    if current_sku_name not in dataset.observations:
        raise ValidationError(
            f"current SKU {current_sku_name!r} missing from the dataset"
        )
    if target_throughput <= 0:
        raise ValidationError("target_throughput must be positive")
    current_obs = dataset.observations[current_sku_name]
    current_groups = dataset.groups[current_sku_name]
    assessments = []
    for name in dataset.sku_names:
        if name == current_sku_name:
            continue
        if name not in prices or name not in skus:
            raise ValidationError(f"missing price or SKU object for {name!r}")
        model = PairwiseScalingModel(strategy, random_state=random_state)
        model.fit(
            current_obs, dataset.observations[name], groups=current_groups
        )
        predicted = float(
            model.predict(current_obs, groups=current_groups).mean()
        )
        ceilings = hardware_ceilings(workload, skus[name], terminals)
        assessments.append(
            SKUAssessment(
                sku=skus[name],
                price=float(prices[name]),
                predicted_throughput=predicted,
                ceiling=float(ceilings.ceiling),
                compute_bound=ceilings.compute_bound,
            )
        )
    feasible = [a for a in assessments if a.meets(target_throughput)]
    chosen = min(feasible, key=lambda a: a.price) if feasible else None
    return Recommendation(
        target_throughput=float(target_throughput),
        assessments=tuple(assessments),
        chosen=chosen,
    )
