"""Naive inverse-linear scaling baseline (Table 6's "Baseline" row).

Assumes latency shrinks inversely with the CPU count — equivalently,
throughput grows linearly with it: moving from ``c_a`` CPUs to ``c_b``
multiplies throughput by ``c_b / c_a``.  Real workloads scale sub-linearly
(contention, serial fractions, non-CPU bottlenecks), so this baseline
overshoots dramatically, which is exactly the point of including it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_1d


class InverseLinearBaseline:
    """Predicts target-SKU throughput by pure CPU-count proportionality."""

    def __init__(self, source_cpus: int, target_cpus: int):
        if source_cpus < 1 or target_cpus < 1:
            raise ValidationError("CPU counts must be >= 1")
        self.source_cpus = source_cpus
        self.target_cpus = target_cpus

    @property
    def factor(self) -> float:
        """The assumed throughput multiplier."""
        return self.target_cpus / self.source_cpus

    def predict(self, y_source) -> np.ndarray:
        """Scale source observations by the CPU ratio."""
        y_source = check_1d(y_source, "y_source")
        return y_source * self.factor
