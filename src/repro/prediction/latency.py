"""Workload-level versus per-transaction latency prediction (Figure 1).

Example 1 of the paper contrasts two ways of predicting a workload's
latency on new hardware: scale each transaction type individually with a
per-query model, or scale the workload's aggregate latency with a single
workload-level factor.  Individual transaction latencies are much noisier
(and interact through contention), so per-query predictions carry
substantially larger errors — 4.75%-16.57% APE versus ~2% workload-level
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.workloads.runner import ExperimentResult


def _mean_latency(results: list[ExperimentResult]) -> float:
    if not results:
        raise ValidationError("need at least one experiment result")
    return float(np.mean([r.latency_ms for r in results]))


def _mean_txn_latencies(results: list[ExperimentResult]) -> dict[str, float]:
    names = results[0].per_txn_latency_ms.keys()
    return {
        name: float(np.mean([r.per_txn_latency_ms[name] for r in results]))
        for name in names
    }


def workload_scaling_factor(
    source: list[ExperimentResult], target: list[ExperimentResult]
) -> float:
    """Aggregate latency ratio target/source learned from reference runs."""
    return _mean_latency(target) / _mean_latency(source)


def per_txn_scaling_factors(
    source: list[ExperimentResult], target: list[ExperimentResult]
) -> dict[str, float]:
    """Per-transaction-type latency ratios learned from reference runs."""
    source_latencies = _mean_txn_latencies(source)
    target_latencies = _mean_txn_latencies(target)
    missing = set(source_latencies) ^ set(target_latencies)
    if missing:
        raise ValidationError(
            f"transaction types differ between source and target: {missing}"
        )
    return {
        name: target_latencies[name] / source_latencies[name]
        for name in source_latencies
    }


@dataclass(frozen=True)
class LatencyPredictionErrors:
    """APE distributions of the two prediction granularities (Figure 1)."""

    per_txn_ape: dict[str, np.ndarray]  # one APE array per transaction type
    workload_ape: np.ndarray
    aggregated_per_txn_ape: np.ndarray  # weighted per-query roll-up errors

    def per_txn_mean_ape(self) -> dict[str, float]:
        """Mean APE per transaction type."""
        return {k: float(v.mean()) for k, v in self.per_txn_ape.items()}

    def workload_mean_ape(self) -> float:
        """Mean APE of the workload-level predictions."""
        return float(self.workload_ape.mean())


def latency_prediction_errors(
    train_source: list[ExperimentResult],
    train_target: list[ExperimentResult],
    test_source: list[ExperimentResult],
    test_target: list[ExperimentResult],
) -> LatencyPredictionErrors:
    """Evaluate both prediction granularities on held-out runs.

    Scaling factors are learned from the training runs; each held-out
    test pair yields one prediction (and one APE) per granularity:

    - *per-transaction*: every type's source latency is scaled by its own
      factor and compared to the type's actual target latency; the
      weighted roll-up of these per-type predictions is also compared to
      the actual aggregate latency.
    - *workload-level*: the aggregate source latency is scaled by the
      single workload factor.
    """
    if len(test_source) != len(test_target):
        raise ValidationError(
            "test_source and test_target must pair up one-to-one"
        )
    txn_factors = per_txn_scaling_factors(train_source, train_target)
    workload_factor = workload_scaling_factor(train_source, train_target)

    per_txn_errors: dict[str, list[float]] = {name: [] for name in txn_factors}
    workload_errors: list[float] = []
    rollup_errors: list[float] = []
    for source_run, target_run in zip(test_source, test_target):
        weights = source_run.per_txn_weights
        rollup_prediction = 0.0
        rollup_actual = 0.0
        for name, factor in txn_factors.items():
            predicted = source_run.per_txn_latency_ms[name] * factor
            actual = target_run.per_txn_latency_ms[name]
            per_txn_errors[name].append(abs(predicted - actual) / actual)
            rollup_prediction += weights[name] * predicted
            rollup_actual += weights[name] * actual
        rollup_errors.append(
            abs(rollup_prediction - rollup_actual) / rollup_actual
        )
        predicted_workload = source_run.latency_ms * workload_factor
        workload_errors.append(
            abs(predicted_workload - target_run.latency_ms)
            / target_run.latency_ms
        )
    return LatencyPredictionErrors(
        per_txn_ape={k: np.asarray(v) for k, v in per_txn_errors.items()},
        workload_ape=np.asarray(workload_errors),
        aggregated_per_txn_ape=np.asarray(rollup_errors),
    )
