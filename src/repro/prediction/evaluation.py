"""Cross-validated NRMSE evaluation of scaling strategies (Table 6).

The methodology follows Section 6.2: each workload setting contributes 30
throughput observations per SKU (3 runs x 10 random down-samples); models
are scored by 5-fold cross validation; pairwise results average the NRMSE
over the six upward scaling pairs among the 2/4/8/16-CPU SKUs.

Both evaluators ride the evaluation fast path (:mod:`repro.ml.fitexec`):
the (source SKU, target SKU) pairs of the pairwise context and the CV
folds of the single context are independent fit/score units.  ``jobs``
fans them over a process pool — per-pair seeds are derived parent-side
in serial pair order, so output is **bit-identical at any worker
count** — and ``fit_cache`` memoizes each unit's fold scores under a
content address, so a warm re-run of a Table 5/6 grid performs zero
model fits.  (Cached entries also carry the originally measured
training times; ``mean_training_time_s`` is a wall-clock observation
and is outside the bit-identical contract.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.fitexec import as_fit_cache, count_fits, fit_key, run_units
from repro.ml.metrics import normalized_rmse
from repro.ml.model_selection import KFold
from repro.obs.metrics import get_metrics
from repro.obs.tracing import span
from repro.prediction.baseline import InverseLinearBaseline
from repro.prediction.context import PairwiseScalingModel, SingleScalingModel
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.workloads.repository import ExperimentRepository
from repro.workloads.sampling import augmented_throughputs


@dataclass
class ScalingDataset:
    """Aligned performance observations of one workload setting per SKU.

    ``observations[sku_name][i]`` and ``observations[other][i]`` stem from
    the same (run, down-sample) slot, which is what lets pairwise models
    treat them as before/after measurements of the same execution context.
    ``metric`` records whether observations are throughput (txn/s) or mean
    latency (ms) — the two performance metrics of Section 6.1.2.
    """

    workload: str
    terminals: int
    sku_names: list[str]  # ascending CPU order
    cpu_counts: dict[str, int]
    observations: dict[str, np.ndarray]
    groups: dict[str, np.ndarray]
    metric: str = "throughput"
    metadata: dict = field(default_factory=dict)

    def upward_pairs(self) -> list[tuple[str, str]]:
        """All (smaller SKU, larger SKU) combinations, six for four SKUs."""
        pairs = []
        for i, source in enumerate(self.sku_names):
            for target in self.sku_names[i + 1 :]:
                pairs.append((source, target))
        return pairs

    def pooled(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All observations pooled: (cpus, throughput, groups)."""
        cpus, throughput, groups = [], [], []
        for name in self.sku_names:
            y = self.observations[name]
            cpus.append(np.full(y.size, self.cpu_counts[name], dtype=float))
            throughput.append(y)
            groups.append(self.groups[name])
        return (
            np.concatenate(cpus),
            np.concatenate(throughput),
            np.concatenate(groups),
        )


def build_scaling_dataset(
    repository: ExperimentRepository,
    workload: str,
    terminals: int,
    *,
    metric: str = "throughput",
    n_series: int = 10,
    fraction: float = 0.5,
    random_state: RandomState = 0,
) -> ScalingDataset:
    """Assemble the Table 6 observation set for one workload setting.

    ``metric="latency"`` converts each window's throughput estimate into a
    mean-latency estimate through the interactive response-time law — the
    alternative performance metric Section 6.1.2 names.
    """
    if metric not in ("throughput", "latency"):
        raise ValidationError(
            f"metric must be 'throughput' or 'latency', got {metric!r}"
        )
    subset = repository.by_workload(workload).by_terminals(terminals)
    if len(subset) == 0:
        raise ValidationError(
            f"no experiments for workload={workload!r} terminals={terminals}"
        )
    skus = sorted(subset.skus(), key=lambda s: s.cpus)
    observations: dict[str, np.ndarray] = {}
    groups: dict[str, np.ndarray] = {}
    rngs = spawn_generators(random_state, len(skus))
    for sku, rng in zip(skus, rngs):
        runs = sorted(
            subset.by_sku(sku), key=lambda r: (r.run_index, r.data_group)
        )
        values, value_groups = [], []
        for run in runs:
            # The same augmentation seed structure per run keeps slots
            # aligned across SKUs (run-major, series-minor ordering).
            samples = augmented_throughputs(
                run,
                n_series=n_series,
                fraction=fraction,
                random_state=int(rng.integers(0, 2**62)),
            )
            if metric == "latency":
                # The response-time law divides by throughput; a
                # down-sampled window with zero mean throughput would
                # yield an infinite latency that silently poisons every
                # NRMSE computed downstream.
                degenerate = int(np.sum(samples <= 0.0))
                if degenerate:
                    raise ValidationError(
                        f"cannot convert throughput to latency for "
                        f"{run.experiment_id}: {degenerate} down-sampled "
                        f"window(s) have non-positive mean throughput"
                    )
                samples = run.terminals / samples * 1000.0
            values.append(samples)
            value_groups.append(np.full(samples.size, run.data_group))
        observations[sku.name] = np.concatenate(values)
        groups[sku.name] = np.concatenate(value_groups)
    lengths = {len(v) for v in observations.values()}
    if len(lengths) != 1:
        raise ValidationError(
            "SKUs have differing observation counts; the repository must "
            "contain the same runs for every SKU"
        )
    return ScalingDataset(
        workload=workload,
        terminals=terminals,
        sku_names=[s.name for s in skus],
        cpu_counts={s.name: s.cpus for s in skus},
        observations=observations,
        groups=groups,
        metric=metric,
    )


@dataclass(frozen=True)
class StrategyScore:
    """CV outcome of one strategy on one workload setting."""

    strategy: str
    context: str  # "pairwise" | "single"
    mean_nrmse: float
    mean_training_time_s: float


def _check_evaluable(dataset: ScalingDataset, cv: int | None = None) -> None:
    """Reject datasets that would score as a silent NaN.

    A single-SKU dataset has no upward pairs, so ``np.mean([])`` would
    produce a NaN score; a dataset with fewer observation slots than CV
    folds cannot be split.  Both are caller errors and deserve a typed
    exception rather than a NaN propagating into Table 6.
    """
    if not dataset.upward_pairs():
        raise ValidationError(
            f"dataset for workload={dataset.workload!r} has "
            f"{len(dataset.sku_names)} SKU(s); scaling evaluation needs at "
            "least two to form an upward pair"
        )
    if cv is not None:
        n_slots = len(next(iter(dataset.observations.values())))
        if n_slots < cv:
            raise ValidationError(
                f"cannot split {n_slots} observation slot(s) into {cv} "
                "cross-validation folds; reduce cv or add runs/down-samples"
            )


def _pairwise_pair_unit(unit) -> tuple[list[float], list[float], int]:
    """All CV folds of one upward SKU pair: ``(scores, times, n_fits)``.

    The unit of work shipped to pool workers — and the exact same
    function the serial path calls, which is what keeps parallel grids
    bit-identical to serial.  Fit counts are returned, not published:
    workers run with their own metrics registries and the parent
    aggregates into ``ml.fits_total``.
    """
    y_source, y_target, pair_groups, strategy, cv, fold_seed, model_seed = unit
    scores, times = [], []
    n_fits = 0
    splitter = KFold(cv, shuffle=True, random_state=fold_seed)
    for train_idx, test_idx in splitter.split(y_source):
        model = PairwiseScalingModel(strategy, random_state=model_seed)
        start = time.perf_counter()
        model.fit(
            y_source[train_idx],
            y_target[train_idx],
            groups=pair_groups[train_idx],
        )
        times.append(float(time.perf_counter() - start))
        n_fits += 1
        predictions = model.predict(
            y_source[test_idx], groups=pair_groups[test_idx]
        )
        scores.append(
            float(normalized_rmse(y_target[test_idx], predictions))
        )
    return scores, times, n_fits


def evaluate_pairwise_strategy(
    dataset: ScalingDataset,
    strategy: str,
    *,
    cv: int = 5,
    random_state: RandomState = 0,
    jobs: int | None = None,
    fit_cache=None,
) -> StrategyScore:
    """Mean CV NRMSE over the upward SKU pairs (Table 6, pairwise block).

    Folds are drawn over the aligned observation *slots* (run x
    down-sample), so the same execution context never appears in both the
    train and test side of one pair.  Each pair draws two *independent*
    seeds — one for fold shuffling, one for model randomness — so fold
    assignment is decoupled from stochastic model internals.  Seeds are
    derived parent-side in serial pair order before any unit runs, so
    ``jobs`` cannot change a single output bit; ``fit_cache`` memoizes
    each pair's fold scores by content, so a warm re-run fits nothing.
    """
    rng = as_generator(random_state)
    _check_evaluable(dataset, cv)
    pairs = dataset.upward_pairs()
    # Seed derivation stays in the exact serial draw order (fold seed,
    # then model seed, per pair) so results match the serial history.
    seeds = []
    for _ in pairs:
        fold_seed = int(rng.integers(0, 2**31))
        model_seed = int(rng.integers(0, 2**31))
        seeds.append((fold_seed, model_seed))
    cache = as_fit_cache(fit_cache)
    with span(
        "prediction.evaluate_pairwise",
        attrs={"strategy": strategy, "n_pairs": len(pairs), "cv": cv},
    ):
        results: list[tuple[list[float], list[float]] | None]
        results = [None] * len(pairs)
        keys: list[str | None] = [None] * len(pairs)
        units, positions = [], []
        for position, ((source, target), (fold_seed, model_seed)) in enumerate(
            zip(pairs, seeds)
        ):
            y_source = dataset.observations[source]
            y_target = dataset.observations[target]
            pair_groups = dataset.groups[source]
            if cache is not None:
                key = fit_key(
                    estimator=f"pairwise:{strategy}",
                    arrays={
                        "y_source": y_source,
                        "y_target": y_target,
                        "groups": pair_groups,
                    },
                    seed=[fold_seed, model_seed],
                    fold=f"kfold:{cv}:shuffle",
                    scorer="nrmse",
                )
                keys[position] = key
                value = cache.get(key)
                if value is not None:
                    results[position] = (
                        [float(s) for s in value["scores"]],
                        [float(t) for t in value["times"]],
                    )
                    continue
            units.append(
                (
                    y_source, y_target, pair_groups,
                    strategy, cv, fold_seed, model_seed,
                )
            )
            positions.append(position)
        outputs = run_units(
            _pairwise_pair_unit, units, jobs=jobs,
            label=f"pairwise:{strategy}",
        )
        total_fits = 0
        for position, (scores, times, n_fits) in zip(positions, outputs):
            results[position] = (scores, times)
            total_fits += n_fits
            if cache is not None:
                cache.put(keys[position], {"scores": scores, "times": times})
        count_fits(total_fits)
    get_metrics().counter("evaluation.cells_total").inc(len(pairs) * cv)
    all_scores = [score for scores, _ in results for score in scores]
    all_times = [elapsed for _, times in results for elapsed in times]
    return StrategyScore(
        strategy=strategy,
        context="pairwise",
        mean_nrmse=float(np.mean(all_scores)),
        mean_training_time_s=float(np.mean(all_times)),
    )


def _single_fold_unit(unit) -> tuple[list[float], list[float], int]:
    """One CV fold of the single context: ``(scores, times, n_fits)``.

    Fits one pooled model on the fold's training slots and scores it per
    upward pair — the same function serially and in workers, so parallel
    output is bit-identical to serial.
    """
    (
        sku_names, cpu_counts, observations, obs_groups,
        pairs, strategy, model_seed, train_slots, test_slots,
    ) = unit
    cpus, throughput, groups = [], [], []
    for name in sku_names:
        y = observations[name][train_slots]
        cpus.append(np.full(y.size, cpu_counts[name], dtype=float))
        throughput.append(y)
        groups.append(obs_groups[name][train_slots])
    model = SingleScalingModel(strategy, random_state=model_seed)
    start = time.perf_counter()
    model.fit(
        np.concatenate(cpus),
        np.concatenate(throughput),
        groups=np.concatenate(groups),
    )
    elapsed = float(time.perf_counter() - start)
    scores = []
    for _, target in pairs:
        actual = observations[target][test_slots]
        predictions = model.predict(
            np.full(actual.size, cpu_counts[target], dtype=float),
            groups=obs_groups[target][test_slots],
        )
        scores.append(float(normalized_rmse(actual, predictions)))
    return scores, [elapsed], 1


def evaluate_single_strategy(
    dataset: ScalingDataset,
    strategy: str,
    *,
    cv: int = 5,
    random_state: RandomState = 0,
    jobs: int | None = None,
    fit_cache=None,
) -> StrategyScore:
    """CV NRMSE of one model over all SKUs (Table 6, single block).

    One model is fitted on the pooled (CPU count, throughput) data of the
    training slots across every SKU; its error is then scored per upward
    pair — the prediction at the target SKU's CPU count against that
    pair's held-out target observations — and averaged over the six pairs,
    making the value directly comparable to the pairwise context.

    With an integer ``random_state`` the CV folds are independent units:
    ``jobs`` fans them over a process pool (splits are computed
    parent-side, so output is bit-identical at any worker count) and
    ``fit_cache`` memoizes each fold's pair scores.  A generator
    ``random_state`` threads shared state through every fold, so it
    keeps the legacy serial path and ignores both knobs.
    """
    _check_evaluable(dataset, cv)
    n_slots = len(next(iter(dataset.observations.values())))
    pairs = dataset.upward_pairs()
    if not isinstance(random_state, (int, np.integer)):
        return _evaluate_single_serial(dataset, strategy, cv, random_state)
    model_seed = int(random_state)
    splitter = KFold(cv, shuffle=True, random_state=model_seed)
    folds = list(splitter.split(np.arange(n_slots)))
    cache = as_fit_cache(fit_cache)
    with span(
        "prediction.evaluate_single",
        attrs={"strategy": strategy, "n_pairs": len(pairs), "cv": cv},
    ):
        results: list[tuple[list[float], list[float]] | None]
        results = [None] * len(folds)
        keys: list[str | None] = [None] * len(folds)
        units, positions = [], []
        for position, (train_slots, test_slots) in enumerate(folds):
            if cache is not None:
                arrays = {"train": train_slots, "test": test_slots}
                for name in dataset.sku_names:
                    arrays[f"obs:{name}"] = dataset.observations[name]
                    arrays[f"groups:{name}"] = dataset.groups[name]
                key = fit_key(
                    estimator=f"single:{strategy}",
                    params={
                        "sku_order": list(dataset.sku_names),
                        "cpu_counts": {
                            name: int(dataset.cpu_counts[name])
                            for name in dataset.sku_names
                        },
                    },
                    arrays=arrays,
                    seed=model_seed,
                    fold=f"kfold:{cv}:shuffle",
                    scorer="nrmse",
                )
                keys[position] = key
                value = cache.get(key)
                if value is not None:
                    results[position] = (
                        [float(s) for s in value["scores"]],
                        [float(t) for t in value["times"]],
                    )
                    continue
            units.append(
                (
                    list(dataset.sku_names), dict(dataset.cpu_counts),
                    dataset.observations, dataset.groups,
                    pairs, strategy, model_seed, train_slots, test_slots,
                )
            )
            positions.append(position)
        outputs = run_units(
            _single_fold_unit, units, jobs=jobs,
            label=f"single:{strategy}",
        )
        total_fits = 0
        for position, (fold_scores, times, n_fits) in zip(positions, outputs):
            results[position] = (fold_scores, times)
            total_fits += n_fits
            if cache is not None:
                cache.put(
                    keys[position], {"scores": fold_scores, "times": times}
                )
        count_fits(total_fits)
    get_metrics().counter("evaluation.cells_total").inc(len(folds) * len(pairs))
    scores = [score for fold_scores, _ in results for score in fold_scores]
    times = [elapsed for _, fold_times in results for elapsed in fold_times]
    return StrategyScore(
        strategy=strategy,
        context="single",
        mean_nrmse=float(np.mean(scores)),
        mean_training_time_s=float(np.mean(times)),
    )


def _evaluate_single_serial(
    dataset: ScalingDataset, strategy: str, cv: int, random_state
) -> StrategyScore:
    """Legacy path for generator seeds: state is shared across folds."""
    n_slots = len(next(iter(dataset.observations.values())))
    scores, times = [], []
    splitter = KFold(cv, shuffle=True, random_state=random_state)
    for train_slots, test_slots in splitter.split(np.arange(n_slots)):
        cpus, throughput, groups = [], [], []
        for name in dataset.sku_names:
            y = dataset.observations[name][train_slots]
            cpus.append(np.full(y.size, dataset.cpu_counts[name], dtype=float))
            throughput.append(y)
            groups.append(dataset.groups[name][train_slots])
        model = SingleScalingModel(strategy, random_state=random_state)
        start = time.perf_counter()
        model.fit(
            np.concatenate(cpus),
            np.concatenate(throughput),
            groups=np.concatenate(groups),
        )
        times.append(time.perf_counter() - start)
        count_fits(1)
        for _, target in dataset.upward_pairs():
            actual = dataset.observations[target][test_slots]
            predictions = model.predict(
                np.full(actual.size, dataset.cpu_counts[target], dtype=float),
                groups=dataset.groups[target][test_slots],
            )
            scores.append(normalized_rmse(actual, predictions))
    return StrategyScore(
        strategy=strategy,
        context="single",
        mean_nrmse=float(np.mean(scores)),
        mean_training_time_s=float(np.mean(times)),
    )


def evaluate_baseline(dataset: ScalingDataset) -> float:
    """Mean NRMSE of the inverse-linear baseline over the upward pairs.

    For throughput data the baseline multiplies by the CPU ratio; for
    latency data it divides (the paper's "if the number of CPUs increases
    from 2 to 4, the latency reduces by half").
    """
    _check_evaluable(dataset)
    scores = []
    for source, target in dataset.upward_pairs():
        if dataset.metric == "latency":
            baseline = InverseLinearBaseline(
                dataset.cpu_counts[target], dataset.cpu_counts[source]
            )
        else:
            baseline = InverseLinearBaseline(
                dataset.cpu_counts[source], dataset.cpu_counts[target]
            )
        predictions = baseline.predict(dataset.observations[source])
        scores.append(normalized_rmse(dataset.observations[target], predictions))
    return float(np.mean(scores))
