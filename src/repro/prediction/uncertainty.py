"""Bootstrap confidence intervals for scaling predictions.

Figure 8 of the paper shades the confidence interval of each scaling
model's prediction.  This module provides a model-agnostic bootstrap: the
training pairs are resampled with replacement, the model refitted, and the
spread of the refitted predictions at the query points forms the interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.prediction.context import PairwiseScalingModel, SingleScalingModel
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_1d, check_consistent_length


@dataclass(frozen=True)
class PredictionInterval:
    """Point predictions with bootstrap bounds at one confidence level."""

    prediction: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    confidence: float

    @property
    def width(self) -> np.ndarray:
        """Interval widths per query point."""
        return self.upper - self.lower

    def contains(self, values) -> np.ndarray:
        """Element-wise membership of ``values`` in the interval."""
        values = np.asarray(values, dtype=float)
        return (values >= self.lower) & (values <= self.upper)


def _validate(confidence: float, n_bootstrap: int) -> None:
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if n_bootstrap < 10:
        raise ValidationError(
            f"n_bootstrap must be >= 10, got {n_bootstrap}"
        )


def pairwise_prediction_interval(
    strategy: str,
    y_source,
    y_target,
    query,
    *,
    groups=None,
    confidence: float = 0.9,
    n_bootstrap: int = 200,
    random_state: RandomState = 0,
) -> PredictionInterval:
    """Bootstrap interval for a pairwise scaling model's predictions.

    ``query`` holds source-SKU performance values at which predictions
    (and their uncertainty) are wanted.
    """
    _validate(confidence, n_bootstrap)
    y_source = check_1d(y_source, "y_source")
    y_target = check_1d(y_target, "y_target")
    check_consistent_length(y_source, y_target)
    query = check_1d(query, "query")
    rng = as_generator(random_state)

    reference = PairwiseScalingModel(strategy, random_state=0)
    reference.fit(y_source, y_target, groups=groups)
    point = reference.predict(query)

    n = y_source.size
    replicates = np.empty((n_bootstrap, query.size))
    for b in range(n_bootstrap):
        rows = rng.integers(0, n, size=n)
        model = PairwiseScalingModel(strategy, random_state=0)
        resampled_groups = (
            None if groups is None else np.asarray(groups)[rows]
        )
        model.fit(y_source[rows], y_target[rows], groups=resampled_groups)
        replicates[b] = model.predict(query)
    alpha = (1.0 - confidence) / 2.0
    return PredictionInterval(
        prediction=point,
        lower=np.quantile(replicates, alpha, axis=0),
        upper=np.quantile(replicates, 1.0 - alpha, axis=0),
        confidence=confidence,
    )


def single_prediction_interval(
    strategy: str,
    cpus,
    throughput,
    query_cpus,
    *,
    groups=None,
    confidence: float = 0.9,
    n_bootstrap: int = 200,
    random_state: RandomState = 0,
) -> PredictionInterval:
    """Bootstrap interval for a single-context scaling model (Figure 8a)."""
    _validate(confidence, n_bootstrap)
    cpus = check_1d(cpus, "cpus")
    throughput = check_1d(throughput, "throughput")
    check_consistent_length(cpus, throughput)
    query_cpus = check_1d(query_cpus, "query_cpus")
    rng = as_generator(random_state)

    reference = SingleScalingModel(strategy, random_state=0)
    reference.fit(cpus, throughput, groups=groups)
    query_groups = None if groups is None else np.zeros(query_cpus.size)
    point = reference.predict(query_cpus, groups=query_groups)

    n = cpus.size
    replicates = np.empty((n_bootstrap, query_cpus.size))
    for b in range(n_bootstrap):
        rows = rng.integers(0, n, size=n)
        model = SingleScalingModel(strategy, random_state=0)
        resampled_groups = (
            None if groups is None else np.asarray(groups)[rows]
        )
        model.fit(cpus[rows], throughput[rows], groups=resampled_groups)
        replicates[b] = model.predict(query_cpus, groups=query_groups)
    alpha = (1.0 - confidence) / 2.0
    return PredictionInterval(
        prediction=point,
        lower=np.quantile(replicates, alpha, axis=0),
        upper=np.quantile(replicates, 1.0 - alpha, axis=0),
        confidence=confidence,
    )
