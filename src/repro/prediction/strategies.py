"""Modeling strategies for scaling prediction (Section 6.1.2).

Maps the paper's strategy names to the from-scratch estimators in
:mod:`repro.ml`.  The LMM strategy needs group labels (the time-of-day
data groups); they are carried as the *last column* of ``X`` and split off
inside a small adapter so the shared cross-validation harness can treat
all strategies uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator, RegressorMixin
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.mars import MARSRegressor
from repro.ml.mixed_effects import LinearMixedEffectsModel
from repro.ml.neural import MLPRegressor
from repro.ml.svm import SVR
from repro.utils.rng import RandomState

#: Strategy names as they appear in Table 6.
STRATEGY_NAMES: tuple[str, ...] = (
    "Regression",
    "SVM",
    "LMM",
    "GB",
    "MARS",
    "NNet",
)


class GroupedLMMAdapter(BaseEstimator, RegressorMixin):
    """LMM adapter treating the last column of ``X`` as the group label."""

    def __init__(self, random_slopes: bool = True):
        self.random_slopes = random_slopes

    def fit(self, X, y) -> "GroupedLMMAdapter":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] < 2:
            raise ValidationError(
                "LMM expects features plus a trailing group column"
            )
        self._model = LinearMixedEffectsModel(random_slopes=self.random_slopes)
        self._model.fit(X[:, :-1], y, groups=X[:, -1].astype(int))
        return self

    def predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return self._model.predict(X[:, :-1], groups=X[:, -1].astype(int))


def strategy_uses_groups(name: str) -> bool:
    """Whether the strategy consumes the data-group column."""
    return name == "LMM"


def make_strategy(name: str, *, random_state: RandomState = 0):
    """Instantiate a fresh estimator for one Table 6 strategy."""
    if name == "Regression":
        return LinearRegression()
    if name == "SVM":
        return SVR(
            C=10.0, epsilon=0.1, kernel="rbf", random_state=random_state
        )
    if name == "LMM":
        return GroupedLMMAdapter(random_slopes=True)
    if name == "GB":
        return GradientBoostingRegressor(
            200,
            learning_rate=0.05,
            max_depth=1,
            min_samples_leaf=3,
            subsample=0.8,
            random_state=random_state,
        )
    if name == "MARS":
        return MARSRegressor(max_terms=11)
    if name == "NNet":
        # Raw target values, as a stock sklearn-style MLP would see them;
        # on the tiny scaling datasets this is exactly the failure mode
        # Table 6 reports for the NNet strategy.
        return MLPRegressor(
            (100, 100, 100, 100, 100, 100),
            max_iter=80,
            standardize_target=False,
            random_state=random_state,
        )
    raise ValidationError(
        f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}"
    )
