"""Modeling contexts: single versus pairwise scaling models (Section 6.1.1).

- :class:`SingleScalingModel` fits one model over all hardware settings:
  throughput as a function of the CPU count.
- :class:`PairwiseScalingModel` models one SKU pair: the performance at
  the target SKU as a function of the performance at the source SKU.  In
  *normalized* mode (the default) both sides are scaled by the mean source
  performance, so the model learns a scaling *factor* and transfers across
  workloads of different absolute throughput — exactly what the
  end-to-end prediction of Section 6.2.3 requires.
- :class:`PairwiseModelSet` manages models for every upward SKU pair.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.prediction.strategies import make_strategy, strategy_uses_groups
from repro.utils.rng import RandomState
from repro.utils.validation import check_1d, check_consistent_length


def _with_group_column(X: np.ndarray, groups) -> np.ndarray:
    if groups is None:
        groups = np.zeros(X.shape[0])
    groups = np.asarray(groups, dtype=float).reshape(-1, 1)
    return np.hstack([X, groups])


class SingleScalingModel:
    """One model of throughput versus CPU count across all SKUs.

    The design matrix carries ``[cpus, sqrt(cpus)]``: scaling curves are
    concave (Amdahl), so the square-root basis lets the linear strategies
    express the flattening without changing the tree-based ones (monotone
    transforms are invisible to trees).
    """

    def __init__(self, strategy: str = "SVM", *, random_state: RandomState = 0):
        self.strategy = strategy
        self.random_state = random_state

    @staticmethod
    def _design(cpus: np.ndarray) -> np.ndarray:
        return np.column_stack([cpus, np.sqrt(cpus)])

    def fit(self, cpus, throughput, *, groups=None) -> "SingleScalingModel":
        cpus = check_1d(cpus, "cpus")
        throughput = check_1d(throughput, "throughput")
        check_consistent_length(cpus, throughput)
        X = self._design(cpus)
        if strategy_uses_groups(self.strategy):
            X = _with_group_column(X, groups)
        self._model = make_strategy(self.strategy, random_state=self.random_state)
        self._model.fit(X, throughput)
        return self

    def predict(self, cpus, *, groups=None) -> np.ndarray:
        if not hasattr(self, "_model"):
            raise NotFittedError("SingleScalingModel is not fitted")
        cpus = check_1d(cpus, "cpus")
        X = self._design(cpus)
        if strategy_uses_groups(self.strategy):
            X = _with_group_column(X, groups)
        return np.asarray(self._model.predict(X), dtype=float)


class PairwiseScalingModel:
    """Scaling model for one (source SKU, target SKU) pair.

    With ``normalize=True`` the model is fitted on
    ``y_target / mean(y_source)`` versus ``y_source / mean(y_source)``:
    scale-free, so a model trained on one workload's runs can predict
    another workload's scaling given only its source-SKU observations.
    """

    def __init__(
        self,
        strategy: str = "SVM",
        *,
        normalize: bool = True,
        random_state: RandomState = 0,
    ):
        self.strategy = strategy
        self.normalize = normalize
        self.random_state = random_state

    def fit(self, y_source, y_target, *, groups=None) -> "PairwiseScalingModel":
        y_source = check_1d(y_source, "y_source")
        y_target = check_1d(y_target, "y_target")
        check_consistent_length(y_source, y_target)
        self._source_scale = float(y_source.mean()) if self.normalize else 1.0
        if self._source_scale <= 0:
            raise ValidationError("source observations must be positive")
        X = (y_source / self._source_scale).reshape(-1, 1)
        t = y_target / self._source_scale
        if strategy_uses_groups(self.strategy):
            X = _with_group_column(X, groups)
        self._model = make_strategy(self.strategy, random_state=self.random_state)
        self._model.fit(X, t)
        return self

    def predict(self, y_source, *, groups=None) -> np.ndarray:
        """Predict target-SKU performance for same-workload observations."""
        if not hasattr(self, "_model"):
            raise NotFittedError("PairwiseScalingModel is not fitted")
        y_source = check_1d(y_source, "y_source")
        X = (y_source / self._source_scale).reshape(-1, 1)
        if strategy_uses_groups(self.strategy):
            X = _with_group_column(X, groups)
        return np.asarray(self._model.predict(X), dtype=float) * self._source_scale

    def transfer(self, y_source_other) -> np.ndarray:
        """Predict a *different* workload's target performance.

        The other workload's source observations are normalized by their
        own mean, pushed through the learned scaling relationship, and
        rescaled back — the cross-workload transfer of Section 6.2.3.
        Requires a normalized model.
        """
        if not hasattr(self, "_model"):
            raise NotFittedError("PairwiseScalingModel is not fitted")
        if not self.normalize:
            raise ValidationError(
                "cross-workload transfer requires normalize=True"
            )
        y_source_other = check_1d(y_source_other, "y_source_other")
        other_scale = float(y_source_other.mean())
        if other_scale <= 0:
            raise ValidationError("source observations must be positive")
        X = (y_source_other / other_scale).reshape(-1, 1)
        if strategy_uses_groups(self.strategy):
            X = _with_group_column(X, None)
        factors = np.asarray(self._model.predict(X), dtype=float)
        return factors * other_scale

    def scaling_factor(self) -> float:
        """The model's predicted factor at the mean source performance."""
        prediction = self.predict(np.array([self._source_scale]))
        return float(prediction[0] / self._source_scale)


class PairwiseModelSet:
    """Pairwise models for every upward SKU pair of a scaling dataset."""

    def __init__(
        self,
        strategy: str = "SVM",
        *,
        normalize: bool = True,
        random_state: RandomState = 0,
    ):
        self.strategy = strategy
        self.normalize = normalize
        self.random_state = random_state
        self._models: dict[tuple[str, str], PairwiseScalingModel] = {}

    def fit(
        self,
        observations: dict[str, np.ndarray],
        *,
        groups: dict[str, np.ndarray] | None = None,
        cpu_counts: dict[str, int] | None = None,
    ) -> "PairwiseModelSet":
        """Fit one model per upward pair.

        ``observations`` maps SKU name to aligned observation vectors (the
        i-th entries of two SKUs belong to the same run/subsample).
        ``cpu_counts`` orders the SKUs; without it, insertion order is
        treated as ascending capacity.
        """
        names = list(observations)
        if len(names) < 2:
            raise ValidationError("need at least two SKUs for pairwise models")
        if cpu_counts is not None:
            names.sort(key=lambda n: cpu_counts[n])
        self.sku_order_ = names
        self._models = {}
        for i, source in enumerate(names):
            for target in names[i + 1 :]:
                model = PairwiseScalingModel(
                    self.strategy,
                    normalize=self.normalize,
                    random_state=self.random_state,
                )
                pair_groups = None if groups is None else groups[source]
                model.fit(
                    observations[source],
                    observations[target],
                    groups=pair_groups,
                )
                self._models[(source, target)] = model
        return self

    def model(self, source: str, target: str) -> PairwiseScalingModel:
        """The fitted model for one upward pair."""
        try:
            return self._models[(source, target)]
        except KeyError:
            raise ValidationError(
                f"no model for pair ({source!r}, {target!r}); "
                f"available: {sorted(self._models)}"
            ) from None

    @property
    def pairs(self) -> list[tuple[str, str]]:
        """All fitted (source, target) pairs."""
        return sorted(self._models)
