"""Workload resource (scaling) prediction (Section 6 of the paper).

- :mod:`repro.prediction.strategies` — the six modeling strategies of
  Section 6.1.2 (Regression, SVM, LMM, GB, MARS, NNet) as a registry.
- :mod:`repro.prediction.context` — the two modeling contexts of
  Section 6.1.1: one *single* model across all SKUs versus *pairwise*
  scaling models per SKU pair.
- :mod:`repro.prediction.baseline` — the naive inverse-linear scaling
  baseline of Table 6.
- :mod:`repro.prediction.evaluation` — the 5-fold cross-validated NRMSE
  harness reproducing Table 6.
- :mod:`repro.prediction.latency` — workload-level versus per-transaction
  latency scaling prediction (the Figure 1 comparison).
- :mod:`repro.prediction.roofline` — Roofline-augmented piecewise-linear
  prediction (Appendix B / Figure 12).
"""

from repro.prediction.strategies import (
    STRATEGY_NAMES,
    make_strategy,
    strategy_uses_groups,
)
from repro.prediction.context import (
    PairwiseModelSet,
    PairwiseScalingModel,
    SingleScalingModel,
)
from repro.prediction.baseline import InverseLinearBaseline
from repro.prediction.evaluation import (
    ScalingDataset,
    build_scaling_dataset,
    evaluate_baseline,
    evaluate_pairwise_strategy,
    evaluate_single_strategy,
)
from repro.prediction.latency import (
    latency_prediction_errors,
    per_txn_scaling_factors,
    workload_scaling_factor,
)
from repro.prediction.roofline import RooflinePredictor
from repro.prediction.ridgeline import RidgelinePredictor
from repro.prediction.recommend import (
    Recommendation,
    SKUAssessment,
    recommend_sku,
)
from repro.prediction.uncertainty import (
    PredictionInterval,
    pairwise_prediction_interval,
    single_prediction_interval,
)

__all__ = [
    "STRATEGY_NAMES",
    "make_strategy",
    "strategy_uses_groups",
    "SingleScalingModel",
    "PairwiseScalingModel",
    "PairwiseModelSet",
    "InverseLinearBaseline",
    "ScalingDataset",
    "build_scaling_dataset",
    "evaluate_pairwise_strategy",
    "evaluate_single_strategy",
    "evaluate_baseline",
    "per_txn_scaling_factors",
    "workload_scaling_factor",
    "latency_prediction_errors",
    "RooflinePredictor",
    "RidgelinePredictor",
    "SKUAssessment",
    "Recommendation",
    "recommend_sku",
    "PredictionInterval",
    "pairwise_prediction_interval",
    "single_prediction_interval",
]
