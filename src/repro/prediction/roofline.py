"""Roofline-augmented scaling prediction (Appendix B, Figure 12).

A plain linear model extrapolates throughput past the hardware's
performance ceiling; combining it with a Roofline-style cap produces the
piecewise-linear predictor of Figure 12: linear while compute-bound, flat
once a non-CPU resource (memory, IO) saturates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.linear import LinearRegression
from repro.utils.validation import check_1d, check_consistent_length


class RooflinePredictor:
    """Linear throughput-vs-CPUs model capped by a performance ceiling.

    Parameters
    ----------
    ceiling:
        The non-CPU throughput bound.  When omitted, it is estimated at
        fit time as the maximum observed throughput — appropriate when the
        training data already includes at least one saturated
        configuration (otherwise pass the known hardware ceiling, e.g.
        from :func:`repro.workloads.engine.roofline.hardware_ceilings`).
    """

    def __init__(self, ceiling: float | None = None):
        if ceiling is not None and ceiling <= 0:
            raise ValidationError(f"ceiling must be positive, got {ceiling}")
        self.ceiling = ceiling

    def fit(self, cpus, throughput) -> "RooflinePredictor":
        cpus = check_1d(cpus, "cpus")
        throughput = check_1d(throughput, "throughput")
        check_consistent_length(cpus, throughput)
        self._linear = LinearRegression()
        if self.ceiling is None:
            self.ceiling_ = float(throughput.max())
            # Fit the compute-bound region only: points at the ceiling are
            # saturated and would flatten the linear part's slope.
            mask = throughput < 0.97 * self.ceiling_
            if mask.sum() >= 2:
                self._linear.fit(cpus[mask].reshape(-1, 1), throughput[mask])
            else:
                self._linear.fit(cpus.reshape(-1, 1), throughput)
        else:
            self.ceiling_ = float(self.ceiling)
            mask = throughput < 0.97 * self.ceiling_
            if mask.sum() >= 2:
                self._linear.fit(cpus[mask].reshape(-1, 1), throughput[mask])
            else:
                self._linear.fit(cpus.reshape(-1, 1), throughput)
        return self

    def predict_linear(self, cpus) -> np.ndarray:
        """The uncapped linear extrapolation (the red line in Figure 12)."""
        if not hasattr(self, "_linear"):
            raise NotFittedError("RooflinePredictor is not fitted")
        cpus = check_1d(cpus, "cpus")
        return self._linear.predict(cpus.reshape(-1, 1))

    def predict(self, cpus) -> np.ndarray:
        """The piecewise-linear prediction (the blue line in Figure 12)."""
        return np.minimum(self.predict_linear(cpus), self.ceiling_)

    def saturation_point(self) -> float:
        """CPU count where the linear model meets the ceiling."""
        if not hasattr(self, "_linear"):
            raise NotFittedError("RooflinePredictor is not fitted")
        slope = float(self._linear.coef_[0])
        if slope <= 1e-9 * max(self.ceiling_, 1.0):
            return float("inf")
        return (self.ceiling_ - self._linear.intercept_) / slope
