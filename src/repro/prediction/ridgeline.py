"""Ridgeline model: a two-dimensional Roofline (Checconi et al. [17]).

The paper's future-work section proposes combining non-linear scaling
strategies with multi-resource ceilings when SKUs vary along several
dimensions (CPU *and* memory, network, ...).  The Ridgeline predictor
models throughput as the minimum of per-resource attainable curves:

    throughput(cpus, memory) = min(f_cpu(cpus), f_mem(memory), ceiling)

where each per-resource curve is a concave scaling fit (linear in the
resource and its square root) learned from configurations where that
resource was the binding constraint.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.linear import LinearRegression
from repro.utils.validation import check_1d, check_consistent_length


def _concave_design(values: np.ndarray) -> np.ndarray:
    return np.column_stack([values, np.sqrt(values)])


class RidgelinePredictor:
    """Two-resource piecewise scaling model (CPU x memory).

    Fit on observations spanning several (cpus, memory) configurations;
    each per-resource curve is estimated from the observations where that
    resource is (heuristically) the binding one: the bottom quantile of
    throughput-per-unit-of-resource identifies configurations starved of
    it.
    """

    def __init__(self, *, binding_quantile: float = 0.5):
        if not 0.0 < binding_quantile <= 1.0:
            raise ValidationError(
                f"binding_quantile must be in (0, 1], got {binding_quantile}"
            )
        self.binding_quantile = binding_quantile

    def fit(self, cpus, memory_gb, throughput) -> "RidgelinePredictor":
        cpus = check_1d(cpus, "cpus")
        memory_gb = check_1d(memory_gb, "memory_gb")
        throughput = check_1d(throughput, "throughput")
        check_consistent_length(cpus, memory_gb, throughput)
        if np.unique(cpus).size < 2 or np.unique(memory_gb).size < 2:
            raise ValidationError(
                "need at least two distinct values per resource dimension"
            )
        self._cpu_curve = self._fit_resource_curve(cpus, memory_gb, throughput)
        self._mem_curve = self._fit_resource_curve(memory_gb, cpus, throughput)
        self.ceiling_ = float(throughput.max()) * 1.05
        return self

    def _fit_resource_curve(
        self,
        resource: np.ndarray,
        other: np.ndarray,
        throughput: np.ndarray,
    ) -> LinearRegression:
        """Fit throughput vs one resource on its binding configurations.

        A configuration is treated as bound by ``resource`` when, among
        configurations with the same ``resource`` value, it has ample
        amounts of the *other* resource yet its throughput is low relative
        to that other resource — i.e. adding more of the other resource
        did not help.  Practically: keep, per resource level, the
        observations with the highest ``other`` values (the other resource
        is then not the constraint).
        """
        keep = np.zeros(resource.size, dtype=bool)
        for level in np.unique(resource):
            mask = resource == level
            threshold = np.quantile(other[mask], 1.0 - self.binding_quantile)
            keep |= mask & (other >= threshold)
        model = LinearRegression()
        model.fit(_concave_design(resource[keep]), throughput[keep])
        return model

    def predict(self, cpus, memory_gb) -> np.ndarray:
        """Min of the per-resource attainable curves, capped."""
        if not hasattr(self, "_cpu_curve"):
            raise NotFittedError("RidgelinePredictor is not fitted")
        cpus = check_1d(cpus, "cpus")
        memory_gb = check_1d(memory_gb, "memory_gb")
        check_consistent_length(cpus, memory_gb)
        cpu_bound = self._cpu_curve.predict(_concave_design(cpus))
        mem_bound = self._mem_curve.predict(_concave_design(memory_gb))
        return np.minimum(
            np.minimum(cpu_bound, mem_bound), self.ceiling_
        )

    def binding_resource(self, cpus: float, memory_gb: float) -> str:
        """Which resource the model predicts is the constraint."""
        prediction_cpu = float(
            self._cpu_curve.predict(_concave_design(np.array([cpus])))[0]
        )
        prediction_mem = float(
            self._mem_curve.predict(_concave_design(np.array([memory_gb])))[0]
        )
        return "cpu" if prediction_cpu <= prediction_mem else "memory"
