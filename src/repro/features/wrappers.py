"""Wrapper feature-selection strategies: RFE and SFS (Section 4.1.3).

Both iterate model training over feature subsets.  RFE repeatedly drops the
feature the model deems least important; SFS greedily adds (forward) or
removes (backward) the feature that most helps cross-validated prediction
performance.  Either yields a complete elimination/insertion order, i.e. an
integer rank per feature — the rank-based output class of Section 4.2.

The estimator is chosen by name, matching the paper's variants: ``linear``
(least squares on integer-encoded labels), ``dectree`` (CART classifier),
and ``logreg`` (L2 logistic regression).

Wrappers are the most expensive strategies of Table 3 (O(d²) model fits),
so both ride the evaluation fast path (:mod:`repro.ml.fitexec`):

- ``jobs`` fans the independent candidate subsets of each SFS greedy
  step over a process pool.  Candidate scores are computed by the exact
  same worker function serially and in parallel and the greedy argmax
  walks them in the serial order, so the selected feature order is
  **bit-identical at any worker count**.  (RFE accepts ``jobs`` for API
  symmetry, but its elimination steps are inherently sequential — one
  fit per step — so the knob has no effect there.)
- ``fit_cache`` memoizes each candidate's CV score (and each RFE step's
  importance vector) under a content address; a warm re-run of a
  selection performs zero model fits.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.features.base import RankBasedSelector, encode_labels
from repro.ml.base import clone
from repro.ml.fitexec import as_fit_cache, count_fits, fit_key, run_units
from repro.ml.linear import LinearRegression
from repro.ml.logistic import LogisticRegression
from repro.ml.model_selection import KFold
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeClassifier

ESTIMATOR_NAMES = ("linear", "dectree", "logreg")


def _make_estimator(name: str):
    if name == "linear":
        return LinearRegression()
    if name == "dectree":
        return DecisionTreeClassifier(max_depth=6, random_state=0)
    if name == "logreg":
        return LogisticRegression(alpha=1.0, max_iter=50)
    raise ValidationError(
        f"unknown estimator {name!r}; expected one of {ESTIMATOR_NAMES}"
    )


def _estimator_params(name: str) -> dict:
    """Canonicalized constructor parameters, for fit-cache keying."""
    if name == "linear":
        return {}
    if name == "dectree":
        return {"max_depth": 6, "random_state": 0}
    return {"alpha": 1.0, "max_iter": 50}


def _estimator_is_regressor(name: str) -> bool:
    return name == "linear"


def _importances(model, name: str) -> np.ndarray:
    if name == "linear":
        return np.abs(model.coef_)
    if name == "dectree":
        return model.feature_importances_
    return model.feature_importances_  # logreg: L2 norm of class coefs


def _sfs_cv_score(unit) -> tuple[float, int]:
    """Mean CV score of one candidate subset: ``(score, n_fits)``.

    This is the unit of work shipped to pool workers, and the exact same
    function the serial path calls — which is what makes parallel SFS
    bit-identical to serial.  Fit counts are returned (not published)
    because workers run with their own metrics registries; the parent
    aggregates them into ``ml.fits_total``.
    """
    subset, target, estimator, cv = unit
    scores = []
    n_fits = 0
    splitter = KFold(cv, shuffle=True, random_state=0)
    for train_idx, test_idx in splitter.split(subset):
        model = clone(_make_estimator(estimator))
        n_fits += 1
        try:
            model.fit(subset[train_idx], target[train_idx])
        except Exception:
            # A degenerate fold (e.g. one class only) scores worst.
            scores.append(-np.inf)
            continue
        scores.append(model.score(subset[test_idx], target[test_idx]))
    return float(np.mean(scores)), n_fits


class RecursiveFeatureElimination(RankBasedSelector):
    """RFE: drop the least important feature until none remain.

    The elimination order *is* the ranking: the last surviving feature has
    rank 1.  Features are standardized so coefficient magnitudes are
    comparable across telemetry units.
    """

    def __init__(
        self,
        estimator: str = "logreg",
        *,
        step: int = 1,
        jobs: int | None = None,
        fit_cache=None,
    ):
        if estimator not in ESTIMATOR_NAMES:
            raise ValidationError(
                f"unknown estimator {estimator!r}; expected {ESTIMATOR_NAMES}"
            )
        if step < 1:
            raise ValidationError(f"step must be >= 1, got {step}")
        self.estimator = estimator
        self.step = step
        self.jobs = jobs  # accepted for API symmetry; RFE is sequential
        self.fit_cache = fit_cache
        self.name = f"RFE {estimator}"

    def _step_importances(
        self, subset: np.ndarray, target, codes: np.ndarray, cache
    ) -> np.ndarray:
        """Importances of one elimination step, memoized by content."""
        key = None
        if cache is not None:
            key = fit_key(
                estimator=self.estimator,
                params=_estimator_params(self.estimator),
                arrays={"X": subset, "y": codes},
                fold="rfe",
                scorer="importances",
            )
            value = cache.get(key)
            if value is not None:
                return np.asarray(value, dtype=float)
        model = _make_estimator(self.estimator)
        model.fit(subset, target)
        count_fits(1)
        importances = np.asarray(
            _importances(model, self.estimator), dtype=float
        )
        if cache is not None:
            cache.put(key, [float(value) for value in importances])
        return importances

    def fit(self, X, y) -> "RecursiveFeatureElimination":
        X, y = self._validate(X, y)
        Xs = StandardScaler().fit_transform(X)
        codes, _ = encode_labels(y)
        target = codes.astype(float) if _estimator_is_regressor(self.estimator) else y
        cache = as_fit_cache(self.fit_cache)
        remaining = list(range(X.shape[1]))
        ranking = np.zeros(X.shape[1], dtype=int)
        next_rank = X.shape[1]
        while remaining:
            if len(remaining) == 1:
                ranking[remaining[0]] = 1
                break
            importances = self._step_importances(
                Xs[:, remaining], target, codes, cache
            )
            n_drop = min(self.step, len(remaining) - 1)
            drop_positions = np.argsort(importances, kind="stable")[:n_drop]
            # Drop the least important; assign them the worst open ranks.
            for position in sorted(drop_positions, reverse=True):
                ranking[remaining[position]] = next_rank
                next_rank -= 1
                del remaining[position]
        self.ranking_ = ranking
        return self


class SequentialFeatureSelector(RankBasedSelector):
    """SFS: greedy forward addition or backward removal of features.

    The scoring metric is cross-validated prediction quality: accuracy for
    the classifier estimators, R^2 for the linear one.  Running the greedy
    process to completion yields a full feature ranking — forward order
    directly, backward order reversed.
    """

    def __init__(
        self,
        estimator: str = "logreg",
        *,
        direction: str = "forward",
        cv: int = 3,
        jobs: int | None = None,
        fit_cache=None,
    ):
        if estimator not in ESTIMATOR_NAMES:
            raise ValidationError(
                f"unknown estimator {estimator!r}; expected {ESTIMATOR_NAMES}"
            )
        if direction not in ("forward", "backward"):
            raise ValidationError(
                f"direction must be 'forward' or 'backward', got {direction!r}"
            )
        if cv < 2:
            raise ValidationError(f"cv must be >= 2, got {cv}")
        self.estimator = estimator
        self.direction = direction
        self.cv = cv
        self.jobs = jobs
        self.fit_cache = fit_cache
        prefix = "Fw" if direction == "forward" else "Bw"
        self.name = f"{prefix} SFS {estimator}"

    def _cv_score(
        self, X: np.ndarray, target: np.ndarray, columns: list[int]
    ) -> float:
        """Mean CV score of the estimator restricted to ``columns``."""
        score, n_fits = _sfs_cv_score(
            (X[:, columns], target, self.estimator, self.cv)
        )
        count_fits(n_fits)
        return score

    def _candidate_scores(
        self,
        X: np.ndarray,
        target: np.ndarray,
        codes: np.ndarray,
        candidates: list[list[int]],
    ) -> list[float]:
        """CV scores of one greedy step's candidate subsets, in order.

        The candidates are independent, so cache misses fan out over
        :func:`~repro.ml.fitexec.run_units`; results come back in
        candidate order and the caller's argmax walks them serially, so
        the chosen feature is identical at any worker count.
        """
        cache = as_fit_cache(self.fit_cache)
        scores: list[float | None] = [None] * len(candidates)
        keys: list[str | None] = [None] * len(candidates)
        units, positions = [], []
        for position, columns in enumerate(candidates):
            subset = X[:, columns]
            if cache is not None:
                key = fit_key(
                    estimator=self.estimator,
                    params=_estimator_params(self.estimator),
                    arrays={"X": subset, "y": codes},
                    seed=0,
                    fold=f"kfold:{self.cv}:shuffle",
                    scorer="cv_mean",
                )
                keys[position] = key
                value = cache.get(key)
                if value is not None:
                    scores[position] = float(value)
                    continue
            units.append((subset, target, self.estimator, self.cv))
            positions.append(position)
        outputs = run_units(
            _sfs_cv_score, units, jobs=self.jobs,
            label=f"sfs:{self.estimator}",
        )
        total_fits = 0
        for position, (score, n_fits) in zip(positions, outputs):
            scores[position] = score
            total_fits += n_fits
            if cache is not None:
                cache.put(keys[position], score)
        count_fits(total_fits)
        return scores

    def fit(self, X, y) -> "SequentialFeatureSelector":
        X, y = self._validate(X, y)
        Xs = StandardScaler().fit_transform(X)
        codes, _ = encode_labels(y)
        target = (
            codes.astype(float)
            if _estimator_is_regressor(self.estimator)
            else np.asarray(y)
        )
        n_features = X.shape[1]
        if self.direction == "forward":
            order = self._forward_order(Xs, target, codes, n_features)
        else:
            order = self._backward_order(Xs, target, codes, n_features)
        ranking = np.zeros(n_features, dtype=int)
        for rank, feature in enumerate(order, start=1):
            ranking[feature] = rank
        self.ranking_ = ranking
        return self

    def _forward_order(
        self, X, target, codes, n_features: int
    ) -> list[int]:
        """Features in the order the greedy forward pass adds them."""
        selected: list[int] = []
        remaining = list(range(n_features))
        while remaining:
            candidates = [selected + [feature] for feature in remaining]
            scores = self._candidate_scores(X, target, codes, candidates)
            best_feature, best_score = None, -np.inf
            for feature, score in zip(remaining, scores):
                if score > best_score:
                    best_score, best_feature = score, feature
            selected.append(best_feature)
            remaining.remove(best_feature)
        return selected

    def _backward_order(
        self, X, target, codes, n_features: int
    ) -> list[int]:
        """Importance order from greedy backward elimination.

        The feature removed first mattered least (worst rank); the final
        survivor ranks 1.
        """
        remaining = list(range(n_features))
        removal_order: list[int] = []
        while len(remaining) > 1:
            candidates = [
                [f for f in remaining if f != feature] for feature in remaining
            ]
            scores = self._candidate_scores(X, target, codes, candidates)
            best_feature, best_score = None, -np.inf
            for feature, score in zip(remaining, scores):
                if score > best_score:
                    best_score, best_feature = score, feature
            removal_order.append(best_feature)
            remaining.remove(best_feature)
        removal_order.append(remaining[0])
        return list(reversed(removal_order))
