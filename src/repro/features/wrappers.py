"""Wrapper feature-selection strategies: RFE and SFS (Section 4.1.3).

Both iterate model training over feature subsets.  RFE repeatedly drops the
feature the model deems least important; SFS greedily adds (forward) or
removes (backward) the feature that most helps cross-validated prediction
performance.  Either yields a complete elimination/insertion order, i.e. an
integer rank per feature — the rank-based output class of Section 4.2.

The estimator is chosen by name, matching the paper's variants: ``linear``
(least squares on integer-encoded labels), ``dectree`` (CART classifier),
and ``logreg`` (L2 logistic regression).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.features.base import RankBasedSelector, encode_labels
from repro.ml.base import clone
from repro.ml.linear import LinearRegression
from repro.ml.logistic import LogisticRegression
from repro.ml.model_selection import KFold
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeClassifier

ESTIMATOR_NAMES = ("linear", "dectree", "logreg")


def _make_estimator(name: str):
    if name == "linear":
        return LinearRegression()
    if name == "dectree":
        return DecisionTreeClassifier(max_depth=6, random_state=0)
    if name == "logreg":
        return LogisticRegression(alpha=1.0, max_iter=50)
    raise ValidationError(
        f"unknown estimator {name!r}; expected one of {ESTIMATOR_NAMES}"
    )


def _estimator_is_regressor(name: str) -> bool:
    return name == "linear"


def _importances(model, name: str) -> np.ndarray:
    if name == "linear":
        return np.abs(model.coef_)
    if name == "dectree":
        return model.feature_importances_
    return model.feature_importances_  # logreg: L2 norm of class coefs


class RecursiveFeatureElimination(RankBasedSelector):
    """RFE: drop the least important feature until none remain.

    The elimination order *is* the ranking: the last surviving feature has
    rank 1.  Features are standardized so coefficient magnitudes are
    comparable across telemetry units.
    """

    def __init__(self, estimator: str = "logreg", *, step: int = 1):
        if estimator not in ESTIMATOR_NAMES:
            raise ValidationError(
                f"unknown estimator {estimator!r}; expected {ESTIMATOR_NAMES}"
            )
        if step < 1:
            raise ValidationError(f"step must be >= 1, got {step}")
        self.estimator = estimator
        self.step = step
        self.name = f"RFE {estimator}"

    def fit(self, X, y) -> "RecursiveFeatureElimination":
        X, y = self._validate(X, y)
        Xs = StandardScaler().fit_transform(X)
        codes, _ = encode_labels(y)
        target = codes.astype(float) if _estimator_is_regressor(self.estimator) else y
        remaining = list(range(X.shape[1]))
        ranking = np.zeros(X.shape[1], dtype=int)
        next_rank = X.shape[1]
        while remaining:
            if len(remaining) == 1:
                ranking[remaining[0]] = 1
                break
            model = _make_estimator(self.estimator)
            model.fit(Xs[:, remaining], target)
            importances = _importances(model, self.estimator)
            n_drop = min(self.step, len(remaining) - 1)
            drop_positions = np.argsort(importances, kind="stable")[:n_drop]
            # Drop the least important; assign them the worst open ranks.
            for position in sorted(drop_positions, reverse=True):
                ranking[remaining[position]] = next_rank
                next_rank -= 1
                del remaining[position]
        self.ranking_ = ranking
        return self


class SequentialFeatureSelector(RankBasedSelector):
    """SFS: greedy forward addition or backward removal of features.

    The scoring metric is cross-validated prediction quality: accuracy for
    the classifier estimators, R^2 for the linear one.  Running the greedy
    process to completion yields a full feature ranking — forward order
    directly, backward order reversed.
    """

    def __init__(
        self,
        estimator: str = "logreg",
        *,
        direction: str = "forward",
        cv: int = 3,
    ):
        if estimator not in ESTIMATOR_NAMES:
            raise ValidationError(
                f"unknown estimator {estimator!r}; expected {ESTIMATOR_NAMES}"
            )
        if direction not in ("forward", "backward"):
            raise ValidationError(
                f"direction must be 'forward' or 'backward', got {direction!r}"
            )
        if cv < 2:
            raise ValidationError(f"cv must be >= 2, got {cv}")
        self.estimator = estimator
        self.direction = direction
        self.cv = cv
        prefix = "Fw" if direction == "forward" else "Bw"
        self.name = f"{prefix} SFS {estimator}"

    def _cv_score(
        self, X: np.ndarray, target: np.ndarray, columns: list[int]
    ) -> float:
        """Mean CV score of the estimator restricted to ``columns``."""
        subset = X[:, columns]
        scores = []
        splitter = KFold(self.cv, shuffle=True, random_state=0)
        for train_idx, test_idx in splitter.split(subset):
            model = clone(_make_estimator(self.estimator))
            try:
                model.fit(subset[train_idx], target[train_idx])
            except Exception:
                # A degenerate fold (e.g. one class only) scores worst.
                scores.append(-np.inf)
                continue
            scores.append(model.score(subset[test_idx], target[test_idx]))
        return float(np.mean(scores))

    def fit(self, X, y) -> "SequentialFeatureSelector":
        X, y = self._validate(X, y)
        Xs = StandardScaler().fit_transform(X)
        codes, _ = encode_labels(y)
        target = (
            codes.astype(float)
            if _estimator_is_regressor(self.estimator)
            else np.asarray(y)
        )
        n_features = X.shape[1]
        if self.direction == "forward":
            order = self._forward_order(Xs, target, n_features)
        else:
            order = self._backward_order(Xs, target, n_features)
        ranking = np.zeros(n_features, dtype=int)
        for rank, feature in enumerate(order, start=1):
            ranking[feature] = rank
        self.ranking_ = ranking
        return self

    def _forward_order(self, X, target, n_features: int) -> list[int]:
        """Features in the order the greedy forward pass adds them."""
        selected: list[int] = []
        remaining = list(range(n_features))
        while remaining:
            best_feature, best_score = None, -np.inf
            for feature in remaining:
                score = self._cv_score(X, target, selected + [feature])
                if score > best_score:
                    best_score, best_feature = score, feature
            selected.append(best_feature)
            remaining.remove(best_feature)
        return selected

    def _backward_order(self, X, target, n_features: int) -> list[int]:
        """Importance order from greedy backward elimination.

        The feature removed first mattered least (worst rank); the final
        survivor ranks 1.
        """
        remaining = list(range(n_features))
        removal_order: list[int] = []
        while len(remaining) > 1:
            best_feature, best_score = None, -np.inf
            for feature in remaining:
                candidate = [f for f in remaining if f != feature]
                score = self._cv_score(X, target, candidate)
                if score > best_score:
                    best_score, best_feature = score, feature
            removal_order.append(best_feature)
            remaining.remove(best_feature)
        removal_order.append(remaining[0])
        return list(reversed(removal_order))
