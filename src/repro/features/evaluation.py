"""Scoring feature subsets by workload-identification accuracy (Table 3).

The paper quantifies a feature-selection strategy by running workload
similarity computation on the selected subset: each experiment is encoded
with Hist-FP over the chosen features and its nearest neighbour under the
L2,1 norm must belong to the same workload (Section 4.3).  The strategy
registry enumerates the 16 strategies plus the baseline exactly as Table 3
lists them.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.features.aggregation import BaselineSelector
from repro.features.embedded import (
    ElasticNetSelector,
    LassoSelector,
    RandomForestSelector,
)
from repro.features.filters import (
    FANOVASelector,
    MutualInfoGainSelector,
    PearsonCorrelationSelector,
    VarianceThresholdSelector,
)
from repro.features.wrappers import (
    RecursiveFeatureElimination,
    SequentialFeatureSelector,
)
from repro.obs.metrics import get_metrics
from repro.obs.tracing import span
from repro.similarity.evaluation import (
    distance_matrix,
    knn_accuracy,
    representation_matrices,
)
from repro.similarity.measures import get_measure
from repro.similarity.representations import RepresentationBuilder
from repro.workloads.features import ALL_FEATURES


def knn_feature_subset_accuracy(
    corpus,
    feature_indices,
    *,
    builder: RepresentationBuilder | None = None,
    representation: str = "hist",
    measure_name: str = "L2,1",
    jobs: int | None = None,
    distance_cache=None,
) -> float:
    """1-NN workload accuracy using only the given features.

    ``feature_indices`` index into
    :data:`repro.workloads.features.ALL_FEATURES`.  A pre-fitted
    ``builder`` can be passed to amortize range fitting across many calls
    (the Table 3 sweep evaluates dozens of subsets on one corpus).
    ``jobs`` and ``distance_cache`` are forwarded to
    :func:`~repro.similarity.evaluation.distance_matrix` — the sweep
    re-evaluates overlapping subsets, so shared pairs hit the cache.
    """
    indices = np.asarray(feature_indices, dtype=int)
    if indices.size == 0:
        raise ValidationError("feature subset must not be empty")
    if np.any(indices < 0) or np.any(indices >= len(ALL_FEATURES)):
        raise ValidationError("feature indices out of range")
    names = [ALL_FEATURES[i] for i in indices]
    with span(
        "features.subset_accuracy",
        attrs={"n_features": len(names), "measure": measure_name},
    ):
        if builder is None:
            builder = RepresentationBuilder().fit(corpus)
        matrices = representation_matrices(
            corpus, builder, representation, features=names
        )
        D = distance_matrix(
            matrices, get_measure(measure_name),
            jobs=jobs, cache=distance_cache,
        )
        accuracy = knn_accuracy(D, [r.workload_name for r in corpus])
    get_metrics().counter("features.subset_evaluations_total").inc()
    return accuracy


def strategy_registry(*, fast_only: bool = False) -> dict:
    """Factories for every Table 3 strategy, keyed by display name.

    ``fast_only=True`` omits the SFS variants, whose runtime is two to
    three orders of magnitude above the filters (the paper's own finding);
    useful for quick regression tests.
    """
    registry = {
        "Variance": VarianceThresholdSelector,
        "fANOVA": FANOVASelector,
        "MIGain": MutualInfoGainSelector,
        "Pearson": PearsonCorrelationSelector,
        "Lasso": LassoSelector,
        "Elastic Net": ElasticNetSelector,
        "RandomForest": RandomForestSelector,
        "RFE Linear": lambda: RecursiveFeatureElimination("linear"),
        "RFE DecTree": lambda: RecursiveFeatureElimination("dectree"),
        "RFE LogReg": lambda: RecursiveFeatureElimination("logreg"),
    }
    if not fast_only:
        registry.update(
            {
                "Fw SFS Linear": lambda: SequentialFeatureSelector(
                    "linear", direction="forward"
                ),
                "Fw SFS DecTree": lambda: SequentialFeatureSelector(
                    "dectree", direction="forward"
                ),
                "Fw SFS LogReg": lambda: SequentialFeatureSelector(
                    "logreg", direction="forward"
                ),
                "Bw SFS Linear": lambda: SequentialFeatureSelector(
                    "linear", direction="backward"
                ),
                "Bw SFS DecTree": lambda: SequentialFeatureSelector(
                    "dectree", direction="backward"
                ),
                "Bw SFS LogReg": lambda: SequentialFeatureSelector(
                    "logreg", direction="backward"
                ),
            }
        )
    registry["Baseline"] = BaselineSelector
    return registry


def classify_accuracy_curve(accuracies, *, tolerance: float = 0.01) -> str:
    """Classify an accuracy-vs-#features curve (Figure 4's archetypes).

    Returns ``"increasing"`` when accuracy keeps (weakly) improving with
    more features, ``"peaking"`` when it rises to an interior maximum and
    then degrades (overfitting on too many features), and
    ``"inconclusive"`` otherwise.
    """
    curve = np.asarray(accuracies, dtype=float)
    if curve.size < 3:
        raise ValidationError(
            "need at least three points to classify a curve"
        )
    peak_value = float(curve.max())
    final = float(curve[-1])
    diffs = np.diff(curve)
    if final >= peak_value - tolerance and np.all(diffs >= -tolerance):
        return "increasing"
    peak_index = int(np.argmax(curve))
    rises_to_peak = np.all(diffs[:peak_index] >= -tolerance)
    falls_after = peak_value - final > tolerance
    if 0 < peak_index < curve.size - 1 and rises_to_peak and falls_after:
        return "peaking"
    return "inconclusive"
