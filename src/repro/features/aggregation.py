"""Rank aggregation and top-k feature selection (Section 4.2).

The paper produces one importance ranking per experiment and strategy,
then aggregates ranks across experiments and keeps the k features with the
lowest aggregate rank.  The baseline strategy of Table 3 applies no
intelligence at all: it takes features in registry order.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.features.base import RankBasedSelector
from repro.workloads.repository import ExperimentRepository


class BaselineSelector(RankBasedSelector):
    """Table 3's baseline: features ranked by their registry position."""

    name = "Baseline"

    def fit(self, X, y=None) -> "BaselineSelector":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValidationError("X must be 2-dimensional")
        self.ranking_ = np.arange(1, X.shape[1] + 1)
        return self


def aggregate_rankings(rankings) -> np.ndarray:
    """Aggregate per-experiment rankings into one consensus ranking.

    ``rankings`` is an iterable of 1-based rank arrays over the same
    features.  Aggregation is by mean rank (Borda count); ties break on
    feature index for determinism.  Returns a 1-based consensus ranking.
    """
    stacked = np.vstack([np.asarray(r, dtype=float) for r in rankings])
    if stacked.ndim != 2 or stacked.shape[0] == 0:
        raise ValidationError("rankings must be a non-empty list of arrays")
    if np.any(stacked < 1):
        raise ValidationError("rankings must be 1-based (no rank below 1)")
    mean_ranks = stacked.mean(axis=0)
    order = np.argsort(mean_ranks, kind="stable")
    consensus = np.empty(stacked.shape[1], dtype=int)
    consensus[order] = np.arange(1, stacked.shape[1] + 1)
    return consensus


def top_k_features(rankings, k: int) -> np.ndarray:
    """Indices of the k features with the lowest aggregate rank."""
    consensus = aggregate_rankings(rankings)
    if not 1 <= k <= consensus.size:
        raise ValidationError(f"k must be in [1, {consensus.size}], got {k}")
    order = np.argsort(consensus, kind="stable")
    return order[:k]


def rank_features_per_run(
    corpus: ExperimentRepository, selector_factory
) -> list[np.ndarray]:
    """One ranking per experiment repetition (run index).

    The corpus is partitioned by ``run_index`` — each partition contains
    every workload's observations from one repetition — and the strategy
    built by ``selector_factory()`` is fitted on each partition.  The
    resulting rankings feed :func:`aggregate_rankings` /
    :func:`top_k_features`.
    """
    run_indices = sorted({result.run_index for result in corpus})
    if not run_indices:
        raise ValidationError("corpus is empty")
    rankings = []
    for run in run_indices:
        split = corpus.filter(lambda r, run=run: r.run_index == run)
        selector = selector_factory()
        selector.fit(split.feature_matrix(), split.labels())
        rankings.append(selector.ranking())
    return rankings
