"""Dimensionality reduction alternatives (Appendix C of the paper).

PCA and truncated SVD transform the predictor set into a smaller set of
components capturing data variance.  The paper discusses their drawbacks
for this pipeline — components are uninterpretable mixtures of telemetry
channels and insensitive to the modeling objective — and the ablation
bench contrasts them with the explicit selection strategies.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator
from repro.utils.validation import check_2d


class PCA(BaseEstimator):
    """Principal component analysis via SVD of the centered data."""

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ValidationError(
                f"n_components must be >= 1, got {n_components}"
            )
        self.n_components = n_components

    def fit(self, X) -> "PCA":
        X = check_2d(X, "X")
        max_components = min(X.shape)
        if self.n_components > max_components:
            raise ValidationError(
                f"n_components={self.n_components} exceeds min(n_samples, "
                f"n_features)={max_components}"
            )
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[: self.n_components]
        variances = singular_values**2 / max(X.shape[0] - 1, 1)
        total = variances.sum()
        self.explained_variance_ = variances[: self.n_components]
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0
            else np.zeros(self.n_components)
        )
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("components_")
        X = check_2d(X, "X")
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("components_")
        X = check_2d(X, "X")
        return X @ self.components_ + self.mean_


class TruncatedSVD(BaseEstimator):
    """Truncated SVD (no centering), suitable for sparse-like feature sets."""

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ValidationError(
                f"n_components must be >= 1, got {n_components}"
            )
        self.n_components = n_components

    def fit(self, X) -> "TruncatedSVD":
        X = check_2d(X, "X")
        max_components = min(X.shape)
        if self.n_components > max_components:
            raise ValidationError(
                f"n_components={self.n_components} exceeds min(n_samples, "
                f"n_features)={max_components}"
            )
        _, singular_values, vt = np.linalg.svd(X, full_matrices=False)
        self.components_ = vt[: self.n_components]
        self.singular_values_ = singular_values[: self.n_components]
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("components_")
        X = check_2d(X, "X")
        return X @ self.components_.T

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
