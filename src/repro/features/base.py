"""Feature-selector protocol: score-based and rank-based strategies.

Section 4.2 of the paper distinguishes strategies whose raw output is a
continuous importance *score* per feature (filters, Lasso, elastic net,
forests) from those that natively emit an integer *rank* (RFE, SFS).  Both
are normalized here to a 1-based ranking (1 = most important) so rank
aggregation and top-k selection treat all strategies uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.stats import rank_from_scores
from repro.utils.validation import check_2d, check_consistent_length


class FeatureSelector:
    """Base class for all feature-selection strategies.

    Subclasses implement ``fit(X, y)`` and set either ``scores_`` (higher =
    more important) or ``ranking_`` (1-based, 1 = most important).
    """

    #: Human-readable strategy name (used by Table 3 and the registry).
    name: str = "selector"

    def fit(self, X, y) -> "FeatureSelector":  # pragma: no cover - interface
        raise NotImplementedError

    def _validate(self, X, y) -> tuple[np.ndarray, np.ndarray]:
        X = check_2d(X, "X")
        y = np.asarray(y)
        check_consistent_length(X, y)
        if np.unique(y).size < 2:
            raise ValidationError(
                "feature selection needs at least two target classes"
            )
        return X, y

    def ranking(self) -> np.ndarray:
        """1-based importance ranks (1 = most important)."""
        if hasattr(self, "ranking_"):
            return np.asarray(self.ranking_, dtype=int)
        if hasattr(self, "scores_"):
            return rank_from_scores(self.scores_)
        raise NotFittedError(
            f"{type(self).__name__} is not fitted yet; call fit() first"
        )

    def top_k(self, k: int) -> np.ndarray:
        """Indices of the ``k`` most important features, best first."""
        ranks = self.ranking()
        if not 1 <= k <= ranks.size:
            raise ValidationError(
                f"k must be in [1, {ranks.size}], got {k}"
            )
        order = np.argsort(ranks, kind="stable")
        return order[:k]

    @property
    def is_score_based(self) -> bool:
        """True when the strategy natively produces continuous scores."""
        return isinstance(self, ScoreBasedSelector)


class ScoreBasedSelector(FeatureSelector):
    """Marker base for strategies emitting continuous ``scores_``."""


class RankBasedSelector(FeatureSelector):
    """Marker base for strategies emitting integer ``ranking_``."""


def encode_labels(y) -> tuple[np.ndarray, np.ndarray]:
    """Encode arbitrary labels as 0..k-1 integers; returns (codes, classes)."""
    classes, codes = np.unique(np.asarray(y), return_inverse=True)
    return codes.astype(int), classes


def one_vs_rest_targets(y) -> tuple[np.ndarray, np.ndarray]:
    """Binary indicator matrix ``(n_samples, n_classes)`` and the classes."""
    codes, classes = encode_labels(y)
    indicators = np.zeros((codes.size, classes.size))
    indicators[np.arange(codes.size), codes] = 1.0
    return indicators, classes
