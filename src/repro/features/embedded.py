"""Embedded feature-selection strategies (Section 4.1.2).

Model training itself performs the selection: Lasso and elastic net zero
out coefficients; random forests accumulate impurity-decrease importances.
The regression-based selectors score each feature by its largest absolute
standardized coefficient across one-vs-rest workload indicators, mirroring
how Figure 3 of the paper inspects per-workload lasso paths.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.features.base import ScoreBasedSelector, one_vs_rest_targets
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import ElasticNet, Lasso, lasso_path
from repro.ml.preprocessing import StandardScaler
from repro.utils.rng import RandomState


class _RegularizedLinearSelector(ScoreBasedSelector):
    """Shared machinery for the Lasso / elastic-net selectors."""

    def _make_model(self):  # pragma: no cover - interface
        raise NotImplementedError

    def fit(self, X, y) -> "_RegularizedLinearSelector":
        X, y = self._validate(X, y)
        Xs = StandardScaler().fit_transform(X)
        indicators, classes = one_vs_rest_targets(y)
        coefs = np.zeros((classes.size, X.shape[1]))
        for c in range(classes.size):
            model = self._make_model()
            model.fit(Xs, indicators[:, c])
            coefs[c] = model.coef_
        self.class_coefs_ = coefs
        self.scores_ = np.max(np.abs(coefs), axis=0)
        return self


class LassoSelector(_RegularizedLinearSelector):
    """L1-regularized selection: surviving coefficients mark importance."""

    name = "Lasso"

    def __init__(self, alpha: float = 0.01, *, max_iter: int = 5000):
        if alpha < 0:
            raise ValidationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.max_iter = max_iter

    def _make_model(self):
        return Lasso(alpha=self.alpha, max_iter=self.max_iter)


class ElasticNetSelector(_RegularizedLinearSelector):
    """L1+L2-regularized selection (keeps groups of correlated features)."""

    name = "Elastic Net"

    def __init__(
        self, alpha: float = 0.01, l1_ratio: float = 0.5, *, max_iter: int = 5000
    ):
        if alpha < 0:
            raise ValidationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.max_iter = max_iter

    def _make_model(self):
        return ElasticNet(
            alpha=self.alpha, l1_ratio=self.l1_ratio, max_iter=self.max_iter
        )


class RandomForestSelector(ScoreBasedSelector):
    """Impurity-decrease importances from a random-forest classifier."""

    name = "RandomForest"

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        max_depth: int | None = None,
        random_state: RandomState = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestSelector":
        X, y = self._validate(X, y)
        forest = RandomForestClassifier(
            self.n_estimators,
            max_depth=self.max_depth,
            random_state=self.random_state,
        )
        forest.fit(X, y)
        self.scores_ = forest.feature_importances_
        return self


def one_vs_rest_lasso_path(
    X,
    y,
    positive_class,
    *,
    n_alphas: int = 40,
    eps: float = 1e-3,
) -> tuple[np.ndarray, np.ndarray]:
    """Lasso regularization path for one workload against the rest.

    This is the computation behind Figure 3: the target is the indicator
    of ``positive_class`` and the features are standardized, so the path
    shows which telemetry features identify that workload as the
    regularization strength decreases.  Returns ``(alphas, coefs)`` with
    ``coefs`` of shape ``(n_alphas, n_features)``.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if positive_class not in set(y.tolist()):
        raise ValidationError(
            f"positive_class {positive_class!r} not present in y"
        )
    Xs = StandardScaler().fit_transform(X)
    target = (y == positive_class).astype(float)
    return lasso_path(Xs, target, n_alphas=n_alphas, eps=eps)


def lasso_path_top_features(
    alphas: np.ndarray, coefs: np.ndarray, *, k: int = 7
) -> np.ndarray:
    """Top-k feature indices from a lasso path (Figure 3's labels).

    Importance of a feature is its largest absolute coefficient anywhere
    along the path, which matches reading the most deviant curves off the
    paper's path plots.
    """
    if coefs.ndim != 2:
        raise ValidationError("coefs must be a (n_alphas, n_features) matrix")
    magnitude = np.max(np.abs(coefs), axis=0)
    k = min(k, magnitude.size)
    return np.argsort(-magnitude, kind="stable")[:k]
