"""Selection-stability analysis across repeated experiment runs.

Section 4.3.1 observes that "the more often we run feature selection for
the same workload, the more stable our selected features become".  These
helpers quantify that: the Jaccard stability of top-k selections across
runs, and how consensus stability grows with the number of aggregated
runs.

:func:`bootstrap_rankings` / :func:`stability_selection` produce the
repeated selections themselves by refitting a Table 3 strategy on
bootstrap resamples.  The repetitions are independent model fits, so
they ride the evaluation fast path (:mod:`repro.ml.fitexec`): ``jobs``
fans them over a process pool (resample indices are drawn parent-side
in serial repetition order, so output is bit-identical at any worker
count) and ``fit_cache`` memoizes each repetition's ranking under a
content address — a warm re-run fits zero selectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.features.aggregation import top_k_features
from repro.features.base import encode_labels
from repro.ml.fitexec import as_fit_cache, count_fits, fit_key, run_units
from repro.obs.tracing import span
from repro.utils.rng import RandomState, spawn_generators


def jaccard_similarity(a, b) -> float:
    """|A intersect B| / |A union B| for two index collections."""
    set_a, set_b = set(np.asarray(a).tolist()), set(np.asarray(b).tolist())
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


def selection_stability(rankings, k: int) -> float:
    """Mean pairwise Jaccard similarity of the per-run top-k selections.

    1.0 means every run selects exactly the same k features; values near
    ``k / n_features`` indicate selections no more stable than chance.
    """
    rankings = [np.asarray(r) for r in rankings]
    if len(rankings) < 2:
        raise ValidationError("need at least two rankings for stability")
    tops = []
    for ranking in rankings:
        if not 1 <= k <= ranking.size:
            raise ValidationError(f"k must be in [1, {ranking.size}]")
        tops.append(np.argsort(ranking, kind="stable")[:k])
    scores = []
    for i in range(len(tops)):
        for j in range(i + 1, len(tops)):
            scores.append(jaccard_similarity(tops[i], tops[j]))
    return float(np.mean(scores))


def _bootstrap_fit_unit(unit) -> tuple[list[int], int]:
    """Fit one strategy on one resample: ``(ranking, n_selector_fits)``.

    The unit of work shipped to pool workers — and the exact same
    function the serial path calls, which is what keeps parallel
    stability runs bit-identical to serial.  The registry import is
    deferred so this module stays importable before
    :mod:`repro.features.evaluation`.
    """
    X, y, strategy = unit
    from repro.features.evaluation import strategy_registry

    selector = strategy_registry()[strategy]()
    selector.fit(X, y)
    return [int(rank) for rank in selector.ranking()], 1


def _bootstrap_indices(
    rng: np.random.Generator, y: np.ndarray, n_draw: int
) -> np.ndarray:
    """Resample indices containing at least two target classes.

    A resample that collapses to one class cannot be fitted; it is
    redrawn from the same generator, which keeps the draw sequence — and
    therefore the output — deterministic.
    """
    n_samples = y.shape[0]
    for _ in range(64):
        indices = rng.integers(0, n_samples, size=n_draw)
        if np.unique(y[indices]).size >= 2:
            return indices
    raise ValidationError(
        "could not draw a bootstrap resample with two target classes; "
        "increase sample_fraction or provide more varied labels"
    )


def bootstrap_rankings(
    X,
    y,
    strategy: str = "Pearson",
    *,
    n_repetitions: int = 10,
    sample_fraction: float = 0.8,
    random_state: RandomState = 0,
    jobs: int | None = None,
    fit_cache=None,
) -> list[np.ndarray]:
    """Per-repetition feature rankings from bootstrap-resampled fits.

    Each repetition draws ``round(sample_fraction * n)`` rows with
    replacement (parent-side, in serial repetition order) and fits the
    named Table 3 strategy on them.  ``jobs`` fans the independent fits
    over a process pool; ``fit_cache`` memoizes each repetition's
    ranking by resample content, so a warm re-run performs zero fits.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValidationError("X must be 2-D and aligned with y")
    if n_repetitions < 2:
        raise ValidationError(
            f"need at least two repetitions, got {n_repetitions}"
        )
    if not 0.0 < sample_fraction <= 1.0:
        raise ValidationError(
            f"sample_fraction must be in (0, 1], got {sample_fraction}"
        )
    n_draw = max(2, int(round(sample_fraction * X.shape[0])))
    codes, _ = encode_labels(y)
    cache = as_fit_cache(fit_cache)
    with span(
        "features.bootstrap_rankings",
        attrs={"strategy": strategy, "n_repetitions": n_repetitions},
    ):
        # Resamples are drawn up front in repetition order so the draw
        # sequence never depends on the worker count.
        index_sets = [
            _bootstrap_indices(rng, y, n_draw)
            for rng in spawn_generators(random_state, n_repetitions)
        ]
        rankings: list[np.ndarray | None] = [None] * n_repetitions
        keys: list[str | None] = [None] * n_repetitions
        units, positions = [], []
        for position, indices in enumerate(index_sets):
            if cache is not None:
                key = fit_key(
                    estimator=f"stability:{strategy}",
                    arrays={"X": X[indices], "y": codes[indices]},
                    fold="bootstrap",
                    scorer="ranking",
                )
                keys[position] = key
                value = cache.get(key)
                if value is not None:
                    rankings[position] = np.asarray(value, dtype=int)
                    continue
            units.append((X[indices], y[indices], strategy))
            positions.append(position)
        outputs = run_units(
            _bootstrap_fit_unit, units, jobs=jobs,
            label=f"stability:{strategy}",
        )
        total_fits = 0
        for position, (ranking, n_fits) in zip(positions, outputs):
            rankings[position] = np.asarray(ranking, dtype=int)
            total_fits += n_fits
            if cache is not None:
                cache.put(keys[position], list(ranking))
        count_fits(total_fits)
    return list(rankings)


@dataclass(frozen=True)
class StabilityReport:
    """Outcome of one bootstrap stability-selection run."""

    strategy: str
    k: int
    n_repetitions: int
    stability: float
    rankings: tuple


def stability_selection(
    X,
    y,
    strategy: str = "Pearson",
    *,
    k: int = 7,
    n_repetitions: int = 10,
    sample_fraction: float = 0.8,
    random_state: RandomState = 0,
    jobs: int | None = None,
    fit_cache=None,
) -> StabilityReport:
    """Bootstrap selection stability of one strategy (Section 4.3.1).

    Refits the strategy on ``n_repetitions`` bootstrap resamples and
    scores the mean pairwise Jaccard stability of the per-repetition
    top-``k`` selections.  ``jobs``/``fit_cache`` follow the evaluation
    fast path's bit-identical contract.
    """
    rankings = bootstrap_rankings(
        X,
        y,
        strategy,
        n_repetitions=n_repetitions,
        sample_fraction=sample_fraction,
        random_state=random_state,
        jobs=jobs,
        fit_cache=fit_cache,
    )
    if not 1 <= k <= rankings[0].size:
        raise ValidationError(f"k must be in [1, {rankings[0].size}]")
    return StabilityReport(
        strategy=strategy,
        k=k,
        n_repetitions=n_repetitions,
        stability=selection_stability(rankings, k),
        rankings=tuple(rankings),
    )


def consensus_stability_curve(
    rankings, k: int, *, n_resamples: int = 20, random_state: int = 0
) -> dict[int, float]:
    """Stability of the aggregated top-k as more runs are pooled.

    For each pool size ``m`` (2 .. len(rankings)), random subsets of ``m``
    rankings are aggregated and the Jaccard similarity of their consensus
    top-k selections is averaged — larger pools should agree more,
    reproducing the paper's stability observation.
    """
    rankings = [np.asarray(r) for r in rankings]
    if len(rankings) < 2:
        raise ValidationError("need at least two rankings")
    rng = np.random.default_rng(random_state)
    curve: dict[int, float] = {}
    for pool_size in range(1, len(rankings) + 1):
        consensus_tops = []
        for _ in range(n_resamples):
            chosen = rng.choice(len(rankings), size=pool_size, replace=True)
            consensus_tops.append(
                top_k_features([rankings[i] for i in chosen], k)
            )
        scores = [
            jaccard_similarity(consensus_tops[i], consensus_tops[j])
            for i in range(len(consensus_tops))
            for j in range(i + 1, len(consensus_tops))
        ]
        curve[pool_size] = float(np.mean(scores))
    return curve
