"""Selection-stability analysis across repeated experiment runs.

Section 4.3.1 observes that "the more often we run feature selection for
the same workload, the more stable our selected features become".  These
helpers quantify that: the Jaccard stability of top-k selections across
runs, and how consensus stability grows with the number of aggregated
runs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.features.aggregation import top_k_features


def jaccard_similarity(a, b) -> float:
    """|A intersect B| / |A union B| for two index collections."""
    set_a, set_b = set(np.asarray(a).tolist()), set(np.asarray(b).tolist())
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


def selection_stability(rankings, k: int) -> float:
    """Mean pairwise Jaccard similarity of the per-run top-k selections.

    1.0 means every run selects exactly the same k features; values near
    ``k / n_features`` indicate selections no more stable than chance.
    """
    rankings = [np.asarray(r) for r in rankings]
    if len(rankings) < 2:
        raise ValidationError("need at least two rankings for stability")
    tops = []
    for ranking in rankings:
        if not 1 <= k <= ranking.size:
            raise ValidationError(f"k must be in [1, {ranking.size}]")
        tops.append(np.argsort(ranking, kind="stable")[:k])
    scores = []
    for i in range(len(tops)):
        for j in range(i + 1, len(tops)):
            scores.append(jaccard_similarity(tops[i], tops[j]))
    return float(np.mean(scores))


def consensus_stability_curve(
    rankings, k: int, *, n_resamples: int = 20, random_state: int = 0
) -> dict[int, float]:
    """Stability of the aggregated top-k as more runs are pooled.

    For each pool size ``m`` (2 .. len(rankings)), random subsets of ``m``
    rankings are aggregated and the Jaccard similarity of their consensus
    top-k selections is averaged — larger pools should agree more,
    reproducing the paper's stability observation.
    """
    rankings = [np.asarray(r) for r in rankings]
    if len(rankings) < 2:
        raise ValidationError("need at least two rankings")
    rng = np.random.default_rng(random_state)
    curve: dict[int, float] = {}
    for pool_size in range(1, len(rankings) + 1):
        consensus_tops = []
        for _ in range(n_resamples):
            chosen = rng.choice(len(rankings), size=pool_size, replace=True)
            consensus_tops.append(
                top_k_features([rankings[i] for i in chosen], k)
            )
        scores = [
            jaccard_similarity(consensus_tops[i], consensus_tops[j])
            for i in range(len(consensus_tops))
            for j in range(i + 1, len(consensus_tops))
        ]
        curve[pool_size] = float(np.mean(scores))
    return curve
