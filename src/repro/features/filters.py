"""Filter feature-selection strategies (Section 4.1.1).

These score predictors *before* any model is fitted: variance threshold,
Pearson correlation, fANOVA, and mutual information gain.  They are
univariate, hence cheap — the paper's Table 3 shows them two to five
orders of magnitude faster than the wrapper methods.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.features.base import ScoreBasedSelector, one_vs_rest_targets
from repro.ml.information import (
    fanova_importance,
    mutual_information,
    pearson_correlation,
)
from repro.ml.preprocessing import MinMaxScaler


class VarianceThresholdSelector(ScoreBasedSelector):
    """Rank features by their variance on the [0, 1]-normalized scale.

    Features are min-max normalized first (the raw telemetry channels have
    wildly different units), then scored by variance; features below
    ``threshold`` are considered uninformative.  Note the paper's finding:
    high variance does *not* imply discriminative power — the noisy
    ``LOCK_WAIT_ABS`` channel wins on variance while being a poor workload
    identifier.
    """

    name = "Variance"

    def __init__(self, threshold: float = 0.0):
        if threshold < 0:
            raise ValidationError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def fit(self, X, y=None) -> "VarianceThresholdSelector":
        # y is accepted for interface uniformity but unused: variance
        # filtering is fully unsupervised.
        X = np.asarray(X, dtype=float)
        normalized = MinMaxScaler().fit_transform(X)
        self.scores_ = normalized.var(axis=0)
        self.support_ = self.scores_ > self.threshold
        return self


class PearsonCorrelationSelector(ScoreBasedSelector):
    """Max absolute Pearson correlation against one-vs-rest indicators.

    With a multiclass workload label, each feature is scored by the
    strongest linear association it has with *any* single workload's
    indicator variable.
    """

    name = "Pearson"

    def fit(self, X, y) -> "PearsonCorrelationSelector":
        X, y = self._validate(X, y)
        indicators, _ = one_vs_rest_targets(y)
        n_features = X.shape[1]
        scores = np.zeros(n_features)
        for j in range(n_features):
            correlations = [
                abs(pearson_correlation(X[:, j], indicators[:, c]))
                for c in range(indicators.shape[1])
            ]
            scores[j] = max(correlations)
        self.scores_ = scores
        return self


class FANOVASelector(ScoreBasedSelector):
    """Functional ANOVA importance: variance explained by the class label."""

    name = "fANOVA"

    def fit(self, X, y) -> "FANOVASelector":
        X, y = self._validate(X, y)
        self.scores_ = np.array(
            [fanova_importance(X[:, j], y) for j in range(X.shape[1])]
        )
        return self


class MutualInfoGainSelector(ScoreBasedSelector):
    """Mutual information between each (binned) feature and the label."""

    name = "MIGain"

    def __init__(self, n_bins: int = 10):
        if n_bins < 2:
            raise ValidationError(f"n_bins must be >= 2, got {n_bins}")
        self.n_bins = n_bins

    def fit(self, X, y) -> "MutualInfoGainSelector":
        X, y = self._validate(X, y)
        self.scores_ = np.array(
            [
                mutual_information(X[:, j], y, n_bins=self.n_bins)
                for j in range(X.shape[1])
            ]
        )
        return self
