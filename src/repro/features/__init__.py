"""Feature selection strategies (Section 4 of the paper).

Three families, all producing a per-feature importance ranking:

- **Filter** (:mod:`repro.features.filters`): variance threshold, Pearson
  correlation, fANOVA, mutual information gain — fast, model-free.
- **Embedded** (:mod:`repro.features.embedded`): Lasso, elastic net, and
  random-forest importances — selection happens inside model training.
- **Wrapper** (:mod:`repro.features.wrappers`): recursive feature
  elimination (RFE) and sequential feature selection (SFS) around linear,
  decision-tree, and logistic-regression estimators — accurate but
  orders of magnitude slower (Table 3).

:mod:`repro.features.aggregation` turns per-experiment rankings into a
top-k choice; :mod:`repro.features.evaluation` scores a feature subset by
1-NN workload identification, the paper's accuracy metric; and
:mod:`repro.features.decomposition` holds the PCA/SVD alternatives the
paper's Appendix C discusses.
"""

from repro.features.base import (
    FeatureSelector,
    RankBasedSelector,
    ScoreBasedSelector,
)
from repro.features.filters import (
    FANOVASelector,
    MutualInfoGainSelector,
    PearsonCorrelationSelector,
    VarianceThresholdSelector,
)
from repro.features.embedded import (
    ElasticNetSelector,
    LassoSelector,
    RandomForestSelector,
    one_vs_rest_lasso_path,
)
from repro.features.wrappers import (
    RecursiveFeatureElimination,
    SequentialFeatureSelector,
)
from repro.features.aggregation import (
    BaselineSelector,
    aggregate_rankings,
    rank_features_per_run,
    top_k_features,
)
from repro.features.decomposition import PCA, TruncatedSVD
from repro.features.stability import (
    StabilityReport,
    bootstrap_rankings,
    consensus_stability_curve,
    jaccard_similarity,
    selection_stability,
    stability_selection,
)
from repro.features.evaluation import (
    classify_accuracy_curve,
    knn_feature_subset_accuracy,
    strategy_registry,
)

__all__ = [
    "FeatureSelector",
    "ScoreBasedSelector",
    "RankBasedSelector",
    "VarianceThresholdSelector",
    "PearsonCorrelationSelector",
    "FANOVASelector",
    "MutualInfoGainSelector",
    "LassoSelector",
    "ElasticNetSelector",
    "RandomForestSelector",
    "one_vs_rest_lasso_path",
    "RecursiveFeatureElimination",
    "SequentialFeatureSelector",
    "BaselineSelector",
    "aggregate_rankings",
    "rank_features_per_run",
    "top_k_features",
    "PCA",
    "TruncatedSVD",
    "jaccard_similarity",
    "selection_stability",
    "consensus_stability_curve",
    "bootstrap_rankings",
    "stability_selection",
    "StabilityReport",
    "knn_feature_subset_accuracy",
    "classify_accuracy_curve",
    "strategy_registry",
]
