"""Feature scaling transformers.

The similarity representations in the paper normalize every feature to
``[0, 1]`` before histogramming (Section 4.3), and the gradient-based models
standardize features internally; both transformations live here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator
from repro.utils.validation import check_2d


class MinMaxScaler(BaseEstimator):
    """Scale each feature to a target range (default ``[0, 1]``).

    Constant features are mapped to the lower bound of the range instead of
    producing NaNs, matching the paper's convention of treating zero-variance
    telemetry channels as uninformative rather than invalid.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X) -> "MinMaxScaler":
        X = check_2d(X, "X")
        low, high = self.feature_range
        if not low < high:
            raise ValidationError(
                f"feature_range must be increasing, got {self.feature_range}"
            )
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        # Constant features (and spans so small the reciprocal overflows,
        # e.g. subnormal ranges) scale to the lower bound instead of NaN.
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            raw_scale = (high - low) / np.where(span > 0, span, 1.0)
        usable = (span > 0) & np.isfinite(raw_scale)
        self.scale_ = np.where(usable, raw_scale, 0.0)
        self.min_ = low - self.data_min_ * self.scale_
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("scale_")
        X = check_2d(X, "X")
        if X.shape[1] != self.scale_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} features, scaler was fitted with "
                f"{self.scale_.shape[0]}"
            )
        return X * self.scale_ + self.min_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("scale_")
        X = check_2d(X, "X")
        safe_scale = np.where(self.scale_ != 0, self.scale_, 1.0)
        restored = (X - self.min_) / safe_scale
        constant = self.scale_ == 0
        if np.any(constant):
            restored[:, constant] = self.data_min_[constant]
        return restored


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean and unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        X = check_2d(X, "X")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            self.scale_ = np.where(std > 0, std, 1.0)
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_2d(X, "X")
        if X.shape[1] != self.mean_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} features, scaler was fitted with "
                f"{self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_2d(X, "X")
        return X * self.scale_ + self.mean_
