"""Linear mixed-effects models (Bates et al. [7], simplified).

The model is ``y = X beta + Z u + e`` with independent Gaussian random
effects per group: a random intercept and, optionally, random slopes for
each fixed-effect column.  Variance components are estimated by maximum
likelihood (profiled over the residual variance) with a Nelder-Mead search
over the log variance ratios; fixed effects come from GLS at the optimum and
group-level effects from their BLUPs.

In the paper this is the LMM strategy of Section 6.1.2, where groups are the
time-of-day "data groups" of the scaling experiments (Figure 8).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize
from scipy.linalg import solve_triangular

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator, RegressorMixin
from repro.utils.validation import check_2d, check_consistent_length


class LinearMixedEffectsModel(BaseEstimator, RegressorMixin):
    """LMM with per-group random intercepts and optional random slopes.

    Parameters
    ----------
    random_slopes:
        When True, each fixed-effect column also receives an independent
        per-group random slope.
    groups:
        Group labels may be passed at construction (as a fallback) or, more
        commonly, to :meth:`fit` via the ``groups`` keyword.

    Notes
    -----
    ``predict`` uses fixed effects plus the BLUP of any group seen during
    training; unseen groups (or ``groups=None``) fall back to the
    population-level fixed effects, which is exactly what the scaling
    pipeline needs when transferring to a new workload run.
    """

    def __init__(self, *, random_slopes: bool = True, groups=None):
        self.random_slopes = random_slopes
        self.groups = groups

    # -- design helpers ------------------------------------------------------
    def _random_design(self, X: np.ndarray, group_index: np.ndarray) -> np.ndarray:
        """Dense Z matrix: per-group columns for intercept (and slopes)."""
        n_samples = X.shape[0]
        n_groups = self._n_groups
        blocks = [np.zeros((n_samples, n_groups))]
        blocks[0][np.arange(n_samples), group_index] = 1.0
        if self.random_slopes:
            for j in range(X.shape[1]):
                block = np.zeros((n_samples, n_groups))
                block[np.arange(n_samples), group_index] = X[:, j]
                blocks.append(block)
        return np.hstack(blocks)

    def _effect_variances(self, log_ratios: np.ndarray) -> np.ndarray:
        """Per-Z-column variance ratios from the packed parameter vector.

        Ratios are clipped to a broad but finite range: on (near-)noiseless
        data the likelihood is maximized by an unbounded ratio, which would
        make ``V`` numerically singular.
        """
        ratios = np.clip(np.exp(log_ratios), 1e-8, 1e6)
        per_block = [np.full(self._n_groups, ratios[0])]
        if self.random_slopes:
            for j in range(1, ratios.size):
                per_block.append(np.full(self._n_groups, ratios[j]))
        return np.concatenate(per_block)

    def _profiled_negloglik(
        self, log_ratios: np.ndarray, X1: np.ndarray, y: np.ndarray, Z: np.ndarray
    ) -> float:
        """-2 log likelihood profiled over sigma^2 and beta."""
        n = y.size
        d = self._effect_variances(log_ratios)
        V = np.eye(n) + (Z * d) @ Z.T
        try:
            chol = np.linalg.cholesky(V)
        except np.linalg.LinAlgError:
            return np.inf
        log_det = 2.0 * float(np.sum(np.log(np.diag(chol))))
        # Whiten by the Cholesky factor: solve L a = X1, L b = y.
        Xw = solve_triangular(chol, X1, lower=True)
        yw = solve_triangular(chol, y, lower=True)
        beta, *_ = np.linalg.lstsq(Xw, yw, rcond=None)
        residual = yw - Xw @ beta
        rss = float(residual @ residual)
        if rss <= 0:
            rss = 1e-12
        sigma2 = rss / n
        return n * np.log(sigma2) + log_det + n

    def fit(self, X, y, *, groups=None) -> "LinearMixedEffectsModel":
        X = check_2d(X, "X")
        y = np.asarray(y, dtype=float).ravel()
        check_consistent_length(X, y)
        if groups is None:
            groups = self.groups
        if groups is None:
            groups = np.zeros(X.shape[0], dtype=int)
        groups = np.asarray(groups)
        check_consistent_length(X, groups)
        self.group_labels_, group_index = np.unique(groups, return_inverse=True)
        self._n_groups = self.group_labels_.size
        self._n_features = X.shape[1]

        X1 = np.hstack([np.ones((X.shape[0], 1)), X])
        Z = self._random_design(X, group_index)
        n_ratios = 1 + (X.shape[1] if self.random_slopes else 0)
        start = np.zeros(n_ratios)
        result = optimize.minimize(
            self._profiled_negloglik,
            start,
            args=(X1, y, Z),
            method="Nelder-Mead",
            options={"maxiter": 400 * n_ratios, "xatol": 1e-4, "fatol": 1e-6},
        )
        log_ratios = result.x
        d = self._effect_variances(log_ratios)

        # Final estimates from Henderson's mixed-model equations, which stay
        # well conditioned even when the variance ratios are extreme:
        #   [X'X  X'Z      ] [beta]   [X'y]
        #   [Z'X  Z'Z + 1/d] [u   ] = [Z'y]
        n = y.size
        p = X1.shape[1]
        q = Z.shape[1]
        top = np.hstack([X1.T @ X1, X1.T @ Z])
        bottom = np.hstack([Z.T @ X1, Z.T @ Z + np.diag(1.0 / d)])
        lhs = np.vstack([top, bottom])
        rhs = np.concatenate([X1.T @ y, Z.T @ y])
        solution = np.linalg.lstsq(lhs, rhs, rcond=None)[0]
        beta = solution[:p]
        u = solution[p : p + q]
        residual = y - X1 @ beta - Z @ u
        sigma2 = max(float(residual @ residual) / n, 1e-12)

        self.intercept_ = float(beta[0])
        self.coef_ = beta[1:]
        self.sigma2_ = sigma2
        self.variance_ratios_ = np.exp(log_ratios)
        self.random_effects_ = self._unpack_random_effects(u)
        self.converged_ = bool(result.success)
        return self

    def _unpack_random_effects(self, u: np.ndarray) -> dict:
        """Map the flat BLUP vector to ``{label: (intercept, slopes)}``."""
        effects = {}
        n_groups = self._n_groups
        for g, label in enumerate(self.group_labels_):
            intercept_effect = float(u[g])
            if self.random_slopes:
                slopes = np.array(
                    [
                        u[(1 + j) * n_groups + g]
                        for j in range(self._n_features)
                    ]
                )
            else:
                slopes = np.zeros(self._n_features)
            effects[label] = (intercept_effect, slopes)
        return effects

    def predict(self, X, *, groups=None) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_2d(X, "X")
        if X.shape[1] != self._n_features:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self._n_features}"
            )
        prediction = X @ self.coef_ + self.intercept_
        if groups is not None:
            groups = np.asarray(groups)
            check_consistent_length(X, groups)
            for i, label in enumerate(groups):
                if label in self.random_effects_:
                    intercept_effect, slopes = self.random_effects_[label]
                    prediction[i] += intercept_effect + float(X[i] @ slopes)
        return prediction
