"""Information-theoretic and variance-decomposition feature scores.

Implements the statistics behind two of the paper's filter strategies
(Section 4.1.1): mutual information gain (Battiti [8]) between a binned
continuous feature and a discrete target, and functional ANOVA (Hutter et
al. [48]) importance as the fraction of target variance explained by
conditioning on the feature.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_1d, check_consistent_length, check_positive_int


def discretize(values, n_bins: int = 10) -> np.ndarray:
    """Equal-width binning of a continuous feature into integer codes.

    A constant feature maps to a single bin (code 0).
    """
    values = check_1d(values, "values")
    check_positive_int(n_bins, "n_bins")
    low, high = float(values.min()), float(values.max())
    if high <= low:
        return np.zeros(values.size, dtype=int)
    edges = np.linspace(low, high, n_bins + 1)
    codes = np.digitize(values, edges[1:-1], right=False)
    return codes.astype(int)


def entropy(labels) -> float:
    """Shannon entropy (nats) of a discrete label sequence."""
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValidationError("labels must not be empty")
    _, counts = np.unique(labels, return_counts=True)
    probabilities = counts / labels.size
    return float(-np.sum(probabilities * np.log(probabilities)))


def conditional_entropy(labels, conditions) -> float:
    """H(labels | conditions) for discrete sequences."""
    labels = np.asarray(labels)
    conditions = np.asarray(conditions)
    check_consistent_length(labels, conditions)
    total = labels.size
    if total == 0:
        raise ValidationError("labels must not be empty")
    value = 0.0
    for condition in np.unique(conditions):
        mask = conditions == condition
        weight = mask.sum() / total
        value += weight * entropy(labels[mask])
    return float(value)


def mutual_information(feature, target, *, n_bins: int = 10) -> float:
    """Mutual information between a continuous feature and discrete target.

    Computed as ``H(target) - H(target | binned feature)``; zero means the
    binned feature carries no information about the target.
    """
    feature = check_1d(feature, "feature")
    target = np.asarray(target)
    check_consistent_length(feature, target)
    codes = discretize(feature, n_bins)
    value = entropy(target) - conditional_entropy(target, codes)
    return max(0.0, float(value))


def fanova_importance(feature, target) -> float:
    """One-dimensional fANOVA importance: explained variance fraction.

    Treats the discrete ``target`` as the grouping variable and measures how
    much of the feature's variance lies between target groups (the
    between-group sum of squares over the total sum of squares).  Features
    whose values separate the workload classes score close to 1.
    """
    feature = check_1d(feature, "feature")
    target = np.asarray(target)
    check_consistent_length(feature, target)
    grand_mean = float(feature.mean())
    total_ss = float(np.sum((feature - grand_mean) ** 2))
    if total_ss == 0:
        return 0.0
    between_ss = 0.0
    for cls in np.unique(target):
        group = feature[target == cls]
        between_ss += group.size * (float(group.mean()) - grand_mean) ** 2
    return float(between_ss / total_ss)


def f_statistic(feature, target) -> float:
    """Classic one-way ANOVA F statistic of ``feature`` grouped by ``target``."""
    feature = check_1d(feature, "feature")
    target = np.asarray(target)
    check_consistent_length(feature, target)
    classes = np.unique(target)
    k = classes.size
    n = feature.size
    if k < 2 or n <= k:
        return 0.0
    grand_mean = float(feature.mean())
    between = 0.0
    within = 0.0
    for cls in classes:
        group = feature[target == cls]
        between += group.size * (float(group.mean()) - grand_mean) ** 2
        within += float(np.sum((group - group.mean()) ** 2))
    if within == 0:
        return np.inf if between > 0 else 0.0
    return float((between / (k - 1)) / (within / (n - k)))


def pearson_correlation(x, y) -> float:
    """Pearson correlation coefficient; 0.0 when either input is constant."""
    x = check_1d(x, "x")
    y = check_1d(y, "y")
    check_consistent_length(x, y)
    x_std = float(x.std())
    y_std = float(y.std())
    if x_std == 0 or y_std == 0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (x_std * y_std))
