"""Evaluation metrics used throughout the paper.

Regression: RMSE, NRMSE (range-normalized, per Shcherbakov et al. [80]),
MAPE, and R^2.  Ranking: average precision / mean average precision and
NDCG [51], which the similarity evaluation of Section 5.2 relies on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_1d, check_consistent_length


def _paired(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_1d(y_true, "y_true")
    y_pred = check_1d(y_pred, "y_pred")
    check_consistent_length(y_true, y_pred)
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error."""
    y_true, y_pred = _paired(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def normalized_rmse(y_true, y_pred) -> float:
    """RMSE normalized by the observed range of ``y_true`` (NRMSE).

    This is the paper's headline prediction metric (Table 6).  When the
    observed range is zero (a perfectly flat target), the RMSE is normalized
    by ``max(|y_true|, 1)`` instead so that the metric stays finite and
    still reflects relative error.  A range that is non-zero but
    vanishingly small relative to the target's magnitude is rejected: the
    near-zero denominator would amplify any error into an arbitrarily
    large score that reads as signal but is pure floating-point noise.
    """
    y_true, y_pred = _paired(y_true, y_pred)
    span = float(np.max(y_true) - np.min(y_true))
    rmse = root_mean_squared_error(y_true, y_pred)
    if rmse == 0.0:
        return 0.0
    if span <= 0:
        scale = max(float(np.max(np.abs(y_true))), 1.0)
        return rmse / scale
    if span < max(float(np.max(np.abs(y_true))), 1.0) * 1e-9:
        raise ValidationError(
            f"y_true is near-constant (range {span:.3e}); NRMSE would be "
            "dominated by the vanishing denominator — use RMSE or a "
            "magnitude-normalized metric for (near-)flat targets"
        )
    return rmse / span


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _paired(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """MAPE as a fraction (0.2 == 20%); requires non-zero targets."""
    y_true, y_pred = _paired(y_true, y_pred)
    if np.any(y_true == 0):
        raise ValidationError("MAPE is undefined when y_true contains zeros")
    return float(np.mean(np.abs((y_true - y_pred) / y_true)))


def absolute_percentage_errors(y_true, y_pred) -> np.ndarray:
    """Per-observation absolute percentage errors (fractions)."""
    y_true, y_pred = _paired(y_true, y_pred)
    if np.any(y_true == 0):
        raise ValidationError("APE is undefined when y_true contains zeros")
    return np.abs((y_true - y_pred) / y_true)


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Returns 0.0 for a constant target predicted exactly and a large negative
    value otherwise, following the usual convention.
    """
    y_true, y_pred = _paired(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0:
        return 0.0 if ss_res == 0 else float("-inf")
    return 1.0 - ss_res / ss_tot


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_consistent_length(y_true, y_pred)
    if y_true.size == 0:
        raise ValidationError("accuracy is undefined for empty inputs")
    return float(np.mean(y_true == y_pred))


def average_precision(relevances) -> float:
    """Average precision of a ranked binary relevance list.

    ``relevances`` is ordered from most to least similar; entries are truthy
    for relevant items.  Returns 1.0 when there are no relevant items, so a
    query with no possible matches does not penalize mAP.
    """
    rel = np.asarray(relevances, dtype=bool)
    if rel.size == 0:
        raise ValidationError("relevances must not be empty")
    if not rel.any():
        return 1.0
    positions = np.flatnonzero(rel) + 1
    hits = np.arange(1, positions.size + 1)
    return float(np.mean(hits / positions))


def mean_average_precision(relevance_lists) -> float:
    """Mean of :func:`average_precision` over several ranked queries."""
    lists = list(relevance_lists)
    if not lists:
        raise ValidationError("relevance_lists must not be empty")
    return float(np.mean([average_precision(rel) for rel in lists]))


def dcg(gains, *, k: int | None = None) -> float:
    """Discounted cumulative gain of a ranked list of graded gains."""
    g = check_1d(gains, "gains", allow_empty=False)
    if k is not None:
        g = g[:k]
    discounts = 1.0 / np.log2(np.arange(2, g.size + 2))
    return float(np.sum(g * discounts))


def ndcg(gains, *, k: int | None = None) -> float:
    """Normalized DCG: DCG of the ranking divided by the ideal DCG.

    Returns 1.0 when all gains are zero (any order of irrelevant items is
    equally good).
    """
    g = check_1d(gains, "gains", allow_empty=False)
    ideal = np.sort(g)[::-1]
    ideal_dcg = dcg(ideal, k=k)
    if ideal_dcg == 0:
        return 1.0
    return dcg(g, k=k) / ideal_dcg
