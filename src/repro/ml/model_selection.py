"""Cross-validation utilities.

The paper evaluates every modeling strategy with 5-fold cross validation and
reports mean NRMSE (Section 6.2); :func:`cross_val_score` is the harness used
by :mod:`repro.prediction.evaluation` to reproduce Table 6.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import normalized_rmse
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_feature_matrix, check_positive_int


class KFold:
    """K-fold cross-validation splitter with optional shuffling."""

    def __init__(
        self,
        n_splits: int = 5,
        *,
        shuffle: bool = False,
        random_state: RandomState = None,
    ):
        self.n_splits = check_positive_int(n_splits, "n_splits", minimum=2)
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        n_samples = np.asarray(X).shape[0]
        if self.n_splits > n_samples:
            raise ValidationError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            as_generator(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            stop = start + size
            test = indices[start:stop]
            train = np.concatenate([indices[:start], indices[stop:]])
            yield train, test
            start = stop


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split ``(X, y)`` into train and test partitions."""
    X, y = check_feature_matrix(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValidationError(f"test_size must be in (0, 1), got {test_size}")
    n_samples = X.shape[0]
    n_test = max(1, int(round(n_samples * test_size)))
    if n_test >= n_samples:
        raise ValidationError(
            f"test_size={test_size} leaves no training samples for n={n_samples}"
        )
    permutation = as_generator(random_state).permutation(n_samples)
    test_idx = permutation[:n_test]
    train_idx = permutation[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    *,
    cv: int | KFold = 5,
    scorer: Callable[[np.ndarray, np.ndarray], float] = normalized_rmse,
    shuffle: bool = True,
    random_state: RandomState = 0,
) -> np.ndarray:
    """Evaluate ``estimator`` by cross validation.

    The estimator is cloned for each fold so folds never leak state.  The
    default scorer is NRMSE, matching the paper's Table 6 methodology; note
    that for NRMSE lower is better (this is an error, not a reward).
    """
    X, y = check_feature_matrix(X, y)
    if isinstance(cv, int):
        cv = KFold(cv, shuffle=shuffle, random_state=random_state)
    scores = []
    for train_idx, test_idx in cv.split(X):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        predictions = np.asarray(model.predict(X[test_idx]), dtype=float)
        scores.append(scorer(y[test_idx], predictions))
    return np.asarray(scores, dtype=float)
