"""Epsilon-insensitive support vector regression (Smola & Scholkopf [85]).

The dual is solved with a pairwise (SMO-style) coordinate ascent on the
compact ``beta = alpha - alpha*`` formulation:

    maximize  -0.5 beta^T K beta + y^T beta - eps * ||beta||_1
    subject to  sum(beta) = 0,  -C <= beta_i <= C

Each update optimizes a pair ``(beta_i, beta_j)`` along the equality
constraint exactly: the restricted objective is piecewise quadratic with
breakpoints where either variable crosses zero, so the update evaluates the
stationary point of each segment plus all breakpoints and box corners.
Problem sizes in the scaling-model experiments are tiny (tens of points),
which this solver handles quickly and exactly enough for reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator, RegressorMixin
from repro.ml.preprocessing import StandardScaler
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_2d, check_consistent_length


def _kernel_matrix(
    A: np.ndarray,
    B: np.ndarray,
    *,
    kernel: str,
    gamma: float,
    degree: int,
    coef0: float,
) -> np.ndarray:
    if kernel == "linear":
        return A @ B.T
    if kernel == "rbf":
        sq_a = np.sum(A**2, axis=1)[:, None]
        sq_b = np.sum(B**2, axis=1)[None, :]
        distances = np.maximum(sq_a + sq_b - 2.0 * (A @ B.T), 0.0)
        return np.exp(-gamma * distances)
    if kernel == "poly":
        return (gamma * (A @ B.T) + coef0) ** degree
    raise ValidationError(f"unknown kernel {kernel!r}; use linear, rbf, or poly")


class SVR(BaseEstimator, RegressorMixin):
    """Epsilon-SVR with linear, RBF, or polynomial kernels.

    Parameters
    ----------
    C:
        Box constraint (regularization inverse); larger fits tighter.
    epsilon:
        Width of the insensitive tube around the regression function.
    kernel, gamma, degree, coef0:
        Kernel family and its parameters.  ``gamma="scale"`` follows the
        common ``1 / (n_features * var(X))`` convention.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        *,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        degree: int = 3,
        coef0: float = 0.0,
        max_sweeps: int = 200,
        tol: float = 1e-6,
        standardize: bool = True,
        standardize_target: bool = True,
        random_state: RandomState = None,
    ):
        self.C = C
        self.epsilon = epsilon
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.max_sweeps = max_sweeps
        self.tol = tol
        self.standardize = standardize
        self.standardize_target = standardize_target
        self.random_state = random_state

    # -- internals ----------------------------------------------------------
    def _resolve_gamma(self, X: np.ndarray) -> float:
        if isinstance(self.gamma, str):
            if self.gamma != "scale":
                raise ValidationError(
                    f"gamma must be a float or 'scale', got {self.gamma!r}"
                )
            variance = float(X.var())
            return 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        if self.gamma <= 0:
            raise ValidationError(f"gamma must be positive, got {self.gamma}")
        return float(self.gamma)

    def _optimize_pair(
        self,
        i: int,
        j: int,
        beta: np.ndarray,
        K: np.ndarray,
        y: np.ndarray,
        residual_cache: np.ndarray,
    ) -> float:
        """Exactly optimize (beta_i, beta_j) holding their sum fixed.

        ``residual_cache`` holds ``K @ beta``; it is updated in place.
        Returns the objective improvement.
        """
        C, eps = self.C, self.epsilon
        s = beta[i] + beta[j]
        lo = max(-C, s - C)
        hi = min(C, s + C)
        if hi - lo < 1e-14:
            return 0.0
        Kii, Kjj, Kij = K[i, i], K[j, j], K[i, j]
        # Objective restricted to t = beta_i (beta_j = s - t):
        #   g(t) = -0.5*a*t^2 + b_lin*t - eps*(|t| + |s - t|) + const
        a = Kii + Kjj - 2.0 * Kij
        # gradient pieces excluding the i/j self terms
        Fi = residual_cache[i] - Kii * beta[i] - Kij * beta[j]
        Fj = residual_cache[j] - Kij * beta[i] - Kjj * beta[j]
        b_lin = (y[i] - Fi) - (y[j] - Fj) + (Kjj - Kij) * s

        def objective(t: float) -> float:
            quad = -0.5 * a * t * t + b_lin * t
            return quad - eps * (abs(t) + abs(s - t))

        # Segment boundaries: box edges plus the kinks of the two |.| terms.
        candidates = sorted({lo, hi, *[p for p in (0.0, s) if lo < p < hi]})
        # interior stationary points per sign pattern of (t, s - t)
        if a > 1e-14:
            for sign_t in (-1.0, 1.0):
                for sign_u in (-1.0, 1.0):
                    t_star = (b_lin - eps * sign_t + eps * sign_u) / a
                    if lo <= t_star <= hi:
                        candidates.append(t_star)
        old_t = float(np.clip(beta[i], lo, hi))
        best_t, best_val = old_t, objective(old_t)
        for t in candidates:
            value = objective(t)
            if value > best_val + 1e-15:
                best_val, best_t = value, t
        delta_i = best_t - beta[i]
        if abs(delta_i) < 1e-14:
            return 0.0
        delta_j = -delta_i
        residual_cache += K[:, i] * delta_i + K[:, j] * delta_j
        beta[i] += delta_i
        beta[j] += delta_j
        return best_val - objective(old_t)

    def fit(self, X, y) -> "SVR":
        X = check_2d(X, "X")
        y = np.asarray(y, dtype=float).ravel()
        check_consistent_length(X, y)
        if self.C <= 0:
            raise ValidationError(f"C must be positive, got {self.C}")
        if self.epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {self.epsilon}")
        if self.standardize:
            self._scaler = StandardScaler().fit(X)
            Xs = self._scaler.transform(X)
        else:
            self._scaler = None
            Xs = X
        if self.standardize_target:
            # The box constraint C and tube width epsilon are meaningful
            # only relative to the target scale; standardizing makes the
            # same hyperparameters work for raw throughput (thousands of
            # txn/s) and normalized scaling factors (~1.0) alike.
            self._y_mean = float(y.mean())
            y_std = float(y.std())
            self._y_scale = y_std if y_std > 0 else 1.0
            y = (y - self._y_mean) / self._y_scale
        else:
            self._y_mean, self._y_scale = 0.0, 1.0
        self._gamma = self._resolve_gamma(Xs)
        self._X_train = Xs
        n = Xs.shape[0]
        K = _kernel_matrix(
            Xs, Xs, kernel=self.kernel, gamma=self._gamma,
            degree=self.degree, coef0=self.coef0,
        )
        beta = np.zeros(n)
        residual_cache = K @ beta
        rng = as_generator(self.random_state)
        for _ in range(self.max_sweeps):
            improvement = 0.0
            order = rng.permutation(n)
            for idx in range(n):
                i = int(order[idx])
                j = int(order[(idx + 1) % n])
                if i == j:
                    continue
                improvement += self._optimize_pair(i, j, beta, K, y, residual_cache)
            # a couple of random long-range pairs help escape poor pairings
            for _ in range(n):
                i, j = rng.integers(0, n, size=2)
                if i != j:
                    improvement += self._optimize_pair(
                        int(i), int(j), beta, K, y, residual_cache
                    )
            if improvement < self.tol * (1.0 + abs(float(y @ beta))):
                break
        self.beta_ = beta
        self.support_ = np.flatnonzero(np.abs(beta) > 1e-10)
        self.intercept_ = self._compute_bias(K, y, beta)
        return self

    def _compute_bias(self, K: np.ndarray, y: np.ndarray, beta: np.ndarray) -> float:
        decision = K @ beta
        margin = 1e-8 * max(self.C, 1.0)
        free_pos = (beta > margin) & (beta < self.C - margin)
        free_neg = (beta < -margin) & (beta > -self.C + margin)
        estimates = []
        if np.any(free_pos):
            estimates.extend(y[free_pos] - decision[free_pos] - self.epsilon)
        if np.any(free_neg):
            estimates.extend(y[free_neg] - decision[free_neg] + self.epsilon)
        if estimates:
            return float(np.mean(estimates))
        # All multipliers at bounds: fall back to the feasibility midpoint.
        upper = np.where(beta > -self.C + margin, y - decision + self.epsilon, np.inf)
        lower = np.where(beta < self.C - margin, y - decision - self.epsilon, -np.inf)
        hi = float(np.min(upper))
        lo = float(np.max(lower))
        if np.isfinite(hi) and np.isfinite(lo) and lo <= hi:
            return 0.5 * (lo + hi)
        return float(np.mean(y - decision))

    def predict(self, X) -> np.ndarray:
        self._check_fitted("beta_")
        X = check_2d(X, "X")
        if self._scaler is not None:
            X = self._scaler.transform(X)
        K = _kernel_matrix(
            X, self._X_train, kernel=self.kernel, gamma=self._gamma,
            degree=self.degree, coef0=self.coef0,
        )
        raw = K @ self.beta_ + self.intercept_
        return raw * self._y_scale + self._y_mean
